//! A Spark-Catalyst-style SQL optimizer, instrumented like the paper's
//! Figure 1 — and what TreeToaster does to its time breakdown.
//!
//! Optimizes TPC-H-shaped logical plans and the Appendix-A UNION-doubling
//! antipattern with (a) Scala-`transform`-style naive scanning, and
//! (b) TreeToaster views, printing the search / ineffective / effective /
//! fixpoint split for both.
//!
//! Run with: `cargo run --release --example spark_like_optimizer`

use treetoaster::queryopt::antipattern::union_doubling;
use treetoaster::queryopt::catalyst::{optimize, Breakdown, SearchMode};
use treetoaster::queryopt::tpch;

fn show(label: &str, bd: &Breakdown) {
    let ms = |x: u64| x as f64 / 1e6;
    println!(
        "  {label:<12} total {:>8.2} ms = search {:>8.2} ({:>4.1}%) + ineffective {:>6.2} + \
         effective {:>6.2} + fixpoint {:>6.2} + maintain {:>6.2}   [{} rewrites, {} aborted]",
        ms(bd.total_ns()),
        ms(bd.search_ns),
        100.0 * bd.search_fraction(),
        ms(bd.ineffective_ns),
        ms(bd.effective_ns),
        ms(bd.fixpoint_ns),
        ms(bd.maintain_ns),
        bd.effective_count,
        bd.ineffective_count,
    );
}

fn main() {
    println!("TPC-H-shaped queries (aggregated over the 22-query mix):\n");
    let mut total_naive = Breakdown::default();
    let mut total_tt = Breakdown::default();
    for q in 1..=22 {
        let mut ast = tpch::build_query(q, 42);
        let bd = optimize(&mut ast, SearchMode::NaiveScan, 100);
        accumulate(&mut total_naive, &bd);
        let mut ast = tpch::build_query(q, 42);
        let bd = optimize(&mut ast, SearchMode::TreeToasterViews, 100);
        accumulate(&mut total_tt, &bd);
    }
    show("naive scan", &total_naive);
    show("treetoaster", &total_tt);

    println!(
        "\nUNION-ALL-doubling antipattern (Appendix A), level 4 (~{} nodes):\n",
        treetoaster::queryopt::antipattern::expected_size(4)
    );
    let mut ast = union_doubling(4);
    let bd = optimize(&mut ast, SearchMode::NaiveScan, 60);
    show("naive scan", &bd);
    let mut ast = union_doubling(4);
    let bd = optimize(&mut ast, SearchMode::TreeToasterViews, 60);
    show("treetoaster", &bd);

    println!("\nThe naive optimizer burns its time matching patterns against every node on");
    println!("every pass (paper: 33-45% of Catalyst's time); with materialized views both");
    println!("the search and the outer fixpoint comparison collapse, leaving rewrite");
    println!("construction plus a small maintenance cost.");
}

fn accumulate(into: &mut Breakdown, from: &Breakdown) {
    into.search_ns += from.search_ns;
    into.ineffective_ns += from.ineffective_ns;
    into.effective_ns += from.effective_ns;
    into.fixpoint_ns += from.fixpoint_ns;
    into.maintain_ns += from.maintain_ns;
    into.effective_count += from.effective_count;
    into.ineffective_count += from.ineffective_count;
    into.iterations += from.iterations;
}
