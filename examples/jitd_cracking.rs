//! Database cracking as AST rewriting: the paper's §7 evaluation bed as
//! a runnable demo.
//!
//! Loads a JustInTimeData index with one big sorted array, then runs a
//! YCSB-A stream while the reorganizer cracks the array into a binary
//! tree and pushes updates down — comparing all five search strategies
//! on the same workload and printing the paper's three measurement axes
//! (search latency, maintenance latency, memory).
//!
//! Run with: `cargo run --release --example jitd_cracking`

use treetoaster::ast::Record;
use treetoaster::metrics::{bytes_to_pages, now_ns};
use treetoaster::prelude::*;

fn main() {
    let records: i64 = 100_000;
    let ops = 500usize;
    println!("JITD database cracking: {records} records, {ops} YCSB-A operations\n");

    // Show reads getting faster as cracking proceeds (TT strategy).
    {
        let data: Vec<Record> = (0..records).map(|k| Record::new(k, k * 3)).collect();
        let mut jitd = Jitd::new(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 128,
            },
            data,
        );
        println!("phase 1 — reads during cracking:");
        let probe_keys: Vec<i64> = (0..200).map(|i| i * (records / 200)).collect();
        for phase in 0..5 {
            let t0 = now_ns();
            for &k in &probe_keys {
                assert_eq!(jitd.index().get(k), Some(k * 3));
            }
            let read_ns = (now_ns() - t0) / probe_keys.len() as u64;
            let applied = jitd.reorganize_until_quiet(400);
            println!(
                "  phase {phase}: {read_ns:>7} ns/read, then applied {applied:>4} rewrites \
                 (tree now {} nodes)",
                jitd.index().ast().live_count()
            );
            if applied == 0 {
                break;
            }
        }
        jitd.index().check_structure().expect("structure intact");
    }

    // Strategy comparison on the same op stream.
    println!("\nphase 2 — the five search strategies on the same YCSB-A stream:");
    println!(
        "{:<8} {:>14} {:>16} {:>14} {:>10}",
        "strategy", "search ns/op", "maintain ns/op", "memory pages", "rewrites"
    );
    for kind in StrategyKind::all() {
        let data: Vec<Record> = (0..records / 10).map(|k| Record::new(k, k)).collect();
        let mut jitd = Jitd::new(
            kind,
            RuleConfig {
                crack_threshold: 128,
            },
            data,
        );
        let mut workload = Workload::new(WorkloadSpec::standard('A'), (records / 10) as u64, 7);
        jitd.reorganize_until_quiet(u64::MAX);
        for _ in 0..ops {
            let op = workload.next_op();
            jitd.execute(&op);
            jitd.reorganize_round();
        }
        let search_mean: f64 = {
            let all: Vec<f64> = jitd
                .stats
                .search_ns
                .iter()
                .flat_map(|b| b.samples().iter().copied())
                .collect();
            all.iter().sum::<f64>() / all.len().max(1) as f64
        };
        let maintain = jitd.stats.all_maintenance_samples();
        let maintain_mean = maintain.samples().iter().sum::<f64>() / maintain.len().max(1) as f64;
        println!(
            "{:<8} {:>14.0} {:>16.0} {:>14} {:>10}",
            kind.label(),
            search_mean,
            maintain_mean,
            bytes_to_pages(jitd.strategy_memory_bytes()),
            jitd.stats.steps,
        );
        jitd.agreement_with_naive().expect("strategy views exact");
    }
    println!("\nExpect: Naive slowest search with zero memory; DBT/Classic fast search but");
    println!("heavy memory; TT fast search at near-Index memory (the paper's Figure 2).");
}
