//! Serve demo: drive a plan-serving daemon from concurrent clients.
//!
//! Two modes, selected by `TT_SERVE_ADDR`:
//!
//! - **External** (`TT_SERVE_ADDR=host:port`): connect to a `tt-serve`
//!   daemon already running there — this is what the CI smoke job does
//!   after booting one — and leave it running afterwards.
//! - **In-process** (variable unset): boot a [`Server`] on a loopback
//!   port in a background thread, drive it the same way, then ask it to
//!   stop and report its drain.
//!
//! Either way the demo is the service pitch in miniature: three client
//! threads each open their own session (their own tree, strategy, and
//! epochs inside the shared fleet), stream writes that stage into
//! epochs, tick the reorganizer, and read back exactly what they wrote
//! while the other tenants churn.
//!
//! Run with: `cargo run --release --example serve_demo`

use std::sync::Arc;
use treetoaster::prelude::*;
use treetoaster::service::protocol::SessionSnapshot;
use tt_jitd::StrategyKind;

const CLIENTS: usize = 3;
const RECORDS: u64 = 96;
const WRITES: i64 = 160;

fn drive(addr: std::net::SocketAddr, tenant: usize) -> (u64, SessionSnapshot) {
    let mut client = Client::connect(addr).expect("connect");
    let session = client.open(RECORDS, tenant as u64).expect("open");

    // Stream writes: more than one epoch's worth, so the daemon seals
    // and hands epochs to the background committer mid-stream.
    for j in 0..WRITES {
        let key = j % RECORDS as i64;
        client
            .replace(session, key, j * 10 + tenant as i64)
            .expect("replace");
    }
    let rewrites = client.tick(session, 8).expect("tick");

    // Read-your-writes: the last value written to each key, regardless
    // of which epoch it staged in.
    for key in 0..RECORDS as i64 {
        let last_j = (WRITES - 1) - (WRITES - 1 - key).rem_euclid(RECORDS as i64);
        let expect = last_j * 10 + tenant as i64;
        let got = client.find(session, key).expect("find");
        assert_eq!(got, Some(expect), "tenant {tenant} key {key}");
    }

    let snap = client.snapshot(session).expect("snapshot");
    let closed = client.close(session).expect("close");
    (rewrites.max(closed), snap)
}

fn main() {
    // External daemon if TT_SERVE_ADDR names one, else boot our own.
    let external = std::env::var("TT_SERVE_ADDR").ok();
    let (addr, local) = match &external {
        Some(spec) => {
            let addr = spec.parse().expect("TT_SERVE_ADDR must be host:port");
            println!("serve_demo: driving external daemon at {addr}");
            (addr, None)
        }
        None => {
            let config = FleetConfig::default()
                .engine(EngineConfig::default().crack_threshold(16))
                .sessions(CLIENTS)
                .workers(2);
            let daemon = Arc::new(Daemon::new(StrategyKind::TreeToaster, config));
            let server = Server::bind("127.0.0.1:0", daemon).expect("bind");
            let addr = server.local_addr().expect("local addr");
            println!("serve_demo: booted in-process daemon on {addr}");
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    let results: Vec<(u64, SessionSnapshot)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|tenant| scope.spawn(move || drive(addr, tenant)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (tenant, (rewrites, snap)) in results.iter().enumerate() {
        println!(
            "serve_demo: tenant {tenant} verified {RECORDS} keys — {rewrites} rewrites, \
             {} view bytes, {} staged / {} canceled deltas",
            snap.memory_bytes, snap.staged, snap.canceled
        );
    }

    if let Some(handle) = local {
        let mut closer = Client::connect(addr).expect("connect for stop");
        closer.stop().expect("stop");
        let report = handle.join().unwrap().expect("server run");
        println!(
            "serve_demo: in-process daemon drained ({} sessions closed, {} commits landed)",
            report.sessions_closed, report.commits_landed
        );
    }
    println!("serve_demo: OK ({CLIENTS} tenants, {WRITES} writes each)");
}
