//! Quickstart: the paper's running example, end to end.
//!
//! Builds the expression `(0 + (0 + x)) * y`, declares the add-zero
//! elimination rule `Arith(+, Const(0), Var(b)) → Var(b)` (paper
//! Example 2.2), materializes a TreeToaster view over it, and drains the
//! view to a fixpoint — printing the tree after each rewrite.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use treetoaster::ast::sexpr::{parse_sexpr, to_sexpr};
use treetoaster::core::generator::reuse;
use treetoaster::core::{MatchCore, ReplaceCtx, RuleFired};
use treetoaster::pattern::dsl::*;
use treetoaster::prelude::*;

fn main() {
    // 1. A schema: Arith{op}/2, Const{val}/0, Var{name}/0 (paper Fig. 3).
    let schema = treetoaster::ast::schema::arith_schema();

    // 2. The pattern of Example 2.3 and the Reuse-generator of §6.
    let pattern = Pattern::compile(
        &schema,
        node(
            "Arith",
            "A",
            [
                node("Const", "B", [], eq(attr("B", "val"), int(0))),
                node("Var", "C", [], tru()),
            ],
            eq(attr("A", "op"), str_("+")),
        ),
    );
    println!("pattern: {pattern}   (depth D(q) = {})", pattern.depth());
    let rule = RewriteRule::new("AddZero", &schema, pattern, reuse("C"));
    println!("inlinable (Definition 7 safe): {}", rule.safe_for_inline());
    let rules = Arc::new(RuleSet::from_rules(vec![rule]));

    // 3. An AST with two eligible sites, one nested inside the other.
    let mut ast = Ast::new(schema);
    let root = parse_sexpr(
        &mut ast,
        r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="x")) (Var name="y"))"#,
    )
    .expect("parses");
    ast.set_root(root);
    println!("\ninput:  {}", to_sexpr(&ast, ast.root()));

    // 4. Materialize the view once; thereafter every lookup is O(1).
    let mut engine = TreeToasterEngine::new(rules.clone());
    engine.rebuild(&ast);
    println!("view has {} eligible node(s)", engine.view(0).len());

    // 5. Drain to fixpoint. Each application notifies the engine before
    //    and after the pointer swap; the inlined Algorithm-3 plan means
    //    only label-aligned positions get re-checked.
    let mut tick = 0;
    while let Some(site) = engine.find_one(&ast, 0) {
        let rule = rules.get(0);
        let bindings = match_node(&ast, site, &rule.pattern).expect("view is exact");
        engine.before_replace(&ast, site, Some((0, &bindings)));
        let applied = rule.apply(&mut ast, site, &bindings, tick);
        tick += 1;
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: 0,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        engine.after_replace(&ast, &ctx);
        println!("after:  {}", to_sexpr(&ast, ast.root()));
    }

    engine.check_views_correct(&ast).expect("views stay exact");
    println!(
        "\nfixpoint reached; view empty: {}",
        engine.view(0).is_empty()
    );
    println!(
        "engine memory: {} bytes (views only — no shadow copy)",
        engine.memory_bytes()
    );
}
