//! A small arithmetic-expression optimizer with four rewrite rules,
//! comparing naive search against TreeToaster views on randomly
//! generated expressions.
//!
//! Rules: `0 + b → b`, `1 * b → b`, `0 * b → 0`, and constant folding
//! `Const ⊕ Const → Const`. The example generates a large random
//! expression, optimizes it to a fixpoint twice (naive scan vs.
//! TreeToaster), verifies both produce the same normal form, and prints
//! the timing split.
//!
//! Run with: `cargo run --release --example arithmetic_optimizer`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use treetoaster::ast::Value;
use treetoaster::core::generator::{acompute, gen, reuse, GenCtx};
use treetoaster::core::{MatchSource, NaiveStrategy, ReplaceCtx, RuleFired};
use treetoaster::metrics::now_ns;
use treetoaster::pattern::dsl::*;
use treetoaster::prelude::*;

fn rules(schema: &Arc<Schema>) -> Arc<RuleSet> {
    // 0 + b → b  (commutative twin omitted for brevity).
    let add_zero = RewriteRule::new(
        "AddZero",
        schema,
        Pattern::compile(
            schema,
            node(
                "Arith",
                "A",
                [
                    node("Const", "B", [], eq(attr("B", "val"), int(0))),
                    any_as("q"),
                ],
                eq(attr("A", "op"), str_("+")),
            ),
        ),
        reuse("q"),
    );
    // 1 * b → b.
    let mul_one = RewriteRule::new(
        "MulOne",
        schema,
        Pattern::compile(
            schema,
            node(
                "Arith",
                "A",
                [
                    node("Const", "B", [], eq(attr("B", "val"), int(1))),
                    any_as("q"),
                ],
                eq(attr("A", "op"), str_("*")),
            ),
        ),
        reuse("q"),
    );
    // 0 * b → 0 (drops the wildcard — not Definition-7 safe, so the
    // engine automatically uses the maximal-search-set path for it).
    let mul_zero = RewriteRule::new(
        "MulZero",
        schema,
        Pattern::compile(
            schema,
            node(
                "Arith",
                "A",
                [node("Const", "B", [], eq(attr("B", "val"), int(0))), any()],
                eq(attr("A", "op"), str_("*")),
            ),
        ),
        gen(
            "Const",
            [("val", treetoaster::core::generator::aconst(Value::Int(0)))],
            [],
        ),
    );
    // Const ⊕ Const → Const (constant folding).
    let fold = {
        let pattern = Pattern::compile(
            schema,
            node(
                "Arith",
                "A",
                [node("Const", "B", [], tru()), node("Const", "C", [], tru())],
                tru(),
            ),
        );
        let a = pattern.var("A").unwrap();
        let b = pattern.var("B").unwrap();
        let c = pattern.var("C").unwrap();
        RewriteRule::new(
            "ConstFold",
            schema,
            pattern,
            gen(
                "Const",
                [(
                    "val",
                    acompute("fold", move |ctx: &GenCtx| {
                        let val = ctx.ast.schema().expect_attr("val");
                        let op = ctx.ast.schema().expect_attr("op");
                        let x = ctx.ast.attr(ctx.bindings.get(b), val).as_int();
                        let y = ctx.ast.attr(ctx.bindings.get(c), val).as_int();
                        Value::Int(match ctx.ast.attr(ctx.bindings.get(a), op).as_str() {
                            "+" => x.wrapping_add(y),
                            "*" => x.wrapping_mul(y),
                            other => panic!("unknown op {other}"),
                        })
                    }),
                )],
                [],
            ),
        )
    };
    Arc::new(RuleSet::from_rules(vec![add_zero, mul_one, mul_zero, fold]))
}

/// A random expression over +, *, small constants, and variables.
fn random_expr(ast: &mut Ast, rng: &mut StdRng, depth: usize) -> NodeId {
    let schema = ast.schema().clone();
    if depth == 0 || rng.gen_bool(0.3) {
        if rng.gen_bool(0.6) {
            let val = *[0i64, 0, 1, 2, 3].get(rng.gen_range(0..5)).unwrap();
            ast.alloc(schema.expect_label("Const"), vec![Value::Int(val)], vec![])
        } else {
            let name = format!("v{}", rng.gen_range(0..8));
            ast.alloc(schema.expect_label("Var"), vec![Value::str(&name)], vec![])
        }
    } else {
        let left = random_expr(ast, rng, depth - 1);
        let right = random_expr(ast, rng, depth - 1);
        let op = if rng.gen_bool(0.5) { "+" } else { "*" };
        ast.alloc(
            schema.expect_label("Arith"),
            vec![Value::str(op)],
            vec![left, right],
        )
    }
}

/// Optimizes to a fixpoint with any strategy; returns (rewrites, search
/// ns, maintenance ns).
fn optimize(
    ast: &mut Ast,
    rules: &Arc<RuleSet>,
    strategy: &mut dyn MatchSource,
) -> (u64, u64, u64) {
    strategy.rebuild(ast);
    let (mut rewrites, mut search_ns, mut maintain_ns) = (0u64, 0u64, 0u64);
    let mut tick = 0;
    loop {
        let mut fired = false;
        for (rid, rule) in rules.iter() {
            loop {
                let s0 = now_ns();
                let site = strategy.find_one(ast, rid);
                search_ns += now_ns() - s0;
                let Some(site) = site else { break };
                let bindings = match_node(ast, site, &rule.pattern).expect("exact");
                let m0 = now_ns();
                strategy.before_replace(ast, site, Some((rid, &bindings)));
                maintain_ns += now_ns() - m0;
                let applied = rule.apply(ast, site, &bindings, tick);
                tick += 1;
                let ctx = ReplaceCtx {
                    old_root: applied.old_root,
                    new_root: applied.new_root,
                    removed: &applied.removed,
                    inserted: applied.inserted(),
                    parent_update: applied.parent_update.as_ref(),
                    rule: Some(RuleFired {
                        rule: rid,
                        bindings: &bindings,
                        applied: &applied,
                    }),
                };
                let m1 = now_ns();
                strategy.after_replace(ast, &ctx);
                maintain_ns += now_ns() - m1;
                rewrites += 1;
                fired = true;
            }
        }
        if !fired {
            break;
        }
    }
    (rewrites, search_ns, maintain_ns)
}

fn main() {
    // Seed chosen so the generator produces substantial trees at every
    // depth (some seeds draw a leaf on the very first coin flip).
    let seed = 8;
    let schema = treetoaster::ast::schema::arith_schema();
    let rules = rules(&schema);

    for depth in [8, 12, 14] {
        // Same expression for both strategies.
        let mut naive_ast = Ast::new(schema.clone());
        let root = random_expr(&mut naive_ast, &mut StdRng::seed_from_u64(seed), depth);
        naive_ast.set_root(root);
        let mut tt_ast = Ast::new(schema.clone());
        let root = random_expr(&mut tt_ast, &mut StdRng::seed_from_u64(seed), depth);
        tt_ast.set_root(root);
        let size = naive_ast.subtree_size(naive_ast.root());

        let mut naive = NaiveStrategy::new(rules.clone());
        let (n_rw, n_search, _) = optimize(&mut naive_ast, &rules, &mut naive);
        let mut tt = TreeToasterEngine::new(rules.clone());
        let (t_rw, t_search, t_maintain) = optimize(&mut tt_ast, &rules, &mut tt);

        // Rewrite *counts* differ legitimately (site order matters when
        // MulZero discards whole subtrees), but the rules are confluent:
        // both strategies must reach the same normal form.
        assert_eq!(
            treetoaster::ast::sexpr::to_sexpr(&naive_ast, naive_ast.root()),
            treetoaster::ast::sexpr::to_sexpr(&tt_ast, tt_ast.root()),
            "same normal form"
        );
        println!(
            "expr size {size:>6}: {n_rw:>4}/{t_rw:<4} rewrites (naive/TT) | \
             naive search {:>9.2} ms | TT search {:>7.3} ms + maintenance {:>7.3} ms  \
             (search speedup {:>6.1}x)",
            n_search as f64 / 1e6,
            t_search as f64 / 1e6,
            t_maintain as f64 / 1e6,
            n_search as f64 / t_search.max(1) as f64,
        );
    }
    println!("\nBoth strategies reach identical normal forms; TreeToaster trades a small");
    println!("maintenance cost for near-elimination of search, as in the paper's Figure 10.");
}
