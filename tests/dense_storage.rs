//! Differential suite for the dense storage layer (`tt_ast::dense`).
//!
//! The hot maintenance structures — views, posting lists, epoch delta
//! buffers — all sit on `NodeMap`/`NodeBitSet`/`NodeLabelMap` instead of
//! hashed `NodeId` maps. Here each dense structure is driven against the
//! hash-based reference it replaced (`FxHashMap`/`FxHashSet`) over random
//! op sequences: every operation's return value must agree, and the full
//! contents must agree at the end. (The end-to-end complement lives in
//! `tests/batch_equivalence.rs`, which re-runs the five-strategy epoch
//! equivalence over the dense-backed views.)

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;
use treetoaster::ast::schema::Label;
use treetoaster::ast::{FxHashMap, NodeBitSet, NodeId, NodeLabelMap, NodeMap};

fn n(i: u32) -> NodeId {
    NodeId::from_index(i)
}

/// Op codes: (kind, key, value). Keys concentrate on a few pages but
/// reach far enough to exercise lazy page allocation.
fn key(raw: u32) -> u32 {
    // ~3/4 of keys land in the first two pages; the rest spread to 64k.
    if raw % 4 == 3 {
        (raw.wrapping_mul(2_654_435_761)) % 65_536
    } else {
        raw % 512
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_map_agrees_with_hash_map(ops in vec((0u8..6, 0u32..10_000, -8i64..8), 1..400)) {
        let mut dense: NodeMap<i64> = NodeMap::new();
        let mut reference: FxHashMap<NodeId, i64> = FxHashMap::default();
        for (kind, raw, value) in ops {
            let id = n(key(raw));
            match kind {
                0 => prop_assert_eq!(dense.insert(id, value), reference.insert(id, value)),
                1 => prop_assert_eq!(dense.remove(id), reference.remove(&id)),
                2 => prop_assert_eq!(dense.get(id), reference.get(&id)),
                3 => prop_assert_eq!(dense.contains_key(id), reference.contains_key(&id)),
                4 => {
                    let a = dense.get_or_insert_with(id, || value);
                    *a += 1;
                    let b = reference.entry(id).or_insert(value);
                    *b += 1;
                    prop_assert_eq!(*a, *b);
                }
                _ => prop_assert_eq!(dense.len(), reference.len()),
            }
            prop_assert_eq!(dense.is_empty(), reference.is_empty());
        }
        prop_assert_eq!(dense.len(), reference.len());
        for (id, v) in dense.iter() {
            prop_assert_eq!(reference.get(&id), Some(v));
        }
        // Drain must hand back exactly the reference contents and leave
        // the map empty (pages retained).
        let drained: FxHashMap<NodeId, i64> = dense.drain().collect();
        prop_assert_eq!(drained, reference);
        prop_assert!(dense.is_empty());
        prop_assert_eq!(dense.iter().count(), 0);
    }

    #[test]
    fn node_bitset_agrees_with_hash_set(ops in vec((0u8..4, 0u32..10_000), 1..400)) {
        let mut dense = NodeBitSet::new();
        let mut reference: HashSet<u32> = HashSet::new();
        for (kind, raw) in ops {
            let k = key(raw);
            match kind {
                0 => prop_assert_eq!(dense.insert(n(k)), reference.insert(k)),
                1 => prop_assert_eq!(dense.remove(n(k)), reference.remove(&k)),
                2 => prop_assert_eq!(dense.contains(n(k)), reference.contains(&k)),
                _ => prop_assert_eq!(dense.len(), reference.len()),
            }
        }
        prop_assert_eq!(dense.len(), reference.len());
        let mut via_iter: Vec<u32> = dense.iter().map(NodeId::index).collect();
        let mut expect: Vec<u32> = reference.iter().copied().collect();
        via_iter.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(via_iter, expect);
    }

    #[test]
    fn node_label_map_agrees_with_hash_map(
        ops in vec((0u8..5, 0u32..10_000, 0u16..3, -8i64..8), 1..400)
    ) {
        let mut dense: NodeLabelMap<i64> = NodeLabelMap::new();
        let mut reference: FxHashMap<(Label, NodeId), i64> = FxHashMap::default();
        for (kind, raw, label, value) in ops {
            let (l, id) = (Label(label), n(key(raw)));
            match kind {
                0 => prop_assert_eq!(dense.insert(l, id, value), reference.insert((l, id), value)),
                1 => prop_assert_eq!(dense.remove(l, id), reference.remove(&(l, id))),
                2 => prop_assert_eq!(dense.get(l, id), reference.get(&(l, id))),
                3 => prop_assert_eq!(dense.contains(l, id), reference.contains_key(&(l, id))),
                _ => {
                    let a = dense.get_or_insert_with(l, id, || value);
                    *a -= 1;
                    let b = reference.entry((l, id)).or_insert(value);
                    *b -= 1;
                    prop_assert_eq!(*a, *b);
                }
            }
            prop_assert_eq!(dense.len(), reference.len());
        }
        for (k, v) in dense.iter() {
            prop_assert_eq!(reference.get(&k), Some(v));
        }
        let drained: FxHashMap<(Label, NodeId), i64> = dense.drain().collect();
        prop_assert_eq!(drained, reference);
        prop_assert!(dense.is_empty());
    }

    /// Clear keeps the structures reusable: a cleared dense map must
    /// behave like a fresh reference map over a second op sequence.
    #[test]
    fn node_map_clear_then_reuse(
        first in vec((0u32..2_000, 1i64..5), 1..100),
        second in vec((0u32..2_000, 1i64..5), 1..100),
    ) {
        let mut dense: NodeMap<i64> = NodeMap::new();
        for (raw, v) in first {
            dense.insert(n(key(raw)), v);
        }
        dense.clear();
        let mut reference: FxHashMap<NodeId, i64> = FxHashMap::default();
        for (raw, v) in second {
            let id = n(key(raw));
            prop_assert_eq!(dense.insert(id, v), reference.insert(id, v));
        }
        prop_assert_eq!(dense.len(), reference.len());
        for (id, v) in dense.iter() {
            prop_assert_eq!(reference.get(&id), Some(v));
        }
    }
}
