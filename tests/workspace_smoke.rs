//! Workspace smoke test: the facade crate's re-export map and prelude
//! must be enough to build an AST, materialize a view, apply one
//! rewrite through [`TreeToasterEngine`], and watch the [`MatchView`]
//! multiset update incrementally.

use std::sync::Arc;
use treetoaster::ast::sexpr::{parse_sexpr, to_sexpr};
use treetoaster::core::generator::reuse;
use treetoaster::pattern::dsl::{attr, eq, int, node, str_, tru};
use treetoaster::prelude::*;

/// The paper's running example: `x + 0 → x`.
fn add_zero_rules(schema: &Arc<Schema>) -> Arc<RuleSet> {
    let pattern = Pattern::compile(
        schema,
        node(
            "Arith",
            "A",
            [
                node("Const", "B", [], eq(attr("B", "val"), int(0))),
                node("Var", "C", [], tru()),
            ],
            eq(attr("A", "op"), str_("+")),
        ),
    );
    let rule = RewriteRule::new("AddZero", schema, pattern, reuse("C"));
    Arc::new(RuleSet::from_rules(vec![rule]))
}

#[test]
fn facade_builds_rewrites_and_maintains_views() {
    let schema = treetoaster::ast::schema::arith_schema();
    let rules = add_zero_rules(&schema);

    // (0 + x) * (0 + y): two disjoint AddZero sites.
    let mut ast = Ast::new(schema);
    let root = parse_sexpr(
        &mut ast,
        r#"(Arith op="*"
             (Arith op="+" (Const val=0) (Var name="x"))
             (Arith op="+" (Const val=0) (Var name="y")))"#,
    )
    .expect("literal parses");
    ast.set_root(root);

    let mut engine = TreeToasterEngine::new(rules.clone());
    engine.rebuild(&ast);
    engine
        .check_views_correct(&ast)
        .expect("views exact after rebuild");

    // The view is a multiset over eligible nodes: both sites, once each.
    assert_eq!(engine.view(0).len(), 2);
    let site = engine.find_one(&ast, 0).expect("a match is available");
    assert_eq!(engine.view(0).count(site), 1);
    assert!(
        !engine.view(0).contains(root),
        "root is not an AddZero site"
    );

    // Apply one rewrite through the engine's MatchSource hooks.
    let rule = rules.get(0);
    let bindings = match_node(&ast, site, &rule.pattern).expect("view entry matches for real");
    engine.before_replace(&ast, site, Some((0, &bindings)));
    let result = rule.apply(&mut ast, site, &bindings, 0);
    let ctx = ReplaceCtx {
        old_root: result.old_root,
        new_root: result.new_root,
        removed: &result.removed,
        inserted: result.inserted(),
        parent_update: result.parent_update.as_ref(),
        rule: Some(RuleFired {
            rule: 0,
            bindings: &bindings,
            applied: &result,
        }),
    };
    engine.after_replace(&ast, &ctx);

    // Incremental maintenance removed exactly the consumed site.
    assert_eq!(engine.view(0).count(site), 0, "consumed site left the view");
    assert_eq!(engine.view(0).len(), 1, "the untouched site remains");
    engine
        .check_views_correct(&ast)
        .expect("views exact after one rewrite");

    // Drain the second site; the view must empty out.
    let site2 = engine.find_one(&ast, 0).expect("second match still live");
    let bindings2 = match_node(&ast, site2, &rule.pattern).expect("second entry matches");
    engine.before_replace(&ast, site2, Some((0, &bindings2)));
    let result2 = rule.apply(&mut ast, site2, &bindings2, 1);
    let ctx2 = ReplaceCtx {
        old_root: result2.old_root,
        new_root: result2.new_root,
        removed: &result2.removed,
        inserted: result2.inserted(),
        parent_update: result2.parent_update.as_ref(),
        rule: Some(RuleFired {
            rule: 0,
            bindings: &bindings2,
            applied: &result2,
        }),
    };
    engine.after_replace(&ast, &ctx2);

    assert!(engine.view(0).is_empty(), "no AddZero sites remain");
    assert_eq!(engine.find_one(&ast, 0), None);
    assert_eq!(
        to_sexpr(&ast, ast.root()),
        r#"(Arith op="*" (Var name="x") (Var name="y"))"#,
        "both zero-additions were eliminated"
    );
}
