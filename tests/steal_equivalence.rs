//! The scheduling-transparency contract: heat-priority (work-stealing
//! order) reorganization must be *structurally invisible*.
//!
//! Trees in a fleet are independent, so the scheduler is free to choose
//! which shard's backlog to drain first — heat-priority order, FIFO
//! arrival order, or plain round-robin — as long as every written shard
//! reaches quiescence before its next operations. This suite drives the
//! same fleet op stream through two [`JitdFleet`]s:
//!
//! - **round-robin**: after each op chunk, every written tree is
//!   reorganized to quiescence in tree-id order (the PR 4 discipline);
//! - **stealing**: writes feed the heat scheduler and the chunk is
//!   drained hottest-first via [`JitdFleet::reorganize_next`].
//!
//! The two runs must agree *structurally*: identical per-tree
//! s-expressions, identical reads, identical rewrite counts. Any
//! divergence means scheduling order leaked into per-tree semantics —
//! exactly the bug class a work-stealing pool must not introduce.

use proptest::prelude::*;
use treetoaster::ast::{Record, TreeId};
use treetoaster::jitd::JitdFleet;
use treetoaster::prelude::{RuleConfig, StrategyKind};
use treetoaster::ycsb::{FleetSpec, FleetWorkload};

const RECORDS_PER_TREE: i64 = 40;

fn preload(t: usize) -> Vec<Record> {
    (0..RECORDS_PER_TREE)
        .map(|k| Record::new(k, k * 7 + t as i64))
        .collect()
}

fn new_fleet(strategy: StrategyKind, trees: usize) -> JitdFleet {
    let mut fleet = JitdFleet::new(strategy, RuleConfig { crack_threshold: 8 }, trees, preload);
    for t in 0..trees {
        fleet.reorganize_until_quiet(TreeId::from_index(t as u32), u64::MAX);
    }
    fleet
}

/// Runs `ops` operations of fleet workload `family` in `chunk`-op
/// bursts. `stealing` drains each burst hottest-first through the heat
/// scheduler; otherwise every written tree is ticked in id order.
fn run(
    strategy: StrategyKind,
    family: char,
    trees: usize,
    seed: u64,
    ops: usize,
    chunk: usize,
    stealing: bool,
) -> JitdFleet {
    let mut fleet = new_fleet(strategy, trees);
    let mut driver = FleetWorkload::new(
        FleetSpec::standard(family, trees),
        RECORDS_PER_TREE as u64,
        seed,
    );
    let mut done = 0usize;
    while done < ops {
        let n = chunk.min(ops - done);
        let mut written: Vec<usize> = Vec::new();
        for _ in 0..n {
            let fop = driver.next_op();
            fleet.execute(TreeId::from_index(fop.tree as u32), &fop.op);
            if !written.contains(&fop.tree) {
                written.push(fop.tree);
            }
        }
        if stealing {
            fleet.reorganize_pending(u64::MAX);
            assert_eq!(fleet.pending_shards(), 0, "scheduler left a backlog");
        } else {
            written.sort_unstable();
            for t in written {
                fleet.reorganize_until_quiet(TreeId::from_index(t as u32), u64::MAX);
            }
        }
        done += n;
    }
    fleet
}

fn assert_structurally_equal(a: &JitdFleet, b: &JitdFleet, trees: usize) {
    assert_eq!(a.stats.steps, b.stats.steps, "rewrite counts diverged");
    for t in 0..trees {
        let tree = TreeId::from_index(t as u32);
        let (ia, ib) = (a.index_of(tree), b.index_of(tree));
        assert_eq!(
            treetoaster::ast::sexpr::to_sexpr(ia.ast(), ia.ast().root()),
            treetoaster::ast::sexpr::to_sexpr(ib.ast(), ib.ast().root()),
            "tree {t} structural divergence"
        );
        for key in 0..RECORDS_PER_TREE + 16 {
            assert_eq!(ia.get(key), ib.get(key), "tree {t} read diverged at {key}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stealing == round-robin for every strategy, all three fleet
    /// workload shapes, and random scales.
    #[test]
    fn stealing_schedule_is_structurally_invisible(
        strategy_idx in 0usize..5,
        family_idx in 0usize..3,
        trees in 2usize..5,
        seed in 0u64..1_000,
        chunk in 1usize..24,
    ) {
        let strategy = StrategyKind::all()[strategy_idx];
        let family = ['G', 'H', 'I'][family_idx];
        let rr = run(strategy, family, trees, seed, 72, chunk, false);
        let st = run(strategy, family, trees, seed, 72, chunk, true);
        assert_structurally_equal(&rr, &st, trees);
        rr.check_strategy_consistent().unwrap();
        st.check_strategy_consistent().unwrap();
    }
}

/// Fixed-seed anchor (always runs, easy to bisect): the skewed workload
/// over six trees must produce identical fleets *and* must actually
/// exercise priority pops — the stealing run records queue-jumps.
#[test]
fn skewed_anchor_steals_and_stays_equal() {
    let trees = 6;
    let mut rr = run(StrategyKind::TreeToaster, 'I', trees, 77, 192, 16, false);
    let mut st = run(StrategyKind::TreeToaster, 'I', trees, 77, 192, 16, true);
    assert_structurally_equal(&rr, &st, trees);
    assert_eq!(rr.stats.steal_count, 0, "round-robin never jumps the queue");
    assert!(
        st.stats.steal_count > 0,
        "the skewed stream must trigger hottest-first queue jumps"
    );
    rr.agreement_with_naive().unwrap();
    st.agreement_with_naive().unwrap();
    st.check_structure().unwrap();
}
