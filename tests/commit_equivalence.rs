//! The commit-pipeline transparency contract: sealing an epoch for a
//! background committer must be *semantically invisible*.
//!
//! The pipelined commit splits `commit_batch` into a seal
//! ([`JitdFleet::submit_commit`]) on the op path and a deferred apply
//! ([`JitdFleet::apply_next_commit`]) on the committer's schedule.
//! Readers in between are served by the overlay (`view ⊕ sealed ⊕
//! pending`), and the strategy's one-epoch-in-flight backpressure
//! guarantees sealed epochs land in order. This suite drives the same
//! fleet op stream through two [`JitdFleet`]s:
//!
//! - **inline**: every epoch closes with `commit_batch` (the classic
//!   synchronous path);
//! - **piped**: every epoch closes with `submit_commit`, and the sealed
//!   epoch is applied one epoch *later* — after the next epoch's
//!   operations and rewrites have already run against the overlay.
//!
//! The two runs must agree structurally: identical per-tree
//! s-expressions, identical reads, identical rewrite counts. Any
//! divergence means commit timing leaked into per-tree semantics —
//! exactly the bug class a background committer must not introduce.
//!
//! The threaded half of the contract (an actual committer thread
//! overlapping the op stream) is anchored by
//! `async_committer_overlaps_the_op_stream` below.

use proptest::prelude::*;
use treetoaster::ast::{Record, TreeId};
use treetoaster::jitd::steal::StealConfig;
use treetoaster::jitd::{CommitMode, JitdFleet, WorkerMode};
use treetoaster::prelude::{AsyncJitd, RuleConfig, StrategyKind};
use treetoaster::ycsb::{FleetSpec, FleetWorkload, Op};

const RECORDS_PER_TREE: i64 = 40;

fn preload(t: usize) -> Vec<Record> {
    (0..RECORDS_PER_TREE)
        .map(|k| Record::new(k, k * 7 + t as i64))
        .collect()
}

fn new_fleet(strategy: StrategyKind, trees: usize) -> JitdFleet {
    let mut fleet = JitdFleet::new(strategy, RuleConfig { crack_threshold: 8 }, trees, preload);
    for t in 0..trees {
        fleet.reorganize_until_quiet(TreeId::from_index(t as u32), u64::MAX);
    }
    fleet
}

/// Runs `ops` operations of fleet workload `family` in `epoch`-op
/// epochs. `piped` closes each epoch with `submit_commit` and defers the
/// apply until after the *next* epoch has run (final epochs drain at the
/// end); otherwise each epoch closes with an inline `commit_batch`.
fn run(
    strategy: StrategyKind,
    family: char,
    trees: usize,
    seed: u64,
    ops: usize,
    epoch: usize,
    piped: bool,
) -> JitdFleet {
    let mut fleet = new_fleet(strategy, trees);
    let mut driver = FleetWorkload::new(
        FleetSpec::standard(family, trees),
        RECORDS_PER_TREE as u64,
        seed,
    );
    let ids: Vec<TreeId> = fleet.tree_ids().collect();
    let mut done = 0usize;
    while done < ops {
        // One epoch lags in the pipeline: the previous epoch's sealed
        // deltas apply only now, after this epoch has already opened.
        if piped {
            fleet.drain_commits();
        }
        for &t in &ids {
            fleet.begin_batch(t);
        }
        let n = epoch.min(ops - done);
        let mut written: Vec<usize> = Vec::new();
        for _ in 0..n {
            let fop = driver.next_op();
            fleet.execute(TreeId::from_index(fop.tree as u32), &fop.op);
            if !written.contains(&fop.tree) {
                written.push(fop.tree);
            }
        }
        written.sort_unstable();
        // One *round* per written tree, not quiescence: an epoch that
        // drains its whole backlog stages and cancels every delta
        // (net-empty buffers seal nothing), so realistic pipeline
        // traffic needs epochs that close mid-optimization and carry
        // backlog forward.
        for t in written {
            fleet.reorganize_round(TreeId::from_index(t as u32));
        }
        for &t in &ids {
            if piped {
                fleet.submit_commit(t);
            } else {
                fleet.commit_batch(t);
            }
        }
        done += n;
    }
    if piped {
        fleet.drain_commits();
        assert_eq!(fleet.commits_pending(), 0, "committer left a backlog");
    }
    fleet
}

fn assert_structurally_equal(a: &JitdFleet, b: &JitdFleet, trees: usize) {
    assert_eq!(a.stats.steps, b.stats.steps, "rewrite counts diverged");
    for t in 0..trees {
        let tree = TreeId::from_index(t as u32);
        let (ia, ib) = (a.index_of(tree), b.index_of(tree));
        assert_eq!(
            treetoaster::ast::sexpr::to_sexpr(ia.ast(), ia.ast().root()),
            treetoaster::ast::sexpr::to_sexpr(ib.ast(), ib.ast().root()),
            "tree {t} structural divergence"
        );
        for key in 0..RECORDS_PER_TREE + 16 {
            assert_eq!(ia.get(key), ib.get(key), "tree {t} read diverged at {key}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Piped == inline for every strategy, all three fleet workload
    /// shapes, and epoch lengths from one op per epoch to one epoch for
    /// the entire run.
    #[test]
    fn pipelined_commit_is_semantically_invisible(
        strategy_idx in 0usize..5,
        family_idx in 0usize..3,
        epoch_idx in 0usize..3,
        trees in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let strategy = StrategyKind::all()[strategy_idx];
        let family = ['G', 'H', 'I'][family_idx];
        let epoch = [1usize, 8, usize::MAX][epoch_idx];
        let inline = run(strategy, family, trees, seed, 72, epoch, false);
        let piped = run(strategy, family, trees, seed, 72, epoch, true);
        assert_structurally_equal(&inline, &piped, trees);
        inline.check_strategy_consistent().unwrap();
        piped.check_strategy_consistent().unwrap();
    }
}

/// Fixed-seed anchor (always runs, easy to bisect): the skewed fleet
/// workload with 8-op epochs must produce identical fleets *and* the
/// piped run must actually defer applies — every submit lands through
/// the pending-commit queue, advancing per-tree generations.
#[test]
fn pipelined_anchor_defers_applies_and_stays_equal() {
    let trees = 4;
    let mut inline = run(StrategyKind::TreeToaster, 'I', trees, 77, 144, 8, false);
    let mut piped = run(StrategyKind::TreeToaster, 'I', trees, 77, 144, 8, true);
    assert_structurally_equal(&inline, &piped, trees);
    let landed: u64 = (0..trees)
        .map(|t| piped.committed_generation(TreeId::from_index(t as u32)))
        .sum();
    assert!(
        landed > 0,
        "the piped run never landed an epoch through the committer queue"
    );
    inline.agreement_with_naive().unwrap();
    piped.agreement_with_naive().unwrap();
    piped.check_structure().unwrap();
}

/// The threaded anchor: a real committer thread lands sealed epochs
/// *while the op stream is still running* — commits provably overlap
/// operations instead of serializing behind them — and readers never
/// observe a torn epoch.
#[test]
fn async_committer_overlaps_the_op_stream() {
    let n = 256i64;
    // The pool thread exists but its heat threshold keeps it cold:
    // reorganization runs *inside* the epoch from this thread, so each
    // epoch deterministically closes mid-backlog with net deltas (a
    // pool racing the epoch to quiescence would cancel them all), and
    // the only background apply is the committer's.
    let jitd = AsyncJitd::spawn_parts_with(
        StrategyKind::TreeToaster,
        RuleConfig { crack_threshold: 8 },
        vec![(0..n).map(|k| Record::new(k, k * 7)).collect()],
        WorkerMode::Stealing(StealConfig {
            workers: 1,
            heat_threshold: u64::MAX,
        }),
        CommitMode::Async,
    );
    let mut next_key = n;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    // Epochs keep opening while the committer works: a nonzero drain
    // count observed *between* submits is the overlap witness.
    let mut overlapped = false;
    while !overlapped {
        assert!(
            std::time::Instant::now() < deadline,
            "committer never overlapped the op stream"
        );
        jitd.begin_batch_on(0);
        jitd.with_shard(0, |j| {
            for _ in 0..12 {
                let key = next_key;
                next_key += 1;
                j.execute(&Op::Insert {
                    key,
                    value: key * 3,
                });
            }
            // One partial round stages net deltas without cancelling
            // them back out.
            j.reorganize_round();
        });
        // Mid-epoch reads through the overlay stay exact.
        assert_eq!(
            jitd.get(next_key - 1),
            Some((next_key - 1) * 3),
            "torn read at {}",
            next_key - 1
        );
        jitd.submit_commit_on(0);
        // Pace the op stream: on an oversubscribed single core an
        // unpaced loop can re-take the shard lock every quantum (std
        // mutexes are unfair), delaying the committer for ms while the
        // barely-reorganized tree grows one graft per insert — deep
        // enough that the recursive reads above blow the test-thread
        // stack. Yielding while the lock is free hands the committer
        // its claim window each epoch; the overlap witness is unchanged
        // (epoch k still lands after epoch k+1 has opened).
        std::thread::yield_now();
        overlapped = jitd.commits_applied() > 0;
    }
    // Ops are still in flight here — the pipeline overlapped.
    jitd.execute_on(
        0,
        &Op::Insert {
            key: next_key,
            value: 1,
        },
    );
    assert_eq!(jitd.get(next_key), Some(1));
    let (mut runtimes, _) = jitd.stop();
    let runtime = &mut runtimes[0];
    runtime.reorganize_until_quiet(100_000);
    runtime.index().check_structure().unwrap();
    runtime.agreement_with_naive().unwrap();
    for key in (0..=next_key).step_by(13) {
        assert!(
            runtime.index().get(key).is_some() || key >= n,
            "preloaded key {key} lost"
        );
    }
}
