//! The matcher equivalence contract: the rule set's compiled match
//! automaton (`tt_pattern::automaton`) must be *observationally
//! identical* to the per-rule baseline matcher it replaced.
//!
//! Three layers, strongest first:
//!
//! 1. **Candidate-set equality** — over trees evolved by real JITD
//!    reorganization, one `for_each_match` walk must emit exactly the
//!    `(node, rule)` pairs that one `matches_with` evaluation per rule
//!    per node finds, and the single-rule `run_rule` entry must agree
//!    with `matches_with` at every site *including the reconstructed
//!    bindings* (the generators consume them; a permuted environment
//!    would rewrite the wrong subtrees).
//! 2. **Strategy transparency** — every maintenance strategy driven
//!    with the compiled matcher must leave the same index (point reads
//!    key by key), apply the same number of rewrites, and pass the
//!    rebuild oracle as its per-rule twin. The matcher is a search
//!    implementation detail; if any strategy can tell the difference,
//!    the automaton changed semantics, not just cost.
//! 3. **Shared-prefix anchor** — a fixed-seed structural check that
//!    overlapping patterns actually share trie states (the compilation's
//!    entire performance story) and still emit independently.

use proptest::prelude::*;
use treetoaster::ast::{Ast, Record};
use treetoaster::jitd::{full_rules, jitd_schema, paper_rules, scaled_rules};
use treetoaster::pattern::{
    dsl, matches_with, AutomatonScratch, Bindings, MatchAutomaton, Pattern,
};
use treetoaster::prelude::{Jitd, RuleConfig, RuleSet, StrategyKind, Workload, WorkloadSpec};

/// Drives a seeded workload through epoch-batched maintenance and
/// returns the runtime — its AST is a realistically reorganized tree
/// (cracked arrays, pushed-down singletons, delete markers).
fn evolved_jitd(
    strategy: StrategyKind,
    workload: char,
    seed: u64,
    ops: usize,
    compiled: bool,
) -> Jitd {
    let records: Vec<Record> = (0..96).map(|k| Record::new(k, k * 3)).collect();
    let mut jitd = Jitd::with_matcher(
        strategy,
        RuleConfig { crack_threshold: 8 },
        records,
        compiled,
    );
    let mut driver = Workload::new(WorkloadSpec::standard(workload), 96, seed);
    let mut done = 0;
    while done < ops {
        let chunk = 8.min(ops - done);
        jitd.begin_batch();
        for _ in 0..chunk {
            let op = driver.next_op();
            jitd.execute(&op);
        }
        jitd.reorganize_until_quiet(u64::MAX);
        jitd.commit_batch();
        done += chunk;
    }
    jitd
}

/// Every `(node, rule)` candidate under the root, per one automaton
/// walk.
fn automaton_candidates(rules: &RuleSet, ast: &Ast) -> Vec<(u32, usize)> {
    let mut scratch = AutomatonScratch::new();
    let mut out = Vec::new();
    rules
        .automaton()
        .for_each_match(ast, ast.root(), &mut scratch, &mut |n, rid, _| {
            out.push((n.index(), rid));
        });
    out.sort_unstable();
    out
}

/// The oracle: one `matches_with` evaluation per rule per node.
fn per_rule_candidates(rules: &RuleSet, ast: &Ast) -> Vec<(u32, usize)> {
    let mut bindings = Bindings::default();
    let mut out = Vec::new();
    for node in ast.descendants(ast.root()) {
        for (rid, rule) in rules.iter() {
            if matches_with(ast, node, &rule.pattern, &mut bindings) {
                out.push((node.index(), rid));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The rule sets the differential sweeps: the paper's five, the
/// appendix extensions, and the paper set padded with shared-structure
/// probe rules (`extra` > 0 exercises wildcard-free prefix merging at
/// depth).
fn rule_sets(extra: usize) -> Vec<RuleSet> {
    let schema = jitd_schema();
    let config = RuleConfig { crack_threshold: 8 };
    vec![
        paper_rules(&schema, config),
        full_rules(&schema, config),
        scaled_rules(&schema, config, extra),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Layer 1: candidate sets and per-site bindings agree on evolved
    /// trees, for every rule set shape.
    #[test]
    fn automaton_matches_per_rule_oracle_on_evolved_trees(
        seed in 0u64..100_000,
        workload_pick in 0..5usize,
        ops in 16..48usize,
        extra in 1..6usize,
    ) {
        let workload = ['A', 'B', 'C', 'D', 'F'][workload_pick];
        let jitd = evolved_jitd(StrategyKind::TreeToaster, workload, seed, ops, true);
        let ast = jitd.index().ast();
        for rules in rule_sets(extra) {
            let compiled = automaton_candidates(&rules, ast);
            let oracle = per_rule_candidates(&rules, ast);
            prop_assert_eq!(
                &compiled, &oracle,
                "candidate sets diverged (workload {}, {} rules)",
                workload, rules.len()
            );
            // Single-rule agreement, bindings included.
            let mut scratch = AutomatonScratch::new();
            let mut oracle_env = Bindings::default();
            for node in ast.descendants(ast.root()) {
                for (rid, rule) in rules.iter() {
                    let hit = rules.automaton().run_rule(ast, node, rid, &mut scratch);
                    let oracle_hit = matches_with(ast, node, &rule.pattern, &mut oracle_env);
                    prop_assert_eq!(hit, oracle_hit, "run_rule diverged on rule {}", rid);
                    if hit {
                        prop_assert_eq!(
                            scratch.bindings(), &oracle_env,
                            "bindings diverged on rule {}", rid
                        );
                    }
                }
            }
        }
    }

    /// Layer 2: no strategy can observe which matcher found its sites.
    #[test]
    fn every_strategy_is_matcher_transparent(
        seed in 0u64..100_000,
        workload_pick in 0..5usize,
        ops in 16..48usize,
    ) {
        let workload = ['A', 'B', 'C', 'D', 'F'][workload_pick];
        for strategy in StrategyKind::all() {
            let mut compiled = evolved_jitd(strategy, workload, seed, ops, true);
            let mut per_rule = evolved_jitd(strategy, workload, seed, ops, false);
            prop_assert_eq!(
                compiled.stats.steps, per_rule.stats.steps,
                "{} applied different rewrite counts per matcher", strategy.label()
            );
            prop_assert_eq!(
                &compiled.stats.rule_rewrites, &per_rule.stats.rule_rewrites,
                "{} attributed rewrites differently per matcher", strategy.label()
            );
            for key in 0..160 {
                prop_assert_eq!(
                    compiled.index().get(key), per_rule.index().get(key),
                    "{} diverged at key {} per matcher", strategy.label(), key
                );
            }
            for jitd in [&mut compiled, &mut per_rule] {
                jitd.check_strategy_consistent().map_err(|e| {
                    TestCaseError::fail(format!("{} (workload {workload}): {e}", strategy.label()))
                })?;
                jitd.agreement_with_naive().map_err(TestCaseError::fail)?;
            }
        }
    }
}

/// Layer 3, fixed seed: overlapping patterns share prefix states in the
/// trie, and one walk still emits each of them independently where they
/// match.
#[test]
fn shared_prefix_patterns_merge_states_and_emit_together() {
    let schema = jitd_schema();
    // `wide` subsumes `narrow`: same root and left child, but its right
    // child is a wildcard where `narrow` demands an Array.
    let wide = Pattern::compile(
        &schema,
        dsl::node(
            "BinTree",
            "B",
            [dsl::node("Array", "L", [], dsl::tru()), dsl::any()],
            dsl::tru(),
        ),
    );
    let narrow = Pattern::compile(
        &schema,
        dsl::node(
            "BinTree",
            "B",
            [
                dsl::node("Array", "L", [], dsl::tru()),
                dsl::node("Array", "R", [], dsl::tru()),
            ],
            dsl::tru(),
        ),
    );
    let merged = MatchAutomaton::compile([&wide, &narrow]);
    let separate: usize = [&wide, &narrow]
        .into_iter()
        .map(|p| MatchAutomaton::compile([p]).state_count())
        .sum();
    assert!(
        merged.state_count() < separate,
        "overlapping patterns must share trie states: merged {} vs separate {}",
        merged.state_count(),
        separate
    );

    // Probe rules differ only at accept time, so padding the rule set
    // must not grow the trie at all.
    let config = RuleConfig { crack_threshold: 8 };
    assert_eq!(
        scaled_rules(&schema, config, 1).automaton().state_count(),
        scaled_rules(&schema, config, 16).automaton().state_count(),
        "structurally identical probes must collapse onto one trie path"
    );

    // On a cracked tree, every site where `narrow` fires must also emit
    // `wide` — from the same walk, through the shared prefix.
    let jitd = evolved_jitd(StrategyKind::TreeToaster, 'A', 4242, 32, true);
    let ast = jitd.index().ast();
    let mut scratch = AutomatonScratch::new();
    let mut hits: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    merged.for_each_match(ast, ast.root(), &mut scratch, &mut |n, rid, _| {
        hits.entry(n.index()).or_default().push(rid);
    });
    let mut narrow_sites = 0;
    for (node, rids) in &hits {
        if rids.contains(&1) {
            assert!(
                rids.contains(&0),
                "wide subsumes narrow but was not emitted at node {node}"
            );
            narrow_sites += 1;
        }
    }
    assert!(
        narrow_sites > 0,
        "fixture tree must contain BinTree(Array, Array) sites"
    );
}
