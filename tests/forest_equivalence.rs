//! The forest isolation contract: a `ForestEngine` over N trees must be
//! observationally identical to N independent single-tree engines.
//!
//! The multi-tree runtime ([`JitdFleet`]) routes an interleaved fleet
//! stream (workloads G/H) to per-shard strategies behind one
//! `ForestEngine`, with per-tree maintenance epochs. The oracle replays
//! each tree's sub-stream — same per-tree op order, same epoch
//! boundaries, same reorganization bursts — through a plain single-tree
//! [`Jitd`]. For every strategy and batch size the two runs must agree
//! *structurally*: identical final ASTs per tree (s-expression
//! equality), consistent views/indexes against a from-scratch rebuild,
//! and identical rewrite counts. Any cross-shard leakage — a delta
//! staged to the wrong shard's buffer, an epoch commit flushing a
//! neighbor, shared scratch corrupting bindings — breaks structural
//! equality immediately.

use proptest::prelude::*;
use treetoaster::ast::{Record, TreeId};
use treetoaster::jitd::JitdFleet;
use treetoaster::prelude::{Jitd, Op, RuleConfig, StrategyKind};
use treetoaster::ycsb::{FleetSpec, FleetWorkload};

const RECORDS_PER_TREE: i64 = 48;

fn preload(t: usize) -> Vec<Record> {
    (0..RECORDS_PER_TREE)
        .map(|k| Record::new(k, k * 3 + t as i64))
        .collect()
}

/// Drives a fleet through `ops` operations of fleet workload `family`
/// in `batch_size`-op maintenance epochs (per-tree epochs open lazily on
/// first touch), recording each tree's per-epoch op chunks so the solo
/// oracle can replay them with identical boundaries.
#[allow(clippy::type_complexity)]
fn run_fleet(
    strategy: StrategyKind,
    family: char,
    trees: usize,
    seed: u64,
    ops: usize,
    batch_size: usize,
) -> (JitdFleet, Vec<Vec<Vec<Op>>>) {
    let mut fleet = JitdFleet::new(strategy, RuleConfig { crack_threshold: 8 }, trees, preload);
    let mut driver = FleetWorkload::new(
        FleetSpec::standard(family, trees),
        RECORDS_PER_TREE as u64,
        seed,
    );
    // Load-phase cracking per shard, exactly as each solo will do.
    for t in 0..trees {
        fleet.reorganize_until_quiet(TreeId::from_index(t as u32), u64::MAX);
    }
    // epochs[t] = the op chunks tree t saw, one entry per epoch that
    // touched it.
    let mut epochs: Vec<Vec<Vec<Op>>> = vec![Vec::new(); trees];
    let mut done = 0usize;
    while done < ops {
        let chunk = batch_size.min(ops - done);
        let mut touched: Vec<usize> = Vec::new();
        for _ in 0..chunk {
            let fop = driver.next_op();
            let tree = TreeId::from_index(fop.tree as u32);
            if !touched.contains(&fop.tree) {
                touched.push(fop.tree);
                fleet.begin_batch(tree);
                epochs[fop.tree].push(Vec::new());
            }
            fleet.execute(tree, &fop.op);
            epochs[fop.tree]
                .last_mut()
                .expect("epoch opened")
                .push(fop.op);
        }
        touched.sort_unstable();
        for &t in &touched {
            fleet.reorganize_until_quiet(TreeId::from_index(t as u32), u64::MAX);
        }
        for &t in &touched {
            fleet.commit_batch(TreeId::from_index(t as u32));
        }
        done += chunk;
    }
    (fleet, epochs)
}

/// Replays one tree's recorded epochs through an independent single-tree
/// runtime.
fn run_solo(strategy: StrategyKind, t: usize, epochs: &[Vec<Op>]) -> Jitd {
    let mut jitd = Jitd::new(strategy, RuleConfig { crack_threshold: 8 }, preload(t));
    jitd.reorganize_until_quiet(u64::MAX);
    for chunk in epochs {
        jitd.begin_batch();
        for op in chunk {
            jitd.execute(op);
        }
        jitd.reorganize_until_quiet(u64::MAX);
        jitd.commit_batch();
    }
    jitd
}

fn check_equivalence(
    strategy: StrategyKind,
    family: char,
    trees: usize,
    seed: u64,
    ops: usize,
    batch_size: usize,
) -> Result<(), TestCaseError> {
    let label = format!(
        "{} (workload {family}, {trees} trees, K={batch_size}, seed {seed})",
        strategy.label()
    );
    let (mut fleet, epochs) = run_fleet(strategy, family, trees, seed, ops, batch_size);
    fleet
        .check_strategy_consistent()
        .map_err(|e| TestCaseError::fail(format!("{label}: fleet inconsistent: {e}")))?;
    fleet
        .agreement_with_naive()
        .map_err(|e| TestCaseError::fail(format!("{label}: {e}")))?;
    fleet
        .check_structure()
        .map_err(|e| TestCaseError::fail(format!("{label}: {e}")))?;
    let mut solo_steps = 0u64;
    for (t, tree_epochs) in epochs.iter().enumerate() {
        let tree = TreeId::from_index(t as u32);
        let solo = run_solo(strategy, t, tree_epochs);
        solo_steps += solo.stats.steps;
        solo.check_strategy_consistent()
            .map_err(|e| TestCaseError::fail(format!("{label}: solo {t} inconsistent: {e}")))?;
        // Strongest check first: identical tree structure.
        let fleet_sexpr = treetoaster::ast::sexpr::to_sexpr(
            fleet.index_of(tree).ast(),
            fleet.index_of(tree).ast().root(),
        );
        let solo_sexpr =
            treetoaster::ast::sexpr::to_sexpr(solo.index().ast(), solo.index().ast().root());
        prop_assert_eq!(
            fleet_sexpr,
            solo_sexpr,
            "{}: tree {} structure diverged from the independent engine",
            &label,
            t
        );
        // And the key/value semantics over the touched key range.
        for key in 0..RECORDS_PER_TREE + 16 {
            prop_assert_eq!(
                fleet.index_of(tree).get(key),
                solo.index().get(key),
                "{}: tree {} read diverged at key {}",
                &label,
                t,
                key
            );
        }
    }
    prop_assert_eq!(
        fleet.stats.steps,
        solo_steps,
        "{}: fleet rewrite count != sum of independent engines",
        &label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ForestEngine over N trees == N independent single-tree engines,
    /// for all five strategies × batch sizes {1, K, ∞} × both fleet
    /// workload shapes.
    #[test]
    fn forest_engine_equals_independent_engines(
        seed in 0u64..100_000,
        trees in 2usize..4,
        k in 2usize..16,
        ops in 16usize..40,
        family_pick in 0usize..2,
    ) {
        let family = ['G', 'H'][family_pick];
        for strategy in StrategyKind::all() {
            for batch_size in [1usize, k, usize::MAX] {
                check_equivalence(strategy, family, trees, seed, ops, batch_size)?;
            }
        }
    }
}

/// Deterministic regression anchor: one fixed configuration per strategy
/// (fast, always runs, easy to bisect when the proptest shrinks badly —
/// the vendored stub does not shrink at all).
#[test]
fn forest_equivalence_fixed_seed() {
    for strategy in StrategyKind::all() {
        check_equivalence(strategy, 'G', 3, 1234, 48, 7)
            .unwrap_or_else(|e| panic!("{}: {e}", strategy.label()));
    }
}
