//! Property test: the s-expression printer and parser are mutual
//! inverses over randomly generated trees in both host schemas.

use proptest::prelude::*;
use treetoaster::ast::sexpr::{parse_sexpr, to_sexpr};
use treetoaster::ast::{Ast, NodeId, Record, Value};

/// Random arithmetic tree.
fn arith_tree(ast: &mut Ast, recipe: &[u8], idx: &mut usize, depth: usize) -> NodeId {
    let schema = ast.schema().clone();
    let byte = recipe.get(*idx).copied().unwrap_or(0);
    *idx += 1;
    if depth == 0 || byte % 3 == 0 {
        if byte % 2 == 0 {
            ast.alloc(
                schema.expect_label("Const"),
                vec![Value::Int((byte as i64) - 128)],
                vec![],
            )
        } else {
            ast.alloc(
                schema.expect_label("Var"),
                vec![Value::str(&format!("v{}", byte % 7))],
                vec![],
            )
        }
    } else {
        let l = arith_tree(ast, recipe, idx, depth - 1);
        let r = arith_tree(ast, recipe, idx, depth - 1);
        let op = if byte % 2 == 0 { "+" } else { "*" };
        ast.alloc(
            schema.expect_label("Arith"),
            vec![Value::str(op)],
            vec![l, r],
        )
    }
}

/// Random JITD tree (covers Recs and Rec payload syntax).
fn jitd_tree(ast: &mut Ast, recipe: &[u8], idx: &mut usize, depth: usize) -> NodeId {
    let schema = ast.schema().clone();
    let byte = recipe.get(*idx).copied().unwrap_or(0);
    *idx += 1;
    let array = schema.expect_label("Array");
    if depth == 0 || byte % 4 == 0 {
        match byte % 3 {
            0 => {
                let recs: Vec<Record> = (0..(byte % 5) as i64)
                    .map(|k| Record::new(k, k * 2))
                    .collect();
                let n = recs.len() as i64;
                ast.alloc(array, vec![Value::recs(recs), Value::Int(n)], vec![])
            }
            1 => ast.alloc(
                schema.expect_label("Singleton"),
                vec![Value::Int(byte as i64), Value::Int(1)],
                vec![],
            ),
            _ => {
                let child = ast.alloc(array, vec![Value::recs(vec![]), Value::Int(0)], vec![]);
                ast.alloc(
                    schema.expect_label("DeleteSingleton"),
                    vec![Value::Int(byte as i64)],
                    vec![child],
                )
            }
        }
    } else {
        let l = jitd_tree(ast, recipe, idx, depth - 1);
        let r = jitd_tree(ast, recipe, idx, depth - 1);
        if byte % 2 == 0 {
            ast.alloc(schema.expect_label("Concat"), vec![], vec![l, r])
        } else {
            ast.alloc(
                schema.expect_label("BinTree"),
                vec![Value::Int(byte as i64)],
                vec![l, r],
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arith_print_parse_roundtrip(recipe in proptest::collection::vec(any::<u8>(), 5..100)) {
        let schema = treetoaster::ast::schema::arith_schema();
        let mut ast = Ast::new(schema.clone());
        let mut idx = 0;
        let original = arith_tree(&mut ast, &recipe, &mut idx, 5);
        let text = to_sexpr(&ast, original);
        let reparsed = parse_sexpr(&mut ast, &text).expect("printer output parses");
        prop_assert!(ast.deep_eq(original, reparsed), "roundtrip changed the tree: {text}");
        prop_assert_eq!(to_sexpr(&ast, reparsed), text, "second print is stable");
    }

    #[test]
    fn jitd_print_parse_roundtrip(recipe in proptest::collection::vec(any::<u8>(), 5..80)) {
        let schema = treetoaster::jitd::jitd_schema();
        let mut ast = Ast::new(schema);
        let mut idx = 0;
        let original = jitd_tree(&mut ast, &recipe, &mut idx, 4);
        let text = to_sexpr(&ast, original);
        let reparsed = parse_sexpr(&mut ast, &text).expect("printer output parses");
        prop_assert!(ast.deep_eq(original, reparsed), "roundtrip changed the tree: {text}");
    }

    #[test]
    fn arena_clone_subtree_is_deep_equal(recipe in proptest::collection::vec(any::<u8>(), 5..80)) {
        let schema = treetoaster::ast::schema::arith_schema();
        let mut ast = Ast::new(schema);
        let mut idx = 0;
        let original = arith_tree(&mut ast, &recipe, &mut idx, 5);
        let size_before = ast.subtree_size(original);
        let copy = ast.clone_subtree(original);
        prop_assert!(ast.deep_eq(original, copy));
        prop_assert_eq!(ast.subtree_size(copy), size_before);
        // Clones are structurally disjoint: freeing one leaves the other.
        let freed = ast.free_subtree(copy);
        prop_assert_eq!(freed.len(), size_before);
        prop_assert_eq!(ast.subtree_size(original), size_before);
        ast.validate().map_err(TestCaseError::fail)?;
    }
}
