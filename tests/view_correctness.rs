//! Property-based verification of Lemma 5.2/5.4 (view correctness) for
//! every maintained strategy, over randomized trees and rewrite orders.
//!
//! Strategy: generate a random arithmetic AST, materialize views for a
//! two-rule set, then repeatedly apply randomly chosen rule instances.
//! After every application each engine's view must equal a from-scratch
//! match-set computation.

use proptest::prelude::*;
use std::sync::Arc;
use treetoaster::ast::{sexpr::to_sexpr, Ast, NodeId, Value};
use treetoaster::core::engine::MaintenanceMode;
use treetoaster::core::generator::reuse;
use treetoaster::core::{
    MatchSource, ReplaceCtx, RewriteRule, RuleFired, RuleSet, TreeToasterEngine,
};
use treetoaster::ivm::{ClassicIvm, DbtIvm};
use treetoaster::pattern::dsl::{any_as, attr, eq, int, node, str_};
use treetoaster::pattern::{match_node, match_set, Pattern};
use treetoaster::prelude::Schema;

fn arith_rules(schema: &Arc<Schema>) -> Arc<RuleSet> {
    let add_zero = RewriteRule::new(
        "AddZero",
        schema,
        Pattern::compile(
            schema,
            node(
                "Arith",
                "A",
                [
                    node("Const", "B", [], eq(attr("B", "val"), int(0))),
                    any_as("q"),
                ],
                eq(attr("A", "op"), str_("+")),
            ),
        ),
        reuse("q"),
    );
    let mul_one = RewriteRule::new(
        "MulOne",
        schema,
        Pattern::compile(
            schema,
            node(
                "Arith",
                "M",
                [
                    node("Const", "K", [], eq(attr("K", "val"), int(1))),
                    any_as("r"),
                ],
                eq(attr("M", "op"), str_("*")),
            ),
        ),
        reuse("r"),
    );
    Arc::new(RuleSet::from_rules(vec![add_zero, mul_one]))
}

/// Random expression tree described by a seed recipe (proptest shrinks
/// the recipe, which deterministically rebuilds the tree).
fn build_tree(ast: &mut Ast, recipe: &[u8], idx: &mut usize, depth: usize) -> NodeId {
    let schema = ast.schema().clone();
    let byte = recipe.get(*idx).copied().unwrap_or(0);
    *idx += 1;
    if depth == 0 || byte % 4 == 0 {
        // Leaf: Const of 0/1/2 or Var.
        match byte % 8 {
            0 | 4 => ast.alloc(schema.expect_label("Const"), vec![Value::Int(0)], vec![]),
            1 | 5 => ast.alloc(schema.expect_label("Const"), vec![Value::Int(1)], vec![]),
            2 | 6 => ast.alloc(schema.expect_label("Const"), vec![Value::Int(2)], vec![]),
            _ => ast.alloc(schema.expect_label("Var"), vec![Value::str("x")], vec![]),
        }
    } else {
        let left = build_tree(ast, recipe, idx, depth - 1);
        let right = build_tree(ast, recipe, idx, depth - 1);
        let op = if byte % 2 == 0 { "+" } else { "*" };
        ast.alloc(
            schema.expect_label("Arith"),
            vec![Value::str(op)],
            vec![left, right],
        )
    }
}

/// Drives a random rewrite sequence through one strategy, checking
/// view-vs-scan agreement after every step. Returns the rewrite count.
fn drive(
    strategy: &mut dyn MatchSource,
    ast: &mut Ast,
    rules: &Arc<RuleSet>,
    choices: &[u8],
    oracle: &dyn Fn(&mut dyn MatchSource, &Ast) -> Result<(), String>,
) -> usize {
    strategy.rebuild(ast);
    oracle(strategy, ast).expect("initial views exact");
    let mut applied = 0;
    for (tick, &choice) in choices.iter().enumerate() {
        let rid = (choice as usize) % rules.len();
        let Some(site) = strategy.find_one(ast, rid) else {
            continue;
        };
        let rule = rules.get(rid);
        let bindings = match_node(ast, site, &rule.pattern)
            .unwrap_or_else(|| panic!("stale match at {}", to_sexpr(ast, ast.root())));
        strategy.before_replace(ast, site, Some((rid, &bindings)));
        let result = rule.apply(ast, site, &bindings, tick as u64);
        let ctx = ReplaceCtx {
            old_root: result.old_root,
            new_root: result.new_root,
            removed: &result.removed,
            inserted: result.inserted(),
            parent_update: result.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: rid,
                bindings: &bindings,
                applied: &result,
            }),
        };
        strategy.after_replace(ast, &ctx);
        applied += 1;
        ast.validate().expect("tree intact");
        oracle(strategy, ast).expect("views exact after rewrite");
    }
    applied
}

/// Oracle comparing `find_one` agreement per rule plus, when available,
/// the engine-internal consistency check.
fn agreement_oracle(
    rules: Arc<RuleSet>,
) -> impl Fn(&mut dyn MatchSource, &Ast) -> Result<(), String> {
    move |strategy, ast| {
        for (rid, rule) in rules.iter() {
            let expected = !match_set(ast, ast.root(), &rule.pattern).is_empty();
            let got = strategy.find_one(ast, rid).is_some();
            if expected != got {
                return Err(format!(
                    "rule {rid} ({}): scan={expected} strategy={got}",
                    rule.name
                ));
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn treetoaster_views_stay_exact(
        recipe in proptest::collection::vec(any::<u8>(), 10..80),
        choices in proptest::collection::vec(any::<u8>(), 0..40),
        generic in any::<bool>(),
    ) {
        let schema = treetoaster::ast::schema::arith_schema();
        let rules = arith_rules(&schema);
        let mut ast = Ast::new(schema);
        let mut idx = 0;
        let root = build_tree(&mut ast, &recipe, &mut idx, 5);
        ast.set_root(root);
        let mode = if generic { MaintenanceMode::Generic } else { MaintenanceMode::Inlined };
        let mut engine = TreeToasterEngine::with_mode(rules.clone(), mode);
        drive(&mut engine, &mut ast, &rules, &choices, &agreement_oracle(rules.clone()));
        // Strong oracle on the final state: full view ≡ match-set equality.
        engine.check_views_correct(&ast).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn classic_views_stay_exact(
        recipe in proptest::collection::vec(any::<u8>(), 10..60),
        choices in proptest::collection::vec(any::<u8>(), 0..25),
    ) {
        let schema = treetoaster::ast::schema::arith_schema();
        let rules = arith_rules(&schema);
        let mut ast = Ast::new(schema);
        let mut idx = 0;
        let root = build_tree(&mut ast, &recipe, &mut idx, 4);
        ast.set_root(root);
        let mut engine = ClassicIvm::new(rules.clone(), &ast);
        drive(&mut engine, &mut ast, &rules, &choices, &agreement_oracle(rules.clone()));
        engine.check_views_correct().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn dbtoaster_views_stay_exact(
        recipe in proptest::collection::vec(any::<u8>(), 10..60),
        choices in proptest::collection::vec(any::<u8>(), 0..25),
    ) {
        let schema = treetoaster::ast::schema::arith_schema();
        let rules = arith_rules(&schema);
        let mut ast = Ast::new(schema);
        let mut idx = 0;
        let root = build_tree(&mut ast, &recipe, &mut idx, 4);
        ast.set_root(root);
        let mut engine = DbtIvm::new(rules.clone(), &ast);
        drive(&mut engine, &mut ast, &rules, &choices, &agreement_oracle(rules.clone()));
        engine.check_views_correct().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn inlined_and_generic_modes_agree(
        recipe in proptest::collection::vec(any::<u8>(), 10..80),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let schema = treetoaster::ast::schema::arith_schema();
        let rules = arith_rules(&schema);

        let run = |mode: MaintenanceMode| {
            let mut ast = Ast::new(schema.clone());
            let mut idx = 0;
            let root = build_tree(&mut ast, &recipe, &mut idx, 5);
            ast.set_root(root);
            let mut engine = TreeToasterEngine::with_mode(rules.clone(), mode);
            let applied =
                drive(&mut engine, &mut ast, &rules, &choices, &agreement_oracle(rules.clone()));
            (applied, to_sexpr(&ast, ast.root()))
        };
        let (a1, t1) = run(MaintenanceMode::Inlined);
        let (a2, t2) = run(MaintenanceMode::Generic);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(t1, t2);
    }
}
