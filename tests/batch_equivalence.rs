//! The batching correctness contract: for every strategy, a random
//! rewrite/operation sequence applied under epoch-batched maintenance —
//! at batch sizes 1 (the degenerate per-rewrite case), K, and ∞ (one
//! epoch for the whole run) — must leave the strategy's views/indexes
//! identical to a from-scratch rebuild over the final tree.
//!
//! `check_strategy_consistent` is the rebuild oracle: TreeToaster
//! re-scans every pattern (Definition 4 view correctness), the label
//! index diffs against a freshly built index, and the bolt-ons compare
//! their shadow database to the live AST and every materialized map to a
//! from-scratch evaluation.
//!
//! Since the views, posting lists, and epoch buffers moved onto the
//! dense storage layer (`tt_ast::dense`), this suite doubles as its
//! end-to-end exercise: every epoch stages into `NodeMap`/`NodeLabelMap`
//! pages and must still commit to exactly the rebuild state. The
//! structure-level differential complement is `tests/dense_storage.rs`.

use proptest::prelude::*;
use treetoaster::ast::Record;
use treetoaster::prelude::{Jitd, Op, RuleConfig, StrategyKind, Workload, WorkloadSpec};

/// Drives one seeded workload with `batch_size`-op maintenance epochs
/// (each epoch also runs a reorganization burst before committing).
fn run_batched(
    strategy: StrategyKind,
    workload: char,
    seed: u64,
    ops: usize,
    batch_size: usize,
) -> Jitd {
    let records: Vec<Record> = (0..96).map(|k| Record::new(k, k * 3)).collect();
    let mut jitd = Jitd::new(strategy, RuleConfig { crack_threshold: 8 }, records);
    let mut driver = Workload::new(WorkloadSpec::standard(workload), 96, seed);
    let mut done = 0;
    while done < ops {
        let chunk = batch_size.min(ops - done);
        jitd.begin_batch();
        for _ in 0..chunk {
            let op = driver.next_op();
            jitd.execute(&op);
        }
        jitd.reorganize_until_quiet(u64::MAX);
        jitd.commit_batch();
        done += chunk;
    }
    jitd
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batched_views_equal_rebuild_for_every_strategy(
        seed in 0u64..100_000,
        workload_pick in 0..5usize,
        k in 2..24usize,
        ops in 16..48usize,
    ) {
        let workload = ['A', 'B', 'C', 'D', 'F'][workload_pick];
        for strategy in StrategyKind::all() {
            for batch_size in [1usize, k, usize::MAX] {
                let mut jitd = run_batched(strategy, workload, seed, ops, batch_size);
                jitd.check_strategy_consistent().map_err(|e| {
                    TestCaseError::fail(format!(
                        "{} (workload {workload}, K={batch_size}): {e}",
                        strategy.label()
                    ))
                })?;
                jitd.agreement_with_naive().map_err(TestCaseError::fail)?;
                jitd.index().check_structure().map_err(TestCaseError::fail)?;
            }
        }
    }
}

/// Deterministic complement: identical op streams at batch sizes 1, K,
/// and ∞ must leave *semantically* identical indexes (point reads agree
/// for every key), even though staging changes which eligible site a
/// view pops first.
#[test]
fn batch_size_never_changes_index_semantics() {
    for strategy in StrategyKind::all() {
        let mut snapshots = Vec::new();
        for batch_size in [1usize, 8, usize::MAX] {
            let jitd = run_batched(strategy, 'A', 7177, 64, batch_size);
            let reads: Vec<Option<i64>> = (0..160).map(|key| jitd.index().get(key)).collect();
            snapshots.push((batch_size, reads));
        }
        let (_, reference) = &snapshots[0];
        for (batch_size, reads) in &snapshots[1..] {
            assert_eq!(
                reads,
                reference,
                "{} diverged at K={batch_size}",
                strategy.label()
            );
        }
    }
}

/// Mid-epoch reads return only live matches: interleave finds with
/// batched rewrites and validate each returned site against the naive
/// matcher before applying it (the runtime's `reorganize_step` does this
/// with `match_node` and would panic on a stale site).
#[test]
fn mid_epoch_finds_are_never_stale() {
    for strategy in StrategyKind::all() {
        let records: Vec<Record> = (0..128).map(|k| Record::new(k, k)).collect();
        let mut jitd = Jitd::new(strategy, RuleConfig { crack_threshold: 8 }, records);
        let mut driver = Workload::new(WorkloadSpec::standard('F'), 128, 99);
        for _ in 0..6 {
            jitd.begin_batch();
            for _ in 0..10 {
                let op = driver.next_op();
                jitd.execute(&op);
                // Every reorganize_step inside the open epoch re-derives
                // bindings via match_node — a stale find panics here.
                jitd.reorganize_round();
            }
            jitd.commit_batch();
            jitd.check_strategy_consistent()
                .unwrap_or_else(|e| panic!("{}: {e}", jitd.kind().label()));
        }
        let _ = jitd.index().get(1);
    }
}

/// The degenerate protocol: begin/commit with nothing staged, commits
/// without begins, and strategies that keep no state at all.
#[test]
fn empty_epochs_are_noops() {
    for strategy in StrategyKind::all() {
        let records: Vec<Record> = (0..32).map(|k| Record::new(k, k)).collect();
        let mut jitd = Jitd::new(strategy, RuleConfig { crack_threshold: 8 }, records);
        jitd.commit_batch(); // no open epoch
        jitd.begin_batch();
        jitd.commit_batch(); // open, nothing staged
        jitd.begin_batch();
        jitd.begin_batch(); // reentrant
        jitd.commit_batch();
        jitd.check_strategy_consistent().unwrap();
        jitd.execute(&Op::Read { key: 3 });
    }
}
