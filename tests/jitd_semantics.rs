//! Model-based testing of the JITD host: arbitrary operation streams
//! against a `BTreeMap` reference model, under every search strategy and
//! under the extended rule set — the paper's implicit invariant that
//! reorganization rewrites never change the index's contents.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use treetoaster::ast::Record;
use treetoaster::core::{MatchCore, NaiveStrategy};
use treetoaster::jitd::{full_rules, jitd_schema, Jitd, JitdIndex, RuleConfig, StrategyKind};
use treetoaster::pattern::match_node;
use treetoaster::prelude::{Op, RuleSet};

#[derive(Debug, Clone)]
enum ModelOp {
    Insert(i64, i64),
    Delete(i64),
    Read(i64),
    Scan(i64, usize),
    Reorganize,
}

fn model_op_strategy(key_space: i64) -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (0..key_space, any::<i64>()).prop_map(|(k, v)| ModelOp::Insert(k, v % 1000)),
        (0..key_space).prop_map(ModelOp::Delete),
        (0..key_space).prop_map(ModelOp::Read),
        (0..key_space, 1..20usize).prop_map(|(k, n)| ModelOp::Scan(k, n)),
        Just(ModelOp::Reorganize),
    ]
}

fn check_against_model(jitd: &Jitd, model: &BTreeMap<i64, i64>, key_space: i64) {
    for k in 0..key_space {
        assert_eq!(
            jitd.index().get(k),
            model.get(&k).copied(),
            "strategy {} wrong at key {k}",
            jitd.kind().label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_strategy_preserves_kv_semantics(
        ops in proptest::collection::vec(model_op_strategy(64), 1..60),
        strategy_pick in 0..5usize,
    ) {
        let strategy = StrategyKind::all()[strategy_pick];
        let initial: Vec<Record> = (0..32).map(|k| Record::new(k, k * 10)).collect();
        let mut model: BTreeMap<i64, i64> = initial.iter().map(|r| (r.key, r.value)).collect();
        let mut jitd = Jitd::new(strategy, RuleConfig { crack_threshold: 8 }, initial);

        for op in &ops {
            match *op {
                ModelOp::Insert(k, v) => {
                    jitd.execute(&Op::Insert { key: k, value: v });
                    model.insert(k, v);
                }
                ModelOp::Delete(k) => {
                    jitd.delete(k);
                    model.remove(&k);
                }
                ModelOp::Read(k) => {
                    prop_assert_eq!(jitd.index().get(k), model.get(&k).copied());
                }
                ModelOp::Scan(k, n) => {
                    let got = jitd.index().scan(k, n);
                    let want: Vec<Record> = model
                        .range(k..)
                        .take(n)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                ModelOp::Reorganize => {
                    jitd.reorganize_round();
                    jitd.agreement_with_naive().map_err(TestCaseError::fail)?;
                }
            }
        }
        jitd.reorganize_until_quiet(50_000);
        jitd.index().check_structure().map_err(TestCaseError::fail)?;
        check_against_model(&jitd, &model, 64);
    }

    #[test]
    fn full_rule_set_converges_and_preserves_contents(
        inserts in proptest::collection::vec((0..128i64, 0..1000i64), 0..40),
        deletes in proptest::collection::vec(0..128i64, 0..15),
    ) {
        let schema = jitd_schema();
        let rules = Arc::new(full_rules(&schema, RuleConfig { crack_threshold: 8 }));
        let initial: Vec<Record> = (0..64).map(|k| Record::new(k, k)).collect();
        let mut model: BTreeMap<i64, i64> = initial.iter().map(|r| (r.key, r.value)).collect();
        let mut idx = JitdIndex::load(initial);

        for &(k, v) in &inserts {
            idx.wrap_insert(k, v);
            model.insert(k, v);
        }
        for &k in &deletes {
            idx.wrap_delete(k);
            model.remove(&k);
        }

        // Drive the full rule set to a fixpoint naively.
        let mut naive = NaiveStrategy::new(rules.clone());
        let mut tick = 0u64;
        let mut budget = 100_000u64;
        loop {
            let mut fired = false;
            for (rid, rule) in rules.iter() {
                while let Some(site) = naive.find_one(idx.ast(), rid) {
                    let bindings = match_node(idx.ast(), site, &rule.pattern).unwrap();
                    rule.apply(idx.ast_mut(), site, &bindings, tick);
                    tick += 1;
                    fired = true;
                    budget -= 1;
                    prop_assert!(budget > 0, "rule set failed to converge");
                }
            }
            if !fired {
                break;
            }
        }
        idx.check_structure().map_err(TestCaseError::fail)?;
        // The fixpoint is semantic, not syntactic: a few update wrappers
        // may persist where the rule vocabulary cannot dissolve them
        // (e.g. a Singleton stacked over a tombstone — real JITD keeps
        // structural Concats too). What must hold: termination (the
        // budget above) and content equivalence with the model.
        for k in 0..128 {
            prop_assert_eq!(idx.get(k), model.get(&k).copied());
        }
    }
}

/// Deterministic cross-strategy divergence check: the same op stream must
/// leave all five strategies with semantically identical indexes even
/// though their reorganization orders differ.
#[test]
fn strategies_reach_equivalent_indexes_on_shared_stream() {
    use treetoaster::prelude::{Workload, WorkloadSpec};
    let key_space = 96u64;
    let mut results: Vec<(StrategyKind, Vec<Option<i64>>)> = Vec::new();
    for strategy in StrategyKind::all() {
        let initial: Vec<Record> = (0..key_space as i64).map(|k| Record::new(k, k)).collect();
        let mut jitd = Jitd::new(strategy, RuleConfig { crack_threshold: 8 }, initial);
        let mut workload = Workload::new(WorkloadSpec::standard('A'), key_space, 2024);
        for _ in 0..80 {
            let op = workload.next_op();
            jitd.execute(&op);
            jitd.reorganize_round();
        }
        jitd.reorganize_until_quiet(100_000);
        let snapshot: Vec<Option<i64>> = (0..key_space as i64 + 90)
            .map(|k| jitd.index().get(k))
            .collect();
        results.push((strategy, snapshot));
    }
    let (_, reference) = &results[0];
    for (strategy, snapshot) in &results[1..] {
        assert_eq!(snapshot, reference, "{} diverged", strategy.label());
    }
}

/// The shared RuleSet import is exercised (silences the unused warning in
/// configurations where proptest shrinks everything away).
#[test]
fn rule_set_types_compose() {
    let schema = jitd_schema();
    let rules: Arc<RuleSet> = Arc::new(treetoaster::jitd::paper_rules(
        &schema,
        RuleConfig::default(),
    ));
    assert_eq!(rules.len(), 5);
}

/// Workload E (the scan-heavy sixth YCSB workload the paper ran but does
/// not plot): scans must stay correct across reorganization under every
/// strategy.
#[test]
fn workload_e_scans_survive_reorganization() {
    use treetoaster::prelude::{Workload, WorkloadSpec};
    let n = 256u64;
    for strategy in StrategyKind::all() {
        let initial: Vec<Record> = (0..n as i64).map(|k| Record::new(k, k * 3)).collect();
        let mut model: BTreeMap<i64, i64> = initial.iter().map(|r| (r.key, r.value)).collect();
        let mut jitd = Jitd::new(
            strategy,
            RuleConfig {
                crack_threshold: 16,
            },
            initial,
        );
        let mut workload = Workload::new(WorkloadSpec::standard('E'), n, 77);
        for _ in 0..60 {
            let op = workload.next_op();
            if let Op::Insert { key, value } = op {
                model.insert(key, value);
            }
            jitd.execute(&op);
            jitd.reorganize_round();
        }
        // Verify scans at several origins against the model.
        for low in [0i64, 7, 100, 250, 400] {
            let got = jitd.index().scan(low, 25);
            let want: Vec<Record> = model
                .range(low..)
                .take(25)
                .map(|(&k, &v)| Record::new(k, v))
                .collect();
            assert_eq!(got, want, "{} scan from {low}", strategy.label());
        }
        jitd.agreement_with_naive().unwrap();
        jitd.index().check_structure().unwrap();
    }
}
