//! End-to-end checks on the optimizer simulators: all 22 TPC-H-shaped
//! plans and the antipattern optimize to the same normal form under
//! naive scanning, TreeToaster views, and the Orca-style driver, and the
//! instrumentation invariants the figures rely on hold.

use treetoaster::queryopt::antipattern::union_doubling;
use treetoaster::queryopt::catalyst::{optimize, SearchMode};
use treetoaster::queryopt::orca::optimize_orca;
use treetoaster::queryopt::tpch;

#[test]
fn tpch_naive_and_tt_agree_on_every_query() {
    for q in 1..=22 {
        let mut naive_ast = tpch::build_query(q, 11);
        let mut tt_ast = tpch::build_query(q, 11);
        let naive = optimize(&mut naive_ast, SearchMode::NaiveScan, 100);
        let tt = optimize(&mut tt_ast, SearchMode::TreeToasterViews, 100);
        assert_eq!(
            naive.final_size, tt.final_size,
            "Q{q}: naive={naive:?} tt={tt:?}"
        );
        assert_eq!(
            naive.effective_count, tt.effective_count,
            "Q{q}: same rewrites must fire"
        );
        assert_eq!(tt.ineffective_count, 0, "folded rules never abort");
        naive_ast.validate().unwrap();
        tt_ast.validate().unwrap();
    }
}

#[test]
fn tpch_orca_agrees_on_every_query() {
    for q in 1..=22 {
        let mut cat_ast = tpch::build_query(q, 5);
        let mut orca_ast = tpch::build_query(q, 5);
        let cat = optimize(&mut cat_ast, SearchMode::NaiveScan, 100);
        let orca = optimize_orca(&mut orca_ast, u64::MAX);
        assert_eq!(cat.final_size, orca.final_size, "Q{q}");
        orca_ast.validate().unwrap();
    }
}

#[test]
fn antipattern_agreement_across_drivers() {
    for level in 1..=3 {
        let mut a = union_doubling(level);
        let mut b = union_doubling(level);
        let mut c = union_doubling(level);
        let naive = optimize(&mut a, SearchMode::NaiveScan, 60);
        let tt = optimize(&mut b, SearchMode::TreeToasterViews, 60);
        let orca = optimize_orca(&mut c, u64::MAX);
        assert_eq!(naive.final_size, tt.final_size, "level {level}");
        assert_eq!(naive.final_size, orca.final_size, "level {level}");
    }
}

#[test]
fn search_dominates_naive_but_not_tt() {
    // The paper's core claim, in miniature: on a large plan, naive search
    // is the dominant cost and TreeToaster removes almost all of it.
    let mut naive_ast = union_doubling(4);
    let mut tt_ast = union_doubling(4);
    let naive = optimize(&mut naive_ast, SearchMode::NaiveScan, 60);
    let tt = optimize(&mut tt_ast, SearchMode::TreeToasterViews, 60);
    // A loose bound: in unoptimized test builds the construct-and-discard
    // phases are relatively more expensive than matching, deflating the
    // share (the release-mode figure benches land in the paper's range).
    assert!(
        naive.search_fraction() > 0.15,
        "naive search share too low: {}",
        naive.search_fraction()
    );
    assert!(
        tt.search_ns < naive.search_ns / 10,
        "TT search {} should be well under naive {}",
        tt.search_ns,
        naive.search_ns
    );
}

#[test]
fn breakdown_counts_are_stable_across_seeds() {
    // Structural determinism: the same (query, seed) optimizes the same
    // way twice.
    for seed in [1, 99] {
        let mut a = tpch::build_query(7, seed);
        let mut b = tpch::build_query(7, seed);
        let bd_a = optimize(&mut a, SearchMode::NaiveScan, 100);
        let bd_b = optimize(&mut b, SearchMode::NaiveScan, 100);
        assert_eq!(bd_a.effective_count, bd_b.effective_count);
        assert_eq!(bd_a.ineffective_count, bd_b.ineffective_count);
        assert_eq!(bd_a.final_size, bd_b.final_size);
    }
}
