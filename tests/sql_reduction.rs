//! Property-based equivalence of the Figure-6 reduction: evaluating the
//! reduced SPJ query over the relational encoding must return exactly the
//! tree matcher's match set, for randomized trees and several pattern
//! shapes.

use proptest::prelude::*;
use treetoaster::ast::{Ast, NodeId, Value};
use treetoaster::pattern::dsl::any as wildcard;
use treetoaster::pattern::dsl::{add, attr, eq, gt, int, lt, node, str_, tru};
use treetoaster::pattern::{match_set, Pattern, SqlQuery};
use treetoaster::relational::{evaluate, Database};

fn build_tree(ast: &mut Ast, recipe: &[u8], idx: &mut usize, depth: usize) -> NodeId {
    let schema = ast.schema().clone();
    let byte = recipe.get(*idx).copied().unwrap_or(0);
    *idx += 1;
    if depth == 0 || byte % 3 == 0 {
        match byte % 6 {
            0 | 3 => ast.alloc(schema.expect_label("Const"), vec![Value::Int(0)], vec![]),
            1 | 4 => ast.alloc(
                schema.expect_label("Const"),
                vec![Value::Int((byte % 5) as i64)],
                vec![],
            ),
            _ => ast.alloc(schema.expect_label("Var"), vec![Value::str("v")], vec![]),
        }
    } else {
        let left = build_tree(ast, recipe, idx, depth - 1);
        let right = build_tree(ast, recipe, idx, depth - 1);
        let op = if byte % 2 == 0 { "+" } else { "*" };
        ast.alloc(
            schema.expect_label("Arith"),
            vec![Value::str(op)],
            vec![left, right],
        )
    }
}

fn patterns() -> Vec<Pattern> {
    let schema = treetoaster::ast::schema::arith_schema();
    vec![
        // Example 3.1's query.
        Pattern::compile(
            &schema,
            node(
                "Arith",
                "a",
                [
                    node("Const", "b", [], eq(attr("b", "val"), int(0))),
                    node("Var", "c", [], tru()),
                ],
                eq(attr("a", "op"), str_("+")),
            ),
        ),
        // Single-atom with constraint.
        Pattern::compile(
            &schema,
            node("Const", "k", [], gt(attr("k", "val"), int(1))),
        ),
        // Nested self-join: Arith over Arith.
        Pattern::compile(
            &schema,
            node(
                "Arith",
                "outer",
                [
                    node("Arith", "inner", [wildcard(), wildcard()], tru()),
                    wildcard(),
                ],
                tru(),
            ),
        ),
        // Cross-node constraint: parent op equals anything while child
        // value is bounded by arithmetic (b.val + 1 < 3).
        Pattern::compile(
            &schema,
            node(
                "Arith",
                "p",
                [
                    node("Const", "b", [], lt(add(attr("b", "val"), int(1)), int(3))),
                    wildcard(),
                ],
                tru(),
            ),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relational_evaluation_equals_tree_matching(
        recipe in proptest::collection::vec(any::<u8>(), 5..120),
    ) {
        let schema = treetoaster::ast::schema::arith_schema();
        let mut ast = Ast::new(schema);
        let mut idx = 0;
        let root = build_tree(&mut ast, &recipe, &mut idx, 5);
        ast.set_root(root);
        let db = Database::from_ast(&ast, root);

        for pattern in patterns() {
            let query = SqlQuery::from_pattern(&pattern);
            let mut via_sql: Vec<NodeId> = evaluate(&db, &query)
                .iter()
                .map(|row| row[query.root_var().0 as usize])
                .collect();
            let mut via_tree = match_set(&ast, root, &pattern);
            via_sql.sort();
            via_tree.sort();
            prop_assert_eq!(via_sql, via_tree, "pattern {} diverged", pattern);
        }
    }

    #[test]
    fn multiset_algebra_laws(
        items_a in proptest::collection::vec((0u32..50, -3i64..3), 0..30),
        items_b in proptest::collection::vec((0u32..50, -3i64..3), 0..30),
    ) {
        use treetoaster::ast::GenMultiset;
        let a: GenMultiset = items_a.iter().map(|&(n, c)| (NodeId::from_index(n), c)).collect();
        let b: GenMultiset = items_b.iter().map(|&(n, c)| (NodeId::from_index(n), c)).collect();
        // Commutativity of ⊕.
        prop_assert_eq!(a.union(&b), b.union(&a));
        // a ⊕ b ⊖ b = a.
        prop_assert_eq!(a.union(&b).difference(&b), a.clone());
        // a ⊖ a = ∅.
        prop_assert!(a.difference(&a).is_empty());
        // Support never contains zero multiplicities.
        for (_, c) in a.union(&b).iter() {
            prop_assert_ne!(c, 0);
        }
    }
}
