//! # TreeToaster
//!
//! A from-scratch Rust reproduction of *TreeToaster: Towards an
//! IVM-Optimized Compiler* (Balakrishnan, Nuessle, Kennedy, Ziarek;
//! SIGMOD 2021): incremental view maintenance specialized for compiler
//! abstract syntax trees.
//!
//! A compiler's optimizer repeatedly scans its AST for subtrees matching
//! rewrite rules. TreeToaster materializes, per rule, a view of all
//! currently eligible nodes and maintains it incrementally as the tree is
//! rewritten — making "find me a rewrite opportunity" an O(1) pop instead
//! of a tree walk, with memory measured in words per match rather than a
//! shadow copy of the AST.
//!
//! ## Crate map
//!
//! - [`ast`] — arena-based mutable ASTs, schemas, generalized multisets.
//! - [`pattern`] — the pattern/constraint query grammars, their
//!   semantics, the naive matcher, and the SQL reduction.
//! - [`relational`] — the relational encoding bolt-on engines run on.
//! - [`labelindex`] — the §4.1 label-index baseline.
//! - [`ivm`] — bolt-on baselines: classic cascading IVM and a
//!   DBToaster-style higher-order engine.
//! - [`core`] — TreeToaster itself: views, maximal-search-set
//!   maintenance, declarative rewrite rules, Algorithm-3 inlining, and
//!   the five-strategy `MatchSource` abstraction.
//! - [`jitd`] — the JustInTimeData host compiler (§7's evaluation bed).
//! - [`ycsb`] — the YCSB workload generator driving it.
//! - [`queryopt`] — Catalyst/Orca-style optimizer simulators for the
//!   motivation and appendix experiments.
//! - [`metrics`] — timing/memory/statistics plumbing.
//! - [`service`] — the `tt-serve` plan-serving daemon: multi-tenant
//!   sessions over one shared fleet, a length-prefixed wire protocol,
//!   and the typed client (`examples/serve_demo.rs` drives it).
//!
//! ## Quickstart
//!
//! An optimizer never holds just one plan, so the front door is the
//! forest: a fleet of independent trees, one strategy instance per
//! shard, one shared compiled rule set, and a priority fleet search.
//!
//! ```
//! use std::sync::Arc;
//! use treetoaster::prelude::*;
//! use treetoaster::pattern::dsl;
//! use treetoaster::core::generator;
//!
//! // The paper's running example: eliminate additions of zero.
//! let schema = treetoaster::ast::schema::arith_schema();
//! let pattern = Pattern::compile(&schema, dsl::node(
//!     "Arith", "A",
//!     [dsl::node("Const", "B", [], dsl::eq(dsl::attr("B", "val"), dsl::int(0))),
//!      dsl::node("Var", "C", [], dsl::tru())],
//!     dsl::eq(dsl::attr("A", "op"), dsl::str_("+")),
//! ));
//! let rule = RewriteRule::new("AddZero", &schema, pattern, generator::reuse("C"));
//! let rules = Arc::new(RuleSet::from_rules(vec![rule]));
//!
//! // A fleet of three plans; only the second contains the pattern.
//! let mut forest = Forest::new(schema.clone());
//! for text in [r#"(Var name="a")"#,
//!              r#"(Arith op="+" (Const val=0) (Var name="x"))"#,
//!              r#"(Const val=3)"#] {
//!     let id = forest.add_tree();
//!     let root = treetoaster::ast::sexpr::parse_sexpr(
//!         forest.tree_mut(id), text).unwrap();
//!     forest.tree_mut(id).set_root(root);
//! }
//!
//! // One TreeToaster engine per shard over the shared rule set: every
//! // shard gets its own views and its own epochs.
//! let mut engine: ForestEngine<TreeToasterEngine> =
//!     ForestEngine::from_forest(rules, &forest, |r, _| TreeToasterEngine::new(r));
//! engine.rebuild(&forest);
//!
//! // The fleet search is a priority scan (hot shards probed first) and
//! // answers with a globally addressed match.
//! let hit = engine.find_anywhere(&forest, 0).expect("one plan matches");
//! assert_eq!(hit.tree, TreeId::from_index(1));
//! assert_eq!(engine.shard(hit.tree).view(0).len(), 1);
//! ```
//!
//! The single-tree engine is the degenerate one-shard case
//! (`TreeToasterEngine::rebuild` + `find_one` over a plain [`ast::Ast`]);
//! `jitd::JitdFleet` wraps the forest in the paper's key/value evaluation
//! bed, and `jitd::AsyncJitd` adds background reorganization — dedicated
//! workers or a work-stealing pool (`jitd::steal`).

pub use treetoaster_core as core;
pub use tt_ast as ast;
pub use tt_ivm as ivm;
pub use tt_jitd as jitd;
pub use tt_labelindex as labelindex;
pub use tt_metrics as metrics;
pub use tt_pattern as pattern;
pub use tt_queryopt as queryopt;
pub use tt_relational as relational;
pub use tt_service as service;
pub use tt_ycsb as ycsb;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use treetoaster_core::{
        EngineConfig, EpochOps, FleetConfig, ForestEngine, MatchCore, MatchSource, MatchView,
        ReplaceCtx, RewriteRule, RuleFired, RuleSet, TreeToasterEngine,
    };
    pub use tt_ast::{
        Ast, Forest, GenMultiset, GlobalNodeId, NodeId, Record, Schema, TreeId, Value,
    };
    pub use tt_ivm::{ClassicIvm, DbtIvm};
    pub use tt_jitd::{AsyncJitd, Jitd, JitdFleet, JitdIndex, RuleConfig, StrategyKind};
    pub use tt_labelindex::LabelIndex;
    pub use tt_pattern::{match_node, match_set, Bindings, Pattern};
    pub use tt_service::{Client, Daemon, Server, ServiceError};
    pub use tt_ycsb::{Op, Workload, WorkloadSpec};
}
