//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! a deterministic, API-compatible shim: `rngs::StdRng`, `SeedableRng`,
//! and the `Rng` extension methods (`gen`, `gen_bool`, `gen_range`).
//! `StdRng` is xoshiro256** seeded via SplitMix64 — not cryptographic,
//! but statistically solid for the YCSB/Zipfian workload generators here.
//! Swap this path dependency for crates.io `rand` when a registry is
//! reachable; call sites need no changes.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from the generator's uniform stream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable over a range, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)` (`[low, high]` if `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Check emptiness in i128 BEFORE the u128 cast: an
                // inverted range must panic (as crates.io rand does),
                // not wrap into a huge span and sample garbage.
                let span = high as i128 - low as i128 + inclusive as i128;
                assert!(span > 0, "cannot sample empty range");
                // Modulo bias is < 2^-64 for the spans used here.
                let offset = (rng.next_u64() as u128) % span as u128;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "cannot sample empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. The blanket impls
/// over [`SampleUniform`] (rather than per-type impls) are what let
/// unsuffixed literals like `0..5` infer their type from the call site.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform stream.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stub for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, per Blackman & Vigna.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(0..17);
            assert!(v < 17);
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }
    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    // The reversed range is the point: it must panic, not wrap.
    #[allow(clippy::reversed_empty_ranges)]
    fn inverted_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(10..5);
    }
}
