//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` test macro (with `#![proptest_config]`),
//! strategies over integer ranges, tuples, `any::<T>()`, `Just`,
//! `prop_oneof!`, `.prop_map(..)`, `collection::vec`, and the
//! `prop_assert*` macros. Generation is deterministic (seeded per test
//! name) and there is **no shrinking** — failures report the full
//! generated case instead of a minimal one. Swap this path dependency
//! for crates.io `proptest` when a registry is reachable; call sites
//! need no changes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many random cases each `proptest!` test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case, usable with `?` inside
    /// `proptest!` bodies.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A hard failure with the given reason.
        pub fn fail(reason: impl std::fmt::Display) -> Self {
            TestCaseError(reason.to_string())
        }

        /// A rejected case (the stub treats rejection as failure).
        pub fn reject(reason: impl std::fmt::Display) -> Self {
            TestCaseError(reason.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between several same-valued strategies; the
    /// expansion of `prop_oneof!`.
    pub struct Union<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `branches` (must be non-empty).
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let pick = rng.gen_range(0..self.branches.len());
            self.branches[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D));
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length bounds for generated collections. Mirrors proptest's
    /// `SizeRange`; the unique `From<Range<usize>>` impl is what makes
    /// unsuffixed literals like `5..100` infer as `usize`.
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.min..self.len.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable seeds independent of link order.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests: each named fn runs `config.cases` times with
/// freshly generated inputs. No shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $param:ident in $strat:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $param = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    // The immediately-called closure is what gives `?` in
                    // the test body a `Result` context to return into.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a property holds (stub: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Get(i64),
        Put(i64, i64),
        Nop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..64i64).prop_map(Op::Get),
            (0..64i64, 0..1000i64).prop_map(|(k, v)| Op::Put(k, v)),
            Just(Op::Nop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(
            items in crate::collection::vec(any::<u8>(), 3..10),
            pick in 0..5usize,
        ) {
            prop_assert!((3..10).contains(&items.len()));
            prop_assert!(pick < 5);
        }

        #[test]
        fn oneof_hits_every_branch(ops in crate::collection::vec(op_strategy(), 64..65)) {
            let gets = ops.iter().filter(|o| matches!(o, Op::Get(_))).count();
            prop_assert!(gets < 64, "union never picked the other branches");
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        use crate::strategy::Strategy;
        let s = 0..1000u64;
        let a: Vec<u64> = {
            let mut rng = crate::__rng_for("x");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::__rng_for("x");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
