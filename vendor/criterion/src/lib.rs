//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses: `Criterion` with builder knobs, `benchmark_group`/
//! `bench_function`, `Bencher::{iter, iter_batched}`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. It is a real (if
//! simple) wall-clock harness — warm-up, then `sample_size` timed
//! samples, reporting mean and min per iteration — not a no-op, so
//! `cargo bench` produces usable numbers offline. Swap this path
//! dependency for crates.io `criterion` when a registry is reachable;
//! call sites need no changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch sizing hints for [`Bencher::iter_batched`]. The stub times one
/// routine call per setup (criterion's `PerIteration` behaviour), which
/// is correct for every variant, just less amortized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: criterion would batch many per setup.
    SmallInput,
    /// Large inputs: criterion would batch few per setup.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Per-sample measurement state handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark driver: collects samples and prints a one-line summary per
/// benchmark, mirroring `criterion::Criterion`'s builder API.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// No-op CLI hook kept for `criterion_main!` compatibility (`cargo
    /// bench` passes `--bench` etc., which the stub ignores).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group; benchmarks inside report as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Final reporting hook; the stub prints per-benchmark, so this is a
    /// no-op kept for `criterion_main!` compatibility.
    pub fn final_summary(&mut self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // Warm-up with single iterations, estimating per-iter cost.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        let warm_up_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        }

        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{id:<48} time: [mean {} min {}]  ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            self.sample_size,
            iters
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (reporting is immediate, so this is cosmetic).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Mirrors `criterion::criterion_group!`: both the plain and the
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(
                || 21u64,
                |x| {
                    ran += 1;
                    x * 2
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(ran > 0);
    }
}
