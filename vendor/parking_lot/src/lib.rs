//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a `Mutex` whose `lock()` returns the guard directly (no poison
//! `Result`). Backed by `std::sync::Mutex`; poisoning is swallowed, which
//! matches parking_lot's no-poisoning semantics. Swap this path
//! dependency for crates.io `parking_lot` when a registry is reachable.

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex with `parking_lot`'s panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
