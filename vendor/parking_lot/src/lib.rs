//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a `Mutex` whose `lock()` returns the guard directly (no poison
//! `Result`) and a `Condvar` for parking idle worker threads. Backed by
//! `std::sync::Mutex`/`Condvar`; poisoning is swallowed, which matches
//! parking_lot's no-poisoning semantics. Swap this path dependency for
//! crates.io `parking_lot` when a registry is reachable.
//!
//! One deliberate API deviation: because [`MutexGuard`] is a type alias
//! for the std guard, [`Condvar::wait`] consumes and returns the guard
//! (std's shape) instead of taking `&mut MutexGuard` (parking_lot's
//! shape). Callers written against this stub re-bind the guard at each
//! wait, which ports to the real crate with a one-line change per site.

use std::fmt;
use std::time::Duration;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex with `parking_lot`'s panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A condition variable with parking_lot's no-poisoning semantics,
/// paired with [`Mutex`] guards. See the module docs for the one API
/// deviation: `wait` consumes and returns the guard.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the lock and returns the guard. Spurious wakeups are
    /// possible; callers must re-check their predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// [`wait`](Condvar::wait) with a timeout: returns the reacquired
    /// guard and `true` if the wait timed out (rather than being
    /// notified). The timeout makes parked workers robust to a missed
    /// wakeup — they recheck their predicate on a slow heartbeat even
    /// if no notification ever arrives.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (guard, result.timed_out())
    }

    /// Wakes one parked waiter, if any.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter (the shutdown broadcast).
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn wait_returns_after_notify_one() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cvar) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cvar.wait(ready);
                }
            })
        };
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let pair = Arc::clone(&pair);
                std::thread::spawn(move || {
                    let (lock, cvar) = &*pair;
                    let mut ready = lock.lock();
                    while !*ready {
                        ready = cvar.wait(ready);
                    }
                })
            })
            .collect();
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        for w in waiters {
            w.join().unwrap();
        }
    }

    #[test]
    fn wait_timeout_reports_expiry_and_notification() {
        let m = Mutex::new(());
        let cvar = Condvar::new();
        // Nobody notifies: the wait must come back with timed_out=true.
        let (guard, timed_out) = cvar.wait_timeout(m.lock(), Duration::from_millis(10));
        assert!(timed_out);
        drop(guard);
        // A notification beats a generous timeout: timed_out=false.
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cvar) = &*pair;
                let mut ready = lock.lock();
                let mut saw_timeout = false;
                while !*ready {
                    let (g, timed_out) = cvar.wait_timeout(ready, Duration::from_secs(30));
                    ready = g;
                    saw_timeout |= timed_out;
                }
                saw_timeout
            })
        };
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        assert!(!waiter.join().unwrap(), "wait was notified, not timed out");
    }

    /// The no-lost-wakeup contract under the enqueue/park pattern the
    /// work queue relies on: two threads ping-pong a token through a
    /// mutex+condvar pair. If a notification issued while the peer held
    /// the lock (but had not yet parked) could be lost, this would hang;
    /// the predicate-recheck-under-the-lock discipline makes it sound.
    #[test]
    fn two_thread_ping_pong_loses_no_wakeups() {
        const ROUNDS: u64 = 1000;
        let pair = Arc::new((Mutex::new(0u64), Condvar::new()));
        let pong = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cvar) = &*pair;
                let mut turn = lock.lock();
                while *turn < ROUNDS {
                    if *turn % 2 == 1 {
                        *turn += 1;
                        cvar.notify_one();
                    } else {
                        turn = cvar.wait(turn);
                    }
                }
            })
        };
        let (lock, cvar) = &*pair;
        let mut turn = lock.lock();
        while *turn < ROUNDS {
            if *turn % 2 == 0 {
                *turn += 1;
                cvar.notify_one();
            } else {
                turn = cvar.wait(turn);
            }
        }
        drop(turn);
        pong.join().unwrap();
        assert_eq!(*lock.lock(), ROUNDS);
    }
}
