//! Typed run configuration — the one place `TT_*` environment knobs
//! are read.
//!
//! Library code takes an [`EngineConfig`] (single engine / single op
//! stream) or a [`FleetConfig`] (a sharded deployment on top of it) as
//! a plain value; only [`EngineConfig::from_env`] and
//! [`FleetConfig::from_env`] touch the process environment, so every
//! consumer — the bench runner, the figure benches, and the `tt-serve`
//! daemon — agrees on knob names, defaults, and parsing:
//!
//! | variable             | default | field                              |
//! |----------------------|---------|------------------------------------|
//! | `TT_RECORDS`         | 20000   | [`EngineConfig::records`]          |
//! | `TT_OPS`             | 1000    | [`EngineConfig::ops`]              |
//! | `TT_CRACK_THRESHOLD` | 64      | [`EngineConfig::crack_threshold`]  |
//! | `TT_SEED`            | 42      | [`EngineConfig::seed`]             |
//! | `TT_ADAPTIVE_BATCH`  | 0       | [`EngineConfig::adaptive_batch`]   |
//! | `TT_ASYNC_COMMIT`    | 0       | [`EngineConfig::async_commit`]     |
//! | `TT_COMPILED_MATCH`  | 1       | [`EngineConfig::compiled_match`]   |
//! | `TT_SESSIONS`        | 64      | [`FleetConfig::sessions`]          |
//! | `TT_WORKERS`         | 2       | [`FleetConfig::workers`]           |
//! | `TT_HEAT_THRESHOLD`  | 1       | [`FleetConfig::heat_threshold`]    |

/// Reads an integer environment knob (unset or unparsable → default).
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scale and epoch-discipline configuration for one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Preloaded record count.
    pub records: u64,
    /// YCSB operations per run.
    pub ops: usize,
    /// CrackArray threshold.
    pub crack_threshold: usize,
    /// Master seed.
    pub seed: u64,
    /// Adaptive batch sizing: when set, the epoch drivers auto-tune the
    /// ops-per-epoch K from the strategies' observed cancellation rates
    /// (a high rate widens the epoch, a low rate narrows it). Off by
    /// default — the fixed-K path is byte-for-byte unchanged.
    pub adaptive_batch: bool,
    /// Pipelined epoch commits: when set, the epoch drivers close each
    /// epoch with a *seal* (`submit_commit`) instead of an inline
    /// `commit_batch`, and the sealed epoch is applied one epoch later
    /// (the strategies' one-epoch-in-flight backpressure keeps ordering;
    /// a final drain lands the last epoch). Off by default — the
    /// synchronous commit path is byte-for-byte unchanged.
    pub async_commit: bool,
    /// Compiled matching: when set (the default), candidate enumeration
    /// runs the rule set's label-discriminated match automaton — one
    /// shared-prefix walk per node instead of R independent pattern
    /// evaluations. Turning it off falls back to the one-pattern-at-a-time
    /// evaluator, kept alive as the differential-testing baseline.
    pub compiled_match: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            records: 20_000,
            ops: 1_000,
            crack_threshold: 64,
            seed: 42,
            adaptive_batch: false,
            async_commit: false,
            compiled_match: true,
        }
    }
}

impl EngineConfig {
    /// Reads the configuration from the environment (the only place the
    /// `TT_RECORDS`…`TT_ASYNC_COMMIT` knobs are parsed).
    pub fn from_env() -> EngineConfig {
        EngineConfig {
            records: env_u64("TT_RECORDS", 20_000),
            ops: env_u64("TT_OPS", 1_000) as usize,
            crack_threshold: env_u64("TT_CRACK_THRESHOLD", 64) as usize,
            seed: env_u64("TT_SEED", 42),
            adaptive_batch: env_u64("TT_ADAPTIVE_BATCH", 0) != 0,
            async_commit: env_u64("TT_ASYNC_COMMIT", 0) != 0,
            compiled_match: env_u64("TT_COMPILED_MATCH", 1) != 0,
        }
    }

    /// Sets the preloaded record count.
    pub fn records(mut self, records: u64) -> EngineConfig {
        self.records = records;
        self
    }

    /// Sets the operation count.
    pub fn ops(mut self, ops: usize) -> EngineConfig {
        self.ops = ops;
        self
    }

    /// Sets the CrackArray threshold.
    pub fn crack_threshold(mut self, crack_threshold: usize) -> EngineConfig {
        self.crack_threshold = crack_threshold;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> EngineConfig {
        self.seed = seed;
        self
    }

    /// Enables or disables adaptive epoch sizing.
    pub fn adaptive_batch(mut self, on: bool) -> EngineConfig {
        self.adaptive_batch = on;
        self
    }

    /// Enables or disables the pipelined (seal + background apply)
    /// commit discipline.
    pub fn async_commit(mut self, on: bool) -> EngineConfig {
        self.async_commit = on;
        self
    }

    /// Enables or disables the compiled match automaton (off = the
    /// per-rule baseline evaluator).
    pub fn compiled_match(mut self, on: bool) -> EngineConfig {
        self.compiled_match = on;
        self
    }
}

/// A sharded deployment on top of an [`EngineConfig`]: how many session
/// shards exist and how the shared worker pool drains them. Plain data —
/// the `jitd` crate maps `workers`/`heat_threshold` onto its
/// `WorkerMode` and `async_commit` onto its `CommitMode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Per-shard engine configuration.
    pub engine: EngineConfig,
    /// Session shards (trees) the deployment admits.
    pub sessions: usize,
    /// Worker threads in the shared reorganization pool.
    pub workers: usize,
    /// Minimum shard heat before the pool admits it for background
    /// reorganization (`u64::MAX` parks the pool entirely).
    pub heat_threshold: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            engine: EngineConfig::default(),
            sessions: 64,
            workers: 2,
            heat_threshold: 1,
        }
    }
}

impl FleetConfig {
    /// Reads the fleet shape (and its engine config) from the
    /// environment.
    pub fn from_env() -> FleetConfig {
        FleetConfig {
            engine: EngineConfig::from_env(),
            sessions: env_u64("TT_SESSIONS", 64) as usize,
            workers: env_u64("TT_WORKERS", 2) as usize,
            heat_threshold: env_u64("TT_HEAT_THRESHOLD", 1),
        }
    }

    /// Sets the per-shard engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> FleetConfig {
        self.engine = engine;
        self
    }

    /// Sets the admitted session count.
    pub fn sessions(mut self, sessions: usize) -> FleetConfig {
        self.sessions = sessions;
        self
    }

    /// Sets the worker-pool size.
    pub fn workers(mut self, workers: usize) -> FleetConfig {
        self.workers = workers;
        self
    }

    /// Sets the pool's heat admission threshold.
    pub fn heat_threshold(mut self, heat_threshold: u64) -> FleetConfig {
        self.heat_threshold = heat_threshold;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knob_parses_with_default() {
        assert_eq!(env_u64("TT_DEFINITELY_UNSET_KNOB", 5), 5);
    }

    #[test]
    fn engine_defaults_match_documented_knobs() {
        let d = EngineConfig::default();
        assert_eq!(d.records, 20_000);
        assert_eq!(d.ops, 1_000);
        assert_eq!(d.crack_threshold, 64);
        assert_eq!(d.seed, 42);
        assert!(!d.adaptive_batch);
        assert!(!d.async_commit);
        assert!(d.compiled_match);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = EngineConfig::default()
            .records(256)
            .ops(30)
            .crack_threshold(32)
            .seed(7)
            .adaptive_batch(true)
            .async_commit(true)
            .compiled_match(false);
        assert_eq!(cfg.records, 256);
        assert_eq!(cfg.ops, 30);
        assert_eq!(cfg.crack_threshold, 32);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.adaptive_batch);
        assert!(cfg.async_commit);
        assert!(!cfg.compiled_match);

        let fleet = FleetConfig::default()
            .engine(cfg)
            .sessions(1000)
            .workers(4)
            .heat_threshold(u64::MAX);
        assert_eq!(fleet.engine, cfg);
        assert_eq!(fleet.sessions, 1000);
        assert_eq!(fleet.workers, 4);
        assert_eq!(fleet.heat_threshold, u64::MAX);
    }
}
