//! The search-strategy abstraction shared by the paper's five approaches.
//!
//! §7 compares: (i) **Naive** iteration, (ii) **Index**ing labels,
//! (iii) **Classic** incremental view maintenance, (iv) **DBT**oaster's
//! recursive IVM, and (v) **TreeToaster**. All five implement
//! [`MatchSource`]: the host compiler asks for one eligible node per rule
//! (`find_one`), and notifies the strategy around every rewrite
//! (`before_replace` / `after_replace`).
//!
//! The asymmetric notification interface *is* part of the paper's point:
//! bolt-on engines can only consume node-granularity insert/delete events
//! (`ReplaceCtx::removed` / `inserted` / `parent_update`), while
//! TreeToaster exploits the structural replace and — for declarative
//! rules — the compile-time inlined plan (`RuleFired`).

use crate::rules::{AppliedRewrite, RuleSet};
use std::sync::Arc;
use tt_ast::{Ast, Label, NodeId, NodeLabelMap, NodeRow};
use tt_labelindex::LabelIndex;
use tt_pattern::{find_first, matches, AutomatonScratch, Bindings, PatternNode};

/// Index of a rewrite rule within the shared [`RuleSet`].
pub type RuleId = usize;

/// Everything a strategy may need to know about one applied rewrite.
pub struct ReplaceCtx<'a> {
    /// The (now freed) id of the replaced subtree root `R`.
    pub old_root: NodeId,
    /// The replacement subtree root `R′` (live, attached).
    pub new_root: NodeId,
    /// Snapshots of freed nodes — the compiler's `remove()` events.
    pub removed: &'a [(Label, NodeRow)],
    /// Newly allocated nodes — the compiler's `insert()` events.
    pub inserted: &'a [NodeId],
    /// The parent's child-pointer update (label, old image, new image),
    /// if the site was not the root.
    pub parent_update: Option<&'a (Label, NodeRow, NodeRow)>,
    /// Present when the mutation came from a declarative rule — enables
    /// the inlined maintenance path.
    pub rule: Option<RuleFired<'a>>,
}

/// Rule-application details for the inlined path.
#[derive(Clone, Copy)]
pub struct RuleFired<'a> {
    /// Which rule fired.
    pub rule: RuleId,
    /// The match bindings at application time.
    pub bindings: &'a Bindings,
    /// The application record (generated node ids by `Gen` index).
    pub applied: &'a AppliedRewrite,
}

/// The lean search/notification surface of a strategy — everything a
/// host compiler needs to *find and maintain matches*, with no epoch
/// machinery attached.
///
/// `Send` so a runtime can hand its strategy to a background
/// reorganization thread (the paper's asynchronous deployment).
///
/// This is one half of the [`MatchSource`] split (the other is
/// [`EpochOps`]): consumers that only search and notify — the service
/// layer's session router, the naive driver — can bound on `MatchCore`
/// alone and never see the epoch protocol.
pub trait MatchCore: Send {
    /// Strategy name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// (Re)builds all state from the current tree (initial load).
    fn rebuild(&mut self, ast: &Ast);

    /// One arbitrary node currently matching `rule`'s pattern — the §4
    /// goal. Bindings are re-derived by the caller via
    /// [`tt_pattern::match_node`] so all strategies are charged equally.
    fn find_one(&mut self, ast: &Ast, rule: RuleId) -> Option<NodeId>;

    /// Notification *before* the pointer swap: the subtree at `old_root`
    /// is still attached and pattern-evaluable. `rule` carries the firing
    /// rule and its bindings when the mutation is a declarative rewrite.
    fn before_replace(&mut self, ast: &Ast, old_root: NodeId, rule: Option<(RuleId, &Bindings)>);

    /// Notification *after* the swap and the freeing of the old subtree.
    fn after_replace(&mut self, ast: &Ast, ctx: &ReplaceCtx<'_>);

    /// Notification that `created` nodes were grafted **above** the old
    /// tree root (the JITD compiler wraps the root in
    /// `Concat(root, Singleton)` on insert and `DeleteSingleton` on
    /// delete). No node was removed and no pre-existing node's subtree
    /// changed, so only the created nodes can change match status.
    fn on_graft(&mut self, ast: &Ast, created: &[NodeId]);

    /// Test oracle: checks the strategy's structures against a
    /// from-scratch rebuild over `ast`. Only meaningful between epochs
    /// (an open batch with staged deltas reports an error rather than a
    /// false mismatch). Default: trivially consistent, for strategies
    /// that keep no state.
    fn check_consistent(&self, _ast: &Ast) -> Result<(), String> {
        Ok(())
    }

    /// Live bytes of all supplemental structures this strategy maintains
    /// (views, indexes, shadow copies) — the Figure 11/13 memory axis.
    fn memory_bytes(&self) -> usize;

    /// Cheap **heat** estimate: roughly how much reorganization work this
    /// strategy expects its tree to hold right now — known matches in its
    /// views plus deltas staged in an open epoch. The forest scheduler
    /// (`ForestEngine::find_anywhere`, the work-stealing pool) uses it as
    /// a priority key, so it must be O(views), never O(tree). It is a
    /// hint: over- or under-estimating only affects probe *order*, never
    /// correctness. Default 0, for strategies that keep no state and
    /// therefore cannot estimate without searching (Naive).
    fn match_heat(&self) -> usize {
        0
    }
}

/// The epoch (transactional maintenance) protocol — the other half of
/// the [`MatchSource`] split. Every method has a correct default for
/// strategies that stage nothing, so a stateless [`MatchCore`] impl
/// plus an empty `impl EpochOps for …` block is a complete strategy.
///
/// Consumers that *drive* epochs (the batched bench drivers, the commit
/// pipeline, the service daemon's tick path) bound on `EpochOps`;
/// consumers that only search bound on [`MatchCore`].
pub trait EpochOps {
    /// Opens a maintenance epoch: until [`commit_batch`], notifications
    /// (`before_replace`/`after_replace`/`on_graft`) may be *staged*
    /// instead of applied, so opposing deltas from overlapping rewrites
    /// cancel before ever touching the strategy's structures.
    ///
    /// Default: no-op, so single-rewrite maintenance is the degenerate
    /// K=1 case and stateless strategies need no change. Inside an open
    /// epoch, `find_one` must still answer correctly — either through an
    /// overlay over pending deltas (TreeToaster) or by reconciling on
    /// read (the bolt-on engines, which can only consume their flat
    /// node-event stream). Opening an already-open epoch is a no-op.
    ///
    /// [`commit_batch`]: EpochOps::commit_batch
    fn begin_batch(&mut self) {}

    /// Closes the current maintenance epoch, applying every surviving
    /// net delta. A commit with no open epoch is a no-op.
    fn commit_batch(&mut self) {}

    /// Seals the open epoch for **deferred** application: surviving net
    /// deltas move into a sealed slot, the epoch closes, and a later
    /// [`apply_submitted`] — typically on a background committer thread,
    /// under the same lock as every other access — applies them. Until
    /// then `find_one` must keep answering correctly with the sealed
    /// deltas in place: strategies with an overlay extend it to
    /// `structures ⊕ sealed ⊕ open batch`, while the bolt-on engines
    /// reconcile on read as always (a read may therefore apply the
    /// sealed epoch early, which is safe — application is idempotent
    /// per epoch and ordered per shard).
    ///
    /// At most one epoch may be sealed at a time; sealing while a
    /// previous seal awaits its committer applies the old seal inline
    /// first (bounded backpressure). Returns `true` when an epoch was
    /// sealed for deferred application; the default falls back to a
    /// synchronous [`commit_batch`] and returns `false`, so strategies
    /// without a deferred path (and stateless ones) stay correct under
    /// an asynchronous deployment.
    ///
    /// [`apply_submitted`]: EpochOps::apply_submitted
    /// [`commit_batch`]: EpochOps::commit_batch
    fn submit_commit(&mut self) -> bool {
        self.commit_batch();
        false
    }

    /// Applies the sealed epoch from [`submit_commit`], if one is
    /// pending — the committer's half of the pipeline. Returns whether
    /// anything was applied. Default: nothing is ever sealed.
    ///
    /// [`submit_commit`]: EpochOps::submit_commit
    fn apply_submitted(&mut self) -> bool {
        false
    }

    /// True while a sealed epoch awaits [`apply_submitted`]. Quiescence
    /// probes must treat this as pending work: the strategy's structures
    /// have not yet reached their post-commit state. Default: never.
    ///
    /// [`apply_submitted`]: EpochOps::apply_submitted
    fn has_submitted(&self) -> bool {
        false
    }

    /// `(staged, canceled)` delta counters of the open — or, after a
    /// commit, the most recently committed — maintenance epoch.
    /// `canceled` counts staged deltas that annihilated against an
    /// opposing entry before touching any structure; the ratio is the
    /// signal adaptive batch sizing tunes K from (a high rate means the
    /// epoch is absorbing churn the views never see, so larger epochs
    /// pay off). Default: `None`, for strategies that stage nothing.
    fn batch_cancellation(&self) -> Option<(u64, u64)> {
        None
    }
}

/// A source of pattern matches over an evolving AST — the full
/// five-strategy surface, as one name.
///
/// `MatchSource` is a pure facade over its two halves: [`MatchCore`]
/// (search + notification) and [`EpochOps`] (the epoch protocol). The
/// blanket impl below makes every `MatchCore + EpochOps` type a
/// `MatchSource` automatically, so strategies implement the two halves
/// and existing `S: MatchSource` bounds (and `Box<dyn MatchSource>`
/// fleets) keep working unchanged.
pub trait MatchSource: MatchCore + EpochOps {}

/// Implementing both halves *is* implementing the facade.
impl<T: MatchCore + EpochOps + ?Sized> MatchSource for T {}

/// Boxed strategies are strategies: lets heterogeneous deployments (the
/// runtime's `StrategyKind::build`, the forest engine's per-shard fleet)
/// pass `Box<dyn MatchSource>` wherever an `S: MatchSource` is expected.
/// (Forwarding the two halves is enough — the blanket impl closes the
/// facade over the box.)
impl<T: MatchCore + ?Sized> MatchCore for Box<T> {
    #[inline]
    fn name(&self) -> &'static str {
        (**self).name()
    }

    #[inline]
    fn rebuild(&mut self, ast: &Ast) {
        (**self).rebuild(ast)
    }

    #[inline]
    fn find_one(&mut self, ast: &Ast, rule: RuleId) -> Option<NodeId> {
        (**self).find_one(ast, rule)
    }

    #[inline]
    fn before_replace(&mut self, ast: &Ast, old_root: NodeId, rule: Option<(RuleId, &Bindings)>) {
        (**self).before_replace(ast, old_root, rule)
    }

    #[inline]
    fn after_replace(&mut self, ast: &Ast, ctx: &ReplaceCtx<'_>) {
        (**self).after_replace(ast, ctx)
    }

    #[inline]
    fn on_graft(&mut self, ast: &Ast, created: &[NodeId]) {
        (**self).on_graft(ast, created)
    }

    #[inline]
    fn check_consistent(&self, ast: &Ast) -> Result<(), String> {
        (**self).check_consistent(ast)
    }

    #[inline]
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    #[inline]
    fn match_heat(&self) -> usize {
        (**self).match_heat()
    }
}

impl<T: EpochOps + ?Sized> EpochOps for Box<T> {
    #[inline]
    fn begin_batch(&mut self) {
        (**self).begin_batch()
    }

    #[inline]
    fn commit_batch(&mut self) {
        (**self).commit_batch()
    }

    #[inline]
    fn submit_commit(&mut self) -> bool {
        (**self).submit_commit()
    }

    #[inline]
    fn apply_submitted(&mut self) -> bool {
        (**self).apply_submitted()
    }

    #[inline]
    fn has_submitted(&self) -> bool {
        (**self).has_submitted()
    }

    #[inline]
    fn batch_cancellation(&self) -> Option<(u64, u64)> {
        (**self).batch_cancellation()
    }
}

// ---------------------------------------------------------------------------
// Naive
// ---------------------------------------------------------------------------

/// The paper's **Naive** baseline: a depth-first scan of the entire AST
/// per search, no state, no maintenance cost, no memory.
pub struct NaiveStrategy {
    rules: Arc<RuleSet>,
    /// Reusable DFS scratch for the compiled per-rule token program.
    scratch: AutomatonScratch,
    /// Compiled matching (default): the scan runs the searched rule's
    /// straight-line automaton program per node instead of the recursive
    /// pattern evaluator. Off = the differential-testing baseline.
    compiled: bool,
}

impl NaiveStrategy {
    /// Creates the strategy over a rule set.
    pub fn new(rules: Arc<RuleSet>) -> Self {
        Self {
            rules,
            scratch: AutomatonScratch::default(),
            compiled: true,
        }
    }

    /// Enables or disables the compiled match path.
    pub fn compiled(mut self, on: bool) -> Self {
        self.compiled = on;
        self
    }
}

impl MatchCore for NaiveStrategy {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn rebuild(&mut self, _ast: &Ast) {}

    fn find_one(&mut self, ast: &Ast, rule: RuleId) -> Option<NodeId> {
        if self.compiled {
            let root = ast.root();
            if root.is_null() {
                return None;
            }
            let auto = self.rules.automaton();
            let scratch = &mut self.scratch;
            return ast
                .descendants(root)
                .find(|&n| auto.run_rule(ast, n, rule, scratch));
        }
        find_first(ast, ast.root(), &self.rules.get(rule).pattern).map(|(n, _)| n)
    }

    fn before_replace(&mut self, _: &Ast, _: NodeId, _: Option<(RuleId, &Bindings)>) {}

    fn after_replace(&mut self, _: &Ast, _: &ReplaceCtx<'_>) {}

    fn on_graft(&mut self, _: &Ast, _: &[NodeId]) {}

    fn memory_bytes(&self) -> usize {
        // The automaton scratch is transient search state, not a
        // maintained structure — Naive stays the zero-memory baseline.
        0
    }
}

/// Stateless: every epoch method's default (no-op staging, synchronous
/// fallback commit) is already correct.
impl EpochOps for NaiveStrategy {}

// ---------------------------------------------------------------------------
// Label index
// ---------------------------------------------------------------------------

/// The §4.1 **Index** baseline: one posting list per label, maintained by
/// per-node insert/remove; searches scan only the root label's list but
/// still re-check sub-patterns and constraints per candidate.
pub struct IndexStrategy {
    rules: Arc<RuleSet>,
    index: LabelIndex,
    /// Open-epoch staging: net ±1 per `(label, node)`, stored densely by
    /// node; entries that cancel to zero never touch a posting list.
    /// `None` = immediate.
    batch: Option<NodeLabelMap<i64>>,
    /// An epoch sealed by `submit_commit`, awaiting its background
    /// committer (`apply_submitted`). Reads overlay it exactly like the
    /// open batch; at most one epoch is ever sealed.
    sealed: Option<NodeLabelMap<i64>>,
    /// The previous epoch's drained staging map, kept so its dense pages
    /// are reused by the next `begin_batch`.
    spare: Option<NodeLabelMap<i64>>,
    /// Node events staged in the current/most recent epoch.
    staged: u64,
    /// Staged events that annihilated against an opposing entry.
    canceled: u64,
    /// Reusable DFS scratch for the compiled candidate re-checks.
    scratch: AutomatonScratch,
    /// Compiled matching (default): posting-list candidates are
    /// re-checked with the searched rule's straight-line automaton
    /// program. Off = the per-candidate recursive evaluator.
    compiled: bool,
}

impl IndexStrategy {
    /// Creates the strategy over a rule set (index initially empty; call
    /// [`MatchCore::rebuild`] after loading the tree).
    pub fn new(rules: Arc<RuleSet>, ast: &Ast) -> Self {
        Self {
            rules,
            index: LabelIndex::new(ast.schema()),
            batch: None,
            sealed: None,
            spare: None,
            staged: 0,
            canceled: 0,
            scratch: AutomatonScratch::default(),
            compiled: true,
        }
    }

    /// Enables or disables the compiled match path.
    pub fn compiled(mut self, on: bool) -> Self {
        self.compiled = on;
        self
    }

    /// One candidate found through the posting lists: scan the searched
    /// rule's root-label bucket (restricted to `live` entries) and
    /// re-check each candidate — via the compiled program or the
    /// recursive evaluator, per `compiled`. Mirrors
    /// [`LabelIndex::index_lookup_where`], including its `AnyNode`-root
    /// shortcut (the AST root answers, Algorithm 1 line 2).
    fn lookup_where(
        compiled: bool,
        rules: &RuleSet,
        index: &LabelIndex,
        scratch: &mut AutomatonScratch,
        ast: &Ast,
        rule: RuleId,
        live: impl Fn(Label, NodeId) -> bool,
    ) -> Option<NodeId> {
        if !compiled {
            return index
                .index_lookup_where(ast, &rules.get(rule).pattern, live)
                .map(|(n, _)| n);
        }
        let auto = rules.automaton();
        match rules.get(rule).pattern.root_label() {
            None => {
                let root = ast.root();
                (!root.is_null() && auto.run_rule(ast, root, rule, scratch)).then_some(root)
            }
            Some(label) => index
                .nodes(label)
                .iter()
                .copied()
                .filter(|&n| live(label, n))
                .find(|&n| auto.run_rule(ast, n, rule, scratch)),
        }
    }

    /// Re-checks one staged (not-yet-indexed) candidate.
    fn check_candidate(
        compiled: bool,
        rules: &RuleSet,
        scratch: &mut AutomatonScratch,
        ast: &Ast,
        n: NodeId,
        rule: RuleId,
    ) -> bool {
        if compiled {
            rules.automaton().run_rule(ast, n, rule, scratch)
        } else {
            matches(ast, n, &rules.get(rule).pattern)
        }
    }

    /// Drains one epoch's surviving net deltas into the posting lists
    /// and parks the emptied map for page reuse.
    fn apply_epoch(&mut self, mut pending: NodeLabelMap<i64>) {
        // Sorted for deterministic posting-list order; removals first so
        // a same-id label change never double-occupies a bucket slot.
        let mut entries: Vec<((Label, NodeId), i64)> = pending.drain().collect();
        entries.sort_unstable_by_key(|&((label, id), _)| (label.0, id));
        for &((label, id), d) in entries.iter().filter(|(_, d)| *d < 0) {
            debug_assert_eq!(d, -1, "net index delta beyond ±1");
            self.index.remove(label, id);
        }
        for &((label, id), d) in entries.iter().filter(|(_, d)| *d > 0) {
            debug_assert_eq!(d, 1, "net index delta beyond ±1");
            self.index.insert(label, id);
        }
        self.spare = Some(pending);
    }

    /// Routes one node event through the open epoch (or straight into
    /// the index when none is open).
    fn stage(&mut self, label: Label, id: NodeId, delta: i64) {
        match &mut self.batch {
            Some(pending) => {
                self.staged += 1;
                let entry = pending.get_or_insert_with(label, id, || 0);
                *entry += delta;
                if *entry == 0 {
                    pending.remove(label, id);
                    // This event and the one it annihilated.
                    self.canceled += 2;
                }
            }
            None if delta > 0 => self.index.insert(label, id),
            None => self.index.remove(label, id),
        }
    }
}

impl MatchCore for IndexStrategy {
    fn name(&self) -> &'static str {
        "Index"
    }

    fn rebuild(&mut self, ast: &Ast) {
        self.index = LabelIndex::build_from(ast, ast.root());
        if let Some(pending) = &mut self.batch {
            pending.clear();
        }
        self.sealed = None;
    }

    fn find_one(&mut self, ast: &Ast, rule: RuleId) -> Option<NodeId> {
        let Self {
            rules,
            index,
            batch,
            sealed,
            scratch,
            compiled,
            ..
        } = self;
        let (rules, index, compiled) = (&**rules, &*index, *compiled);
        let sealed = sealed.as_ref().filter(|p| !p.is_empty());
        let open = batch.as_ref().filter(|p| !p.is_empty());
        // Overlay over `index ⊕ sealed ⊕ batch`: indexed nodes whose net
        // pending delta is negative are dead (their arena slots may
        // already be reused), and a positive net delta marks a node the
        // index has not absorbed yet — only net-zero nodes read straight
        // from the posting lists.
        let (first, second) = match (sealed, open) {
            (None, None) => {
                return Self::lookup_where(compiled, rules, index, scratch, ast, rule, |_, _| true)
            }
            // Single-buffer overlay — one probe per scanned posting-list
            // member. This is the hot shape (a synchronous commit cycle
            // never holds a sealed epoch), so it must not pay for the
            // composed case.
            (Some(p), None) | (None, Some(p)) => {
                if let Some(n) =
                    Self::lookup_where(compiled, rules, index, scratch, ast, rule, |label, n| {
                        !p.contains(label, n)
                    })
                {
                    return Some(n);
                }
                let PatternNode::Match { label: root, .. } = rules.get(rule).pattern.root() else {
                    return None;
                };
                return p
                    .iter()
                    .filter(|&((label, _), &d)| d > 0 && label == *root)
                    .map(|((_, n), _)| n)
                    .find(|&n| Self::check_candidate(compiled, rules, scratch, ast, n, rule));
            }
            (Some(s), Some(o)) => (s, o),
        };
        let delta = |label: Label, n: NodeId| {
            first.get(label, n).copied().unwrap_or(0) + second.get(label, n).copied().unwrap_or(0)
        };
        if let Some(n) =
            Self::lookup_where(compiled, rules, index, scratch, ast, rule, |label, n| {
                delta(label, n) == 0
            })
        {
            return Some(n);
        }
        // Nodes born inside the sealed or open epoch are not yet
        // indexed, so check the staged insertions carrying the pattern's
        // root label (net across both maps, so a node sealed as born but
        // staged as dying stays invisible).
        let PatternNode::Match { label: root, .. } = rules.get(rule).pattern.root() else {
            return None;
        };
        [first, second]
            .into_iter()
            .flat_map(|pending| pending.iter())
            .filter(|&((label, n), _)| label == *root && delta(label, n) > 0)
            .map(|((_, n), _)| n)
            .find(|&n| Self::check_candidate(compiled, rules, scratch, ast, n, rule))
    }

    fn before_replace(&mut self, _: &Ast, _: NodeId, _: Option<(RuleId, &Bindings)>) {
        // All bookkeeping happens on the post-state notification, where
        // the freed nodes' labels arrive as snapshots.
    }

    fn after_replace(&mut self, ast: &Ast, ctx: &ReplaceCtx<'_>) {
        for (label, row) in ctx.removed {
            self.stage(*label, row.id, -1);
        }
        for &n in ctx.inserted {
            self.stage(ast.label(n), n, 1);
        }
        // The parent's label did not change; no index update needed for
        // `parent_update`.
    }

    fn on_graft(&mut self, ast: &Ast, created: &[NodeId]) {
        for &n in created {
            self.stage(ast.label(n), n, 1);
        }
    }

    fn check_consistent(&self, ast: &Ast) -> Result<(), String> {
        if self.batch.as_ref().is_some_and(|p| !p.is_empty()) {
            return Err("label index has staged deltas in an open batch".into());
        }
        if self.sealed.as_ref().is_some_and(|p| !p.is_empty()) {
            return Err("label index has a sealed epoch awaiting its committer".into());
        }
        let fresh = LabelIndex::build_from(ast, ast.root());
        for label in ast.schema().labels() {
            let mut mine: Vec<NodeId> = self.index.nodes(label).to_vec();
            let mut want: Vec<NodeId> = fresh.nodes(label).to_vec();
            mine.sort_unstable();
            want.sort_unstable();
            if mine != want {
                return Err(format!(
                    "label {}: index holds {} nodes, rebuild {}",
                    ast.schema().label_name(label),
                    mine.len(),
                    want.len()
                ));
            }
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
            + self.batch.as_ref().map_or(0, NodeLabelMap::memory_bytes)
            + self.sealed.as_ref().map_or(0, NodeLabelMap::memory_bytes)
            + self.spare.as_ref().map_or(0, NodeLabelMap::memory_bytes)
    }

    fn match_heat(&self) -> usize {
        // The index holds *candidates*, not matches: posting-list length
        // under each rule's root label is the work `find_one` may have
        // to wade through, plus whatever the open epoch staged.
        let candidates: usize = self
            .rules
            .iter()
            .map(|(_, rule)| {
                rule.pattern
                    .root_label()
                    .map_or(0, |label| self.index.len(label))
            })
            .sum();
        candidates
            + self.batch.as_ref().map_or(0, |b| b.len())
            + self.sealed.as_ref().map_or(0, |b| b.len())
    }
}

impl EpochOps for IndexStrategy {
    fn begin_batch(&mut self) {
        if self.batch.is_none() {
            // Reuse the drained map from the last epoch (empty, pages
            // allocated) rather than building a fresh one, and restart
            // the per-epoch cancellation counters.
            self.batch = Some(self.spare.take().unwrap_or_default());
            self.staged = 0;
            self.canceled = 0;
        }
    }

    fn commit_batch(&mut self) {
        // Epochs apply in submission order: a sealed epoch always
        // precedes the one being committed now.
        self.apply_submitted();
        let Some(pending) = self.batch.take() else {
            return;
        };
        self.apply_epoch(pending);
    }

    fn submit_commit(&mut self) -> bool {
        let Some(pending) = self.batch.take() else {
            return false;
        };
        // Bounded backpressure: at most one epoch in flight. A second
        // submit before the committer ran applies the old seal inline.
        self.apply_submitted();
        if pending.is_empty() {
            // Nothing staged: close the epoch without occupying the
            // sealed slot, so the committer is never fed a no-op.
            self.spare = Some(pending);
            return false;
        }
        self.sealed = Some(pending);
        true
    }

    fn apply_submitted(&mut self) -> bool {
        let Some(sealed) = self.sealed.take() else {
            return false;
        };
        self.apply_epoch(sealed);
        true
    }

    fn has_submitted(&self) -> bool {
        self.sealed.is_some()
    }

    fn batch_cancellation(&self) -> Option<(u64, u64)> {
        // Counters persist after a commit (until the next begin), so
        // adaptive tuners can read the epoch just closed.
        (self.batch.is_some() || self.sealed.is_some() || self.spare.is_some())
            .then_some((self.staged, self.canceled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::reuse;
    use crate::rules::RewriteRule;
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    fn add_zero_rules() -> Arc<RuleSet> {
        let s = arith_schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        );
        Arc::new(RuleSet::from_rules(vec![RewriteRule::new(
            "AddZero",
            &s,
            pattern,
            reuse("C"),
        )]))
    }

    fn tree(text: &str) -> (Ast, NodeId) {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        (ast, id)
    }

    /// Drives one full rewrite through any strategy, checking the
    /// notification protocol; returns the strategy's post-state find.
    fn drive_one(strategy: &mut dyn MatchSource) -> Option<NodeId> {
        let rules = add_zero_rules();
        let (mut ast, root) =
            tree(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#);
        strategy.rebuild(&ast);
        let site = strategy
            .find_one(&ast, 0)
            .expect("should find the inner Arith");
        assert_eq!(site, ast.children(root)[0]);
        let rule = rules.get(0);
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        strategy.before_replace(&ast, site, Some((0, &bindings)));
        let applied = rule.apply(&mut ast, site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: 0,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        strategy.after_replace(&ast, &ctx);
        strategy.find_one(&ast, 0)
    }

    #[test]
    fn naive_full_protocol() {
        let mut s = NaiveStrategy::new(add_zero_rules());
        assert_eq!(s.name(), "Naive");
        assert_eq!(s.memory_bytes(), 0);
        assert!(
            drive_one(&mut s).is_none(),
            "no match remains after rewriting"
        );
    }

    #[test]
    fn index_full_protocol() {
        let rules = add_zero_rules();
        let (ast, _) = tree(r#"(Const val=1)"#);
        let mut s = IndexStrategy::new(rules, &ast);
        assert_eq!(s.name(), "Index");
        assert!(drive_one(&mut s).is_none());
        assert!(s.memory_bytes() > 0);
    }

    #[test]
    fn index_batched_epoch_overlay_and_commit() {
        let rules = add_zero_rules();
        let (mut ast, root) = tree(
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Arith op="+" (Const val=0) (Var name="c")))"#,
        );
        let mut s = IndexStrategy::new(rules.clone(), &ast);
        s.rebuild(&ast);
        s.begin_batch();
        let site = s.find_one(&ast, 0).unwrap();
        let rule = rules.get(0);
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        s.before_replace(&ast, site, Some((0, &bindings)));
        let applied = rule.apply(&mut ast, site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: None,
        };
        s.after_replace(&ast, &ctx);
        // Mid-epoch: the freed site must be invisible through the
        // overlay; the untouched second site must still surface.
        let next = s.find_one(&ast, 0).expect("second site visible");
        assert_ne!(next, site);
        assert!(
            s.check_consistent(&ast).is_err(),
            "dirty open batch is not a checkable state"
        );
        s.commit_batch();
        s.check_consistent(&ast).unwrap();
        assert_eq!(s.find_one(&ast, 0), Some(ast.children(root)[1]));
    }

    #[test]
    fn baseline_matcher_paths_stay_live() {
        // `compiled(false)` keeps the one-pattern-at-a-time evaluator as
        // the differential-testing baseline for both strategies.
        let mut n = NaiveStrategy::new(add_zero_rules()).compiled(false);
        assert!(drive_one(&mut n).is_none());
        let rules = add_zero_rules();
        let (ast, _) = tree(r#"(Const val=1)"#);
        let mut i = IndexStrategy::new(rules, &ast).compiled(false);
        assert!(drive_one(&mut i).is_none());
    }

    #[test]
    fn compiled_overlay_agrees_with_baseline_mid_epoch() {
        let rules = add_zero_rules();
        let (mut ast, _) = tree(
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Arith op="+" (Const val=0) (Var name="c")))"#,
        );
        let mut compiled = IndexStrategy::new(rules.clone(), &ast);
        let mut baseline = IndexStrategy::new(rules.clone(), &ast).compiled(false);
        compiled.rebuild(&ast);
        baseline.rebuild(&ast);
        compiled.begin_batch();
        baseline.begin_batch();
        let site = compiled.find_one(&ast, 0).unwrap();
        assert_eq!(baseline.find_one(&ast, 0), Some(site));
        let rule = rules.get(0);
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        let applied = rule.apply(&mut ast, site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: None,
        };
        compiled.after_replace(&ast, &ctx);
        baseline.after_replace(&ast, &ctx);
        // Mid-epoch overlay reads must agree, both before and after the
        // commit lands the surviving deltas.
        assert_eq!(compiled.find_one(&ast, 0), baseline.find_one(&ast, 0));
        compiled.commit_batch();
        baseline.commit_batch();
        assert_eq!(compiled.find_one(&ast, 0), baseline.find_one(&ast, 0));
        compiled.check_consistent(&ast).unwrap();
    }

    #[test]
    fn index_tracks_membership_across_rewrites() {
        let rules = add_zero_rules();
        let (mut ast, root) = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let mut s = IndexStrategy::new(rules.clone(), &ast);
        s.rebuild(&ast);
        let site = s.find_one(&ast, 0).unwrap();
        assert_eq!(site, root);
        let rule = rules.get(0);
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        s.before_replace(&ast, site, Some((0, &bindings)));
        let applied = rule.apply(&mut ast, site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: None,
        };
        s.after_replace(&ast, &ctx);
        // Tree is now a bare Var; the index must agree.
        assert!(s.find_one(&ast, 0).is_none());
        ast.validate().unwrap();
    }
}
