//! Forest-level view maintenance: one strategy instance per shard.
//!
//! The paper's deployments maintain views over a *fleet* of concurrent
//! plans (Spark's burst of ~1000-node plans, Orca's stream of
//! independent optimizations — §2, §7). A [`ForestEngine`] scales any
//! [`MatchSource`] to that shape: it owns one strategy instance per
//! [`TreeId`]-tagged shard and dispatches every notification to the
//! shard it concerns, while the *rule and pattern state* — the compiled
//! [`RuleSet`], its patterns, and the inlined maintenance plans — is
//! shared across the whole fleet through one `Arc`.
//!
//! Because each shard owns its own strategy instance, each shard also
//! owns its own epoch state: a `DeltaBuffer`/`DeltaLog` stages only its
//! shard's deltas, so epochs on different trees open, cancel, and commit
//! completely independently — committing a burst on tree 3 never
//! touches, flushes, or blocks the open epoch on tree 7. That isolation
//! is the invariant the forest equivalence suite pins down: a
//! `ForestEngine` over N trees behaves exactly like N independent
//! single-tree engines.
//!
//! The engine deliberately takes the shard's [`Ast`] per call instead of
//! borrowing a whole [`Forest`]: callers that keep their trees inside
//! other owners (the JITD fleet runtime wraps each shard in a
//! `JitdIndex`) dispatch through the same API.

use crate::rules::RuleSet;
use crate::strategy::{MatchSource, ReplaceCtx, RuleId};
use std::sync::Arc;
use tt_ast::{Ast, Forest, GlobalNodeId, NodeId, TreeId};
use tt_pattern::Bindings;

/// A fleet of per-shard strategies over one shared rule set.
pub struct ForestEngine<S> {
    rules: Arc<RuleSet>,
    shards: Vec<S>,
}

impl<S: MatchSource> ForestEngine<S> {
    /// An empty engine (no shards yet) over `rules`.
    pub fn new(rules: Arc<RuleSet>) -> ForestEngine<S> {
        ForestEngine {
            rules,
            shards: Vec::new(),
        }
    }

    /// Builds one strategy per shard of `forest` via `factory`, which
    /// receives the shared rule set (one `Arc` clone per shard — the
    /// clone *is* the sharing) and the shard's tree.
    pub fn from_forest(
        rules: Arc<RuleSet>,
        forest: &Forest,
        mut factory: impl FnMut(Arc<RuleSet>, &Ast) -> S,
    ) -> ForestEngine<S> {
        let mut engine = ForestEngine::new(rules);
        for (_, tree) in forest.iter() {
            engine.add_shard_for(tree, &mut factory);
        }
        engine
    }

    /// Appends a shard for `tree`, returning its id. Ids are assigned in
    /// order, matching [`Forest::add_tree`] when shards are added in
    /// lockstep with trees.
    pub fn add_shard_for(
        &mut self,
        tree: &Ast,
        mut factory: impl FnMut(Arc<RuleSet>, &Ast) -> S,
    ) -> TreeId {
        let id = TreeId::from_index(u32::try_from(self.shards.len()).expect("forest exhausted"));
        self.shards.push(factory(self.rules.clone(), tree));
        id
    }

    /// The shared rule set.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The strategy maintaining `tree`'s views.
    pub fn shard(&self, tree: TreeId) -> &S {
        &self.shards[tree.index() as usize]
    }

    /// Mutable access to `tree`'s strategy.
    pub fn shard_mut(&mut self, tree: TreeId) -> &mut S {
        &mut self.shards[tree.index() as usize]
    }

    /// All shard ids.
    pub fn shard_ids(&self) -> impl Iterator<Item = TreeId> {
        (0..self.shards.len() as u32).map(TreeId::from_index)
    }

    /// Rebuilds one shard's state from its current tree.
    pub fn rebuild_tree(&mut self, tree: TreeId, ast: &Ast) {
        self.shard_mut(tree).rebuild(ast);
    }

    /// Rebuilds every shard from `forest`.
    pub fn rebuild(&mut self, forest: &Forest) {
        assert_eq!(
            forest.tree_count(),
            self.shards.len(),
            "forest/engine shard arity mismatch"
        );
        for (id, ast) in forest.iter() {
            self.shards[id.index() as usize].rebuild(ast);
        }
    }

    /// One eligible node for `rule` in `tree` — the §4 fast path,
    /// dispatched to the shard that owns it.
    pub fn find_one(&mut self, tree: TreeId, ast: &Ast, rule: RuleId) -> Option<NodeId> {
        self.shard_mut(tree).find_one(ast, rule)
    }

    /// Scans shards in id order for any tree holding a `rule` match —
    /// the forest-level search a fleet scheduler starts from.
    pub fn find_anywhere(&mut self, forest: &Forest, rule: RuleId) -> Option<GlobalNodeId> {
        for (id, ast) in forest.iter() {
            if let Some(node) = self.shards[id.index() as usize].find_one(ast, rule) {
                return Some(GlobalNodeId::new(id, node));
            }
        }
        None
    }

    /// Pre-swap notification for a rewrite in `tree`.
    pub fn before_replace(
        &mut self,
        tree: TreeId,
        ast: &Ast,
        old_root: NodeId,
        rule: Option<(RuleId, &Bindings)>,
    ) {
        self.shard_mut(tree).before_replace(ast, old_root, rule);
    }

    /// Post-swap notification for a rewrite in `tree`.
    pub fn after_replace(&mut self, tree: TreeId, ast: &Ast, ctx: &ReplaceCtx<'_>) {
        self.shard_mut(tree).after_replace(ast, ctx);
    }

    /// Graft notification for nodes created above `tree`'s old root.
    pub fn on_graft(&mut self, tree: TreeId, ast: &Ast, created: &[NodeId]) {
        self.shard_mut(tree).on_graft(ast, created);
    }

    /// Opens a maintenance epoch on one shard. Other shards' epochs are
    /// untouched — per-tree epochs are the point of the forest layout.
    pub fn begin_batch(&mut self, tree: TreeId) {
        self.shard_mut(tree).begin_batch();
    }

    /// Commits one shard's open epoch, leaving every other shard's epoch
    /// (open or not) alone.
    pub fn commit_batch(&mut self, tree: TreeId) {
        self.shard_mut(tree).commit_batch();
    }

    /// Opens an epoch on every shard.
    pub fn begin_batch_all(&mut self) {
        for s in &mut self.shards {
            s.begin_batch();
        }
    }

    /// Commits every shard's epoch.
    pub fn commit_batch_all(&mut self) {
        for s in &mut self.shards {
            s.commit_batch();
        }
    }

    /// Per-epoch `(staged, canceled)` counters of one shard.
    pub fn batch_cancellation(&self, tree: TreeId) -> Option<(u64, u64)> {
        self.shard(tree).batch_cancellation()
    }

    /// Test oracle: every shard against a from-scratch rebuild of its
    /// tree, naming the failing shard.
    pub fn check_consistent(&self, forest: &Forest) -> Result<(), String> {
        assert_eq!(
            forest.tree_count(),
            self.shards.len(),
            "forest/engine shard arity mismatch"
        );
        for (id, ast) in forest.iter() {
            self.shards[id.index() as usize]
                .check_consistent(ast)
                .map_err(|e| format!("{id:?}: {e}"))?;
        }
        Ok(())
    }

    /// Supplemental memory across the whole fleet (the Figure 11/13 axis
    /// summed over shards).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(MatchSource::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TreeToasterEngine;
    use crate::generator::reuse;
    use crate::rules::RewriteRule;
    use crate::strategy::{NaiveStrategy, RuleFired};
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    fn rules() -> Arc<RuleSet> {
        let s = arith_schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        );
        Arc::new(RuleSet::from_rules(vec![RewriteRule::new(
            "AddZero",
            &s,
            pattern,
            reuse("C"),
        )]))
    }

    fn forest_of(texts: &[&str]) -> Forest {
        let mut forest = Forest::new(arith_schema());
        for text in texts {
            let id = forest.add_tree();
            let ast = forest.tree_mut(id);
            let root = parse_sexpr(ast, text).unwrap();
            ast.set_root(root);
        }
        forest
    }

    /// Fires `rule` at `site` in `tree` with full engine notification.
    fn fire(
        engine: &mut ForestEngine<TreeToasterEngine>,
        forest: &mut Forest,
        tree: TreeId,
        rid: usize,
        site: NodeId,
    ) {
        let rules = engine.rules().clone();
        let rule = rules.get(rid);
        let bindings = match_node(forest.tree(tree), site, &rule.pattern).expect("site matches");
        engine.before_replace(tree, forest.tree(tree), site, Some((rid, &bindings)));
        let applied = rule.apply(forest.tree_mut(tree), site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: rid,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        engine.after_replace(tree, forest.tree(tree), &ctx);
    }

    #[test]
    fn per_shard_views_are_independent() {
        let mut forest = forest_of(&[
            r#"(Arith op="+" (Const val=0) (Var name="a"))"#,
            r#"(Arith op="+" (Const val=0) (Var name="b"))"#,
            r#"(Var name="quiet")"#,
        ]);
        let mut engine: ForestEngine<TreeToasterEngine> =
            ForestEngine::from_forest(rules(), &forest, |r, _| TreeToasterEngine::new(r));
        engine.rebuild(&forest);
        let ids: Vec<TreeId> = engine.shard_ids().collect();
        assert_eq!(engine.shard(ids[0]).view(0).len(), 1);
        assert_eq!(engine.shard(ids[1]).view(0).len(), 1);
        assert_eq!(engine.shard(ids[2]).view(0).len(), 0);
        // Draining tree 0's match leaves tree 1's view intact.
        let site = engine
            .find_one(ids[0], forest.tree(ids[0]), 0)
            .expect("tree 0 has a site");
        fire(&mut engine, &mut forest, ids[0], 0, site);
        assert!(engine.shard(ids[0]).view(0).is_empty());
        assert_eq!(engine.shard(ids[1]).view(0).len(), 1);
        engine.check_consistent(&forest).unwrap();
        // find_anywhere surfaces the remaining shard's match.
        let found = engine.find_anywhere(&forest, 0).unwrap();
        assert_eq!(found.tree, ids[1]);
    }

    #[test]
    fn epochs_commit_per_tree() {
        let mut forest = forest_of(&[
            r#"(Arith op="+" (Const val=0) (Var name="a"))"#,
            r#"(Arith op="+" (Const val=0) (Var name="b"))"#,
        ]);
        let mut engine: ForestEngine<TreeToasterEngine> =
            ForestEngine::from_forest(rules(), &forest, |r, _| TreeToasterEngine::new(r));
        engine.rebuild(&forest);
        let (t0, t1) = (TreeId::from_index(0), TreeId::from_index(1));
        engine.begin_batch(t0);
        engine.begin_batch(t1);
        for t in [t0, t1] {
            let site = engine.find_one(t, forest.tree(t), 0).unwrap();
            fire(&mut engine, &mut forest, t, 0, site);
        }
        assert!(engine.shard(t0).pending_deltas() > 0);
        assert!(engine.shard(t1).pending_deltas() > 0);
        // Committing tree 0 must not flush tree 1's open epoch.
        engine.commit_batch(t0);
        assert_eq!(engine.shard(t0).pending_deltas(), 0);
        assert!(
            engine.shard(t1).pending_deltas() > 0,
            "tree 1's epoch survived tree 0's commit"
        );
        engine.commit_batch(t1);
        engine.check_consistent(&forest).unwrap();
        assert!(engine.batch_cancellation(t0).is_some());
    }

    #[test]
    fn boxed_strategies_fleet() {
        // The Box blanket impl lets a heterogeneous fleet share the API.
        let forest = forest_of(&[
            r#"(Arith op="+" (Const val=0) (Var name="x"))"#,
            r#"(Const val=3)"#,
        ]);
        let shared = rules();
        let mut engine: ForestEngine<Box<dyn MatchSource>> =
            ForestEngine::from_forest(shared, &forest, |r, ast| {
                if ast.live_count() > 1 {
                    Box::new(TreeToasterEngine::new(r)) as Box<dyn MatchSource>
                } else {
                    Box::new(NaiveStrategy::new(r))
                }
            });
        engine.rebuild(&forest);
        let t0 = TreeId::from_index(0);
        let t1 = TreeId::from_index(1);
        assert_eq!(engine.shard(t0).name(), "TT");
        assert_eq!(engine.shard(t1).name(), "Naive");
        assert!(engine.find_one(t0, forest.tree(t0), 0).is_some());
        assert!(engine.find_one(t1, forest.tree(t1), 0).is_none());
        assert!(engine.memory_bytes() > 0);
        engine.check_consistent(&forest).unwrap();
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rebuild_checks_arity() {
        let forest = forest_of(&[r#"(Const val=1)"#]);
        let mut engine: ForestEngine<TreeToasterEngine> = ForestEngine::new(rules());
        engine.rebuild(&forest);
    }
}
