//! Forest-level view maintenance: one strategy instance per shard.
//!
//! The paper's deployments maintain views over a *fleet* of concurrent
//! plans (Spark's burst of ~1000-node plans, Orca's stream of
//! independent optimizations — §2, §7). A [`ForestEngine`] scales any
//! [`MatchSource`] to that shape: it owns one strategy instance per
//! [`TreeId`]-tagged shard and dispatches every notification to the
//! shard it concerns, while the *rule and pattern state* — the compiled
//! [`RuleSet`], its patterns, and the inlined maintenance plans — is
//! shared across the whole fleet through one `Arc`.
//!
//! Because each shard owns its own strategy instance, each shard also
//! owns its own epoch state: a `DeltaBuffer`/`DeltaLog` stages only its
//! shard's deltas, so epochs on different trees open, cancel, and commit
//! completely independently — committing a burst on tree 3 never
//! touches, flushes, or blocks the open epoch on tree 7. That isolation
//! is the invariant the forest equivalence suite pins down: a
//! `ForestEngine` over N trees behaves exactly like N independent
//! single-tree engines.
//!
//! The engine deliberately takes the shard's [`Ast`] per call instead of
//! borrowing a whole [`Forest`]: callers that keep their trees inside
//! other owners (the JITD fleet runtime wraps each shard in a
//! `JitdIndex`) dispatch through the same API.

use crate::rules::RuleSet;
use crate::strategy::{MatchCore, MatchSource, ReplaceCtx, RuleId};
use std::sync::Arc;
use tt_ast::{Ast, Forest, GlobalNodeId, NodeId, TreeId};
use tt_pattern::Bindings;

/// A fleet of per-shard strategies over one shared rule set.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use treetoaster_core::generator::reuse;
/// use treetoaster_core::{ForestEngine, RewriteRule, RuleSet, TreeToasterEngine};
/// use tt_ast::schema::arith_schema;
/// use tt_ast::sexpr::parse_sexpr;
/// use tt_ast::{Forest, TreeId};
/// use tt_pattern::{dsl, Pattern};
///
/// // One rule: rewrite `0 + x` to `x`.
/// let schema = arith_schema();
/// let pattern = Pattern::compile(&schema, dsl::node(
///     "Arith", "A",
///     [dsl::node("Const", "B", [], dsl::eq(dsl::attr("B", "val"), dsl::int(0))),
///      dsl::node("Var", "C", [], dsl::tru())],
///     dsl::eq(dsl::attr("A", "op"), dsl::str_("+")),
/// ));
/// let rules = Arc::new(RuleSet::from_rules(vec![
///     RewriteRule::new("AddZero", &schema, pattern, reuse("C")),
/// ]));
///
/// // A two-shard forest; only the second tree holds a match.
/// let mut forest = Forest::new(arith_schema());
/// for text in [r#"(Var name="quiet")"#,
///              r#"(Arith op="+" (Const val=0) (Var name="x"))"#] {
///     let id = forest.add_tree();
///     let root = parse_sexpr(forest.tree_mut(id), text).unwrap();
///     forest.tree_mut(id).set_root(root);
/// }
/// let mut engine: ForestEngine<TreeToasterEngine> =
///     ForestEngine::from_forest(rules, &forest, |r, _| TreeToasterEngine::new(r));
/// engine.rebuild(&forest);
/// // The fleet search is a priority scan: the shard with the larger
/// // views is probed first, and the hit is globally addressed.
/// let hit = engine.find_anywhere(&forest, 0).unwrap();
/// assert_eq!(hit.tree, TreeId::from_index(1));
/// engine.check_consistent(&forest).unwrap();
/// ```
pub struct ForestEngine<S> {
    rules: Arc<RuleSet>,
    shards: Vec<S>,
    /// Per-shard churn since that shard was last probed by a fleet-level
    /// scan: notifications (grafts, rewrites) it has absorbed. Combined
    /// with [`MatchCore::match_heat`] this is the priority key hot
    /// shards are probed first by — see [`ForestEngine::shard_heat`].
    churn: Vec<u64>,
    /// Scratch for the priority scan's `(heat, id)` ordering, reused so
    /// a steady-state `find_anywhere` allocates nothing.
    scan_order: Vec<(u64, u32)>,
}

impl<S: MatchSource> ForestEngine<S> {
    /// An empty engine (no shards yet) over `rules`.
    pub fn new(rules: Arc<RuleSet>) -> ForestEngine<S> {
        ForestEngine {
            rules,
            shards: Vec::new(),
            churn: Vec::new(),
            scan_order: Vec::new(),
        }
    }

    /// Builds one strategy per shard of `forest` via `factory`, which
    /// receives the shared rule set (one `Arc` clone per shard — the
    /// clone *is* the sharing) and the shard's tree.
    pub fn from_forest(
        rules: Arc<RuleSet>,
        forest: &Forest,
        mut factory: impl FnMut(Arc<RuleSet>, &Ast) -> S,
    ) -> ForestEngine<S> {
        let mut engine = ForestEngine::new(rules);
        for (_, tree) in forest.iter() {
            engine.add_shard_for(tree, &mut factory);
        }
        engine
    }

    /// Appends a shard for `tree`, returning its id. Ids are assigned in
    /// order, matching [`Forest::add_tree`] when shards are added in
    /// lockstep with trees.
    pub fn add_shard_for(
        &mut self,
        tree: &Ast,
        mut factory: impl FnMut(Arc<RuleSet>, &Ast) -> S,
    ) -> TreeId {
        let id = TreeId::from_index(u32::try_from(self.shards.len()).expect("forest exhausted"));
        self.shards.push(factory(self.rules.clone(), tree));
        self.churn.push(0);
        id
    }

    /// The shared rule set.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The strategy maintaining `tree`'s views.
    pub fn shard(&self, tree: TreeId) -> &S {
        &self.shards[tree.index() as usize]
    }

    /// Mutable access to `tree`'s strategy.
    pub fn shard_mut(&mut self, tree: TreeId) -> &mut S {
        &mut self.shards[tree.index() as usize]
    }

    /// All shard ids.
    pub fn shard_ids(&self) -> impl Iterator<Item = TreeId> {
        (0..self.shards.len() as u32).map(TreeId::from_index)
    }

    /// Rebuilds one shard's state from its current tree.
    pub fn rebuild_tree(&mut self, tree: TreeId, ast: &Ast) {
        // A from-scratch rebuild folds all outstanding churn into the
        // strategy's own structures; the backlog signal restarts at zero.
        self.churn[tree.index() as usize] = 0;
        self.shard_mut(tree).rebuild(ast);
    }

    /// Rebuilds every shard from `forest`.
    pub fn rebuild(&mut self, forest: &Forest) {
        assert_eq!(
            forest.tree_count(),
            self.shards.len(),
            "forest/engine shard arity mismatch"
        );
        for (id, ast) in forest.iter() {
            self.churn[id.index() as usize] = 0;
            self.shards[id.index() as usize].rebuild(ast);
        }
    }

    /// One eligible node for `rule` in `tree` — the §4 fast path,
    /// dispatched to the shard that owns it.
    pub fn find_one(&mut self, tree: TreeId, ast: &Ast, rule: RuleId) -> Option<NodeId> {
        self.shard_mut(tree).find_one(ast, rule)
    }

    /// The scheduling priority of one shard: its strategy's
    /// [`match_heat`](MatchCore::match_heat) (live view sizes plus
    /// staged deltas) plus the churn it absorbed since a fleet-level
    /// scan last probed it. Hotter shards hold more reorganization work.
    pub fn shard_heat(&self, tree: TreeId) -> u64 {
        let i = tree.index() as usize;
        self.shards[i].match_heat() as u64 + self.churn[i]
    }

    /// Fills `order` with every shard as `(heat, id)` sorted
    /// hottest-first, ties broken by id — the one definition of the
    /// probe order shared by every fleet-level scan.
    fn fill_hottest_first(&self, order: &mut Vec<(u64, u32)>) {
        order.clear();
        order.extend(
            (0..self.shards.len() as u32).map(|i| (self.shard_heat(TreeId::from_index(i)), i)),
        );
        order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    }

    /// Shard ids ordered hottest-first (ties broken by id, so a cold
    /// fleet degenerates to the old id-order scan).
    pub fn shards_hottest_first(&self) -> Vec<TreeId> {
        let mut order = Vec::new();
        self.fill_hottest_first(&mut order);
        order
            .into_iter()
            .map(|(_, i)| TreeId::from_index(i))
            .collect()
    }

    /// Priority scan for any tree holding a `rule` match — the
    /// forest-level search a fleet scheduler starts from. Shards are
    /// probed hottest-first ([`shard_heat`](ForestEngine::shard_heat)),
    /// so under skew the scan usually terminates on the first probe
    /// instead of walking cold shards in id order. Probing a shard
    /// resets its churn counter (its backlog signal has been consumed);
    /// view sizes keep contributing, so a shard full of matches stays
    /// hot until they are drained.
    pub fn find_anywhere(&mut self, forest: &Forest, rule: RuleId) -> Option<GlobalNodeId> {
        assert_eq!(
            forest.tree_count(),
            self.shards.len(),
            "forest/engine shard arity mismatch"
        );
        let mut order = std::mem::take(&mut self.scan_order);
        self.fill_hottest_first(&mut order);
        let mut found = None;
        for &(_, i) in order.iter() {
            let id = TreeId::from_index(i);
            self.churn[i as usize] = 0;
            if let Some(node) = self.shards[i as usize].find_one(forest.tree(id), rule) {
                found = Some(GlobalNodeId::new(id, node));
                break;
            }
        }
        self.scan_order = order;
        found
    }

    /// Pre-swap notification for a rewrite in `tree`.
    pub fn before_replace(
        &mut self,
        tree: TreeId,
        ast: &Ast,
        old_root: NodeId,
        rule: Option<(RuleId, &Bindings)>,
    ) {
        self.shard_mut(tree).before_replace(ast, old_root, rule);
    }

    /// Post-swap notification for a rewrite in `tree`.
    pub fn after_replace(&mut self, tree: TreeId, ast: &Ast, ctx: &ReplaceCtx<'_>) {
        self.churn[tree.index() as usize] += (ctx.removed.len() + ctx.inserted.len()).max(1) as u64;
        self.shard_mut(tree).after_replace(ast, ctx);
    }

    /// Graft notification for nodes created above `tree`'s old root.
    pub fn on_graft(&mut self, tree: TreeId, ast: &Ast, created: &[NodeId]) {
        self.churn[tree.index() as usize] += created.len() as u64;
        self.shard_mut(tree).on_graft(ast, created);
    }

    /// Opens a maintenance epoch on one shard. Other shards' epochs are
    /// untouched — per-tree epochs are the point of the forest layout.
    pub fn begin_batch(&mut self, tree: TreeId) {
        self.shard_mut(tree).begin_batch();
    }

    /// Commits one shard's open epoch, leaving every other shard's epoch
    /// (open or not) alone.
    pub fn commit_batch(&mut self, tree: TreeId) {
        self.shard_mut(tree).commit_batch();
    }

    /// Seals one shard's open epoch for a background committer instead
    /// of applying it inline ([`crate::EpochOps::submit_commit`]). Returns
    /// `true` if an epoch was actually sealed. Other shards' epochs —
    /// and their sealed slots — are untouched.
    pub fn submit_commit(&mut self, tree: TreeId) -> bool {
        self.shard_mut(tree).submit_commit()
    }

    /// Applies one shard's sealed epoch, if any (the committer half of
    /// the pipeline). Returns `true` if an epoch was applied.
    pub fn apply_submitted(&mut self, tree: TreeId) -> bool {
        self.shard_mut(tree).apply_submitted()
    }

    /// True while `tree` has a sealed epoch its committer has not yet
    /// applied — quiescence probes must treat this as pending work.
    pub fn has_submitted(&self, tree: TreeId) -> bool {
        self.shard(tree).has_submitted()
    }

    /// Applies every shard's sealed epoch (the forest-wide drain a
    /// shutdown path uses). Returns how many shards had one.
    pub fn apply_all_submitted(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.apply_submitted())
            .filter(|&applied| applied)
            .count()
    }

    /// Opens an epoch on every shard.
    pub fn begin_batch_all(&mut self) {
        for s in &mut self.shards {
            s.begin_batch();
        }
    }

    /// Commits every shard's epoch.
    pub fn commit_batch_all(&mut self) {
        for s in &mut self.shards {
            s.commit_batch();
        }
    }

    /// Per-epoch `(staged, canceled)` counters of one shard.
    pub fn batch_cancellation(&self, tree: TreeId) -> Option<(u64, u64)> {
        self.shard(tree).batch_cancellation()
    }

    /// Test oracle: every shard against a from-scratch rebuild of its
    /// tree, naming the failing shard.
    pub fn check_consistent(&self, forest: &Forest) -> Result<(), String> {
        assert_eq!(
            forest.tree_count(),
            self.shards.len(),
            "forest/engine shard arity mismatch"
        );
        for (id, ast) in forest.iter() {
            self.shards[id.index() as usize]
                .check_consistent(ast)
                .map_err(|e| format!("{id:?}: {e}"))?;
        }
        Ok(())
    }

    /// Supplemental memory across the whole fleet (the Figure 11/13 axis
    /// summed over shards).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(MatchCore::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TreeToasterEngine;
    use crate::generator::reuse;
    use crate::rules::RewriteRule;
    use crate::strategy::{NaiveStrategy, RuleFired};
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    fn rules() -> Arc<RuleSet> {
        let s = arith_schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        );
        Arc::new(RuleSet::from_rules(vec![RewriteRule::new(
            "AddZero",
            &s,
            pattern,
            reuse("C"),
        )]))
    }

    fn forest_of(texts: &[&str]) -> Forest {
        let mut forest = Forest::new(arith_schema());
        for text in texts {
            let id = forest.add_tree();
            let ast = forest.tree_mut(id);
            let root = parse_sexpr(ast, text).unwrap();
            ast.set_root(root);
        }
        forest
    }

    /// Fires `rule` at `site` in `tree` with full engine notification.
    fn fire(
        engine: &mut ForestEngine<TreeToasterEngine>,
        forest: &mut Forest,
        tree: TreeId,
        rid: usize,
        site: NodeId,
    ) {
        let rules = engine.rules().clone();
        let rule = rules.get(rid);
        let bindings = match_node(forest.tree(tree), site, &rule.pattern).expect("site matches");
        engine.before_replace(tree, forest.tree(tree), site, Some((rid, &bindings)));
        let applied = rule.apply(forest.tree_mut(tree), site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: rid,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        engine.after_replace(tree, forest.tree(tree), &ctx);
    }

    #[test]
    fn per_shard_views_are_independent() {
        let mut forest = forest_of(&[
            r#"(Arith op="+" (Const val=0) (Var name="a"))"#,
            r#"(Arith op="+" (Const val=0) (Var name="b"))"#,
            r#"(Var name="quiet")"#,
        ]);
        let mut engine: ForestEngine<TreeToasterEngine> =
            ForestEngine::from_forest(rules(), &forest, |r, _| TreeToasterEngine::new(r));
        engine.rebuild(&forest);
        let ids: Vec<TreeId> = engine.shard_ids().collect();
        assert_eq!(engine.shard(ids[0]).view(0).len(), 1);
        assert_eq!(engine.shard(ids[1]).view(0).len(), 1);
        assert_eq!(engine.shard(ids[2]).view(0).len(), 0);
        // Draining tree 0's match leaves tree 1's view intact.
        let site = engine
            .find_one(ids[0], forest.tree(ids[0]), 0)
            .expect("tree 0 has a site");
        fire(&mut engine, &mut forest, ids[0], 0, site);
        assert!(engine.shard(ids[0]).view(0).is_empty());
        assert_eq!(engine.shard(ids[1]).view(0).len(), 1);
        engine.check_consistent(&forest).unwrap();
        // find_anywhere surfaces the remaining shard's match.
        let found = engine.find_anywhere(&forest, 0).unwrap();
        assert_eq!(found.tree, ids[1]);
    }

    /// The fleet scan is a priority scan: the shard with the larger view
    /// is probed (and returned from) first, even when a lower-id shard
    /// also holds a match.
    #[test]
    fn find_anywhere_probes_hot_shards_first() {
        let forest = forest_of(&[
            // Shard 0: one match.
            r#"(Arith op="+" (Const val=0) (Var name="a"))"#,
            // Shard 1: two matches — hotter, must be probed first.
            r#"(Arith op="*"
                 (Arith op="+" (Const val=0) (Var name="b"))
                 (Arith op="+" (Const val=0) (Var name="c")))"#,
        ]);
        let mut engine: ForestEngine<TreeToasterEngine> =
            ForestEngine::from_forest(rules(), &forest, |r, _| TreeToasterEngine::new(r));
        engine.rebuild(&forest);
        let (t0, t1) = (TreeId::from_index(0), TreeId::from_index(1));
        assert_eq!(engine.shard_heat(t0), 1);
        assert_eq!(engine.shard_heat(t1), 2);
        assert_eq!(engine.shards_hottest_first(), vec![t1, t0]);
        let found = engine.find_anywhere(&forest, 0).unwrap();
        assert_eq!(found.tree, t1, "hotter shard wins the probe order");
        // Firing the rewrite drains one match but *adds* churn (the
        // shard's neighborhood just changed): shard 1 stays hottest.
        let mut forest = forest;
        fire(&mut engine, &mut forest, t1, 0, found.node);
        assert_eq!(engine.shard_heat(t1), 1 + 2, "one match + rewrite churn");
        // The next probe consumes shard 1's churn; with one live match
        // on each side the tie then breaks toward the lower id.
        assert_eq!(engine.find_anywhere(&forest, 0).unwrap().tree, t1);
        assert_eq!(engine.shard_heat(t1), 1);
        assert_eq!(engine.shards_hottest_first(), vec![t0, t1]);
        assert_eq!(engine.find_anywhere(&forest, 0).unwrap().tree, t0);
    }

    /// Churn (notifications since the last probe) feeds the same
    /// priority key, and a probe consumes it.
    #[test]
    fn churn_heats_a_shard_and_probing_cools_it() {
        let mut forest = forest_of(&[r#"(Var name="a")"#, r#"(Var name="b")"#]);
        let mut engine: ForestEngine<TreeToasterEngine> =
            ForestEngine::from_forest(rules(), &forest, |r, _| TreeToasterEngine::new(r));
        engine.rebuild(&forest);
        let (t0, t1) = (TreeId::from_index(0), TreeId::from_index(1));
        assert_eq!(engine.shard_heat(t0), 0);
        // Graft a node onto shard 1: its churn (and only its) rises.
        let ast = forest.tree_mut(t1);
        let schema = ast.schema().clone();
        let c = ast.alloc(
            schema.expect_label("Const"),
            vec![tt_ast::Value::Int(5)],
            vec![],
        );
        let old = ast.root();
        let plus = ast.alloc(
            schema.expect_label("Arith"),
            vec![tt_ast::Value::str("+")],
            vec![old, c],
        );
        ast.set_root(plus);
        engine.on_graft(t1, forest.tree(t1), &[plus, c]);
        assert_eq!(engine.shard_heat(t1), 2);
        assert_eq!(engine.shards_hottest_first()[0], t1);
        // The scan probes shard 1 first (no match there for this rule),
        // consuming its churn; afterwards the fleet is cold again.
        assert!(engine.find_anywhere(&forest, 0).is_none());
        assert_eq!(engine.shard_heat(t1), 0);
    }

    #[test]
    fn epochs_commit_per_tree() {
        let mut forest = forest_of(&[
            r#"(Arith op="+" (Const val=0) (Var name="a"))"#,
            r#"(Arith op="+" (Const val=0) (Var name="b"))"#,
        ]);
        let mut engine: ForestEngine<TreeToasterEngine> =
            ForestEngine::from_forest(rules(), &forest, |r, _| TreeToasterEngine::new(r));
        engine.rebuild(&forest);
        let (t0, t1) = (TreeId::from_index(0), TreeId::from_index(1));
        engine.begin_batch(t0);
        engine.begin_batch(t1);
        for t in [t0, t1] {
            let site = engine.find_one(t, forest.tree(t), 0).unwrap();
            fire(&mut engine, &mut forest, t, 0, site);
        }
        assert!(engine.shard(t0).pending_deltas() > 0);
        assert!(engine.shard(t1).pending_deltas() > 0);
        // Committing tree 0 must not flush tree 1's open epoch.
        engine.commit_batch(t0);
        assert_eq!(engine.shard(t0).pending_deltas(), 0);
        assert!(
            engine.shard(t1).pending_deltas() > 0,
            "tree 1's epoch survived tree 0's commit"
        );
        engine.commit_batch(t1);
        engine.check_consistent(&forest).unwrap();
        assert!(engine.batch_cancellation(t0).is_some());
    }

    #[test]
    fn submitted_epochs_commit_per_tree() {
        let mut forest = forest_of(&[
            r#"(Arith op="+" (Const val=0) (Var name="a"))"#,
            r#"(Arith op="+" (Const val=0) (Var name="b"))"#,
        ]);
        let mut engine: ForestEngine<TreeToasterEngine> =
            ForestEngine::from_forest(rules(), &forest, |r, _| TreeToasterEngine::new(r));
        engine.rebuild(&forest);
        let (t0, t1) = (TreeId::from_index(0), TreeId::from_index(1));
        for t in [t0, t1] {
            engine.begin_batch(t);
            let site = engine.find_one(t, forest.tree(t), 0).unwrap();
            fire(&mut engine, &mut forest, t, 0, site);
        }
        // Sealing tree 0's epoch leaves tree 1's open epoch untouched,
        // and the sealed work is still visible as pending.
        assert!(engine.submit_commit(t0));
        assert!(engine.has_submitted(t0));
        assert!(!engine.has_submitted(t1));
        assert!(engine.shard(t1).pending_deltas() > 0);
        // The committer half lands tree 0's epoch; the forest-wide drain
        // then finds nothing left (tree 1's epoch is still open, not
        // sealed).
        assert!(engine.apply_submitted(t0));
        assert!(!engine.has_submitted(t0));
        assert_eq!(engine.apply_all_submitted(), 0);
        engine.submit_commit(t1);
        assert_eq!(engine.apply_all_submitted(), 1);
        engine.check_consistent(&forest).unwrap();
    }

    #[test]
    fn boxed_strategies_fleet() {
        // The Box blanket impl lets a heterogeneous fleet share the API.
        let forest = forest_of(&[
            r#"(Arith op="+" (Const val=0) (Var name="x"))"#,
            r#"(Const val=3)"#,
        ]);
        let shared = rules();
        let mut engine: ForestEngine<Box<dyn MatchSource>> =
            ForestEngine::from_forest(shared, &forest, |r, ast| {
                if ast.live_count() > 1 {
                    Box::new(TreeToasterEngine::new(r)) as Box<dyn MatchSource>
                } else {
                    Box::new(NaiveStrategy::new(r))
                }
            });
        engine.rebuild(&forest);
        let t0 = TreeId::from_index(0);
        let t1 = TreeId::from_index(1);
        assert_eq!(engine.shard(t0).name(), "TT");
        assert_eq!(engine.shard(t1).name(), "Naive");
        assert!(engine.find_one(t0, forest.tree(t0), 0).is_some());
        assert!(engine.find_one(t1, forest.tree(t1), 0).is_none());
        assert!(engine.memory_bytes() > 0);
        engine.check_consistent(&forest).unwrap();
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rebuild_checks_arity() {
        let forest = forest_of(&[r#"(Const val=1)"#]);
        let mut engine: ForestEngine<TreeToasterEngine> = ForestEngine::new(rules());
        engine.rebuild(&forest);
    }
}
