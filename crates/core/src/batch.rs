//! Batched (epoch/transactional) view maintenance.
//!
//! The paper's engine reconciles views after every single
//! `replace(R, R′)`. A production optimizer instead fires long rewrite
//! *bursts* in which consecutive deltas overlap and cancel: a node
//! inserted by rewrite `i` is often consumed by rewrite `j > i` in the
//! same burst, so its `+1` and `−1` view deltas annihilate before either
//! needs to touch a [`MatchView`]. The [`DeltaBuffer`] realizes this
//! DBToaster-style coalescing for TreeToaster's node-granularity views:
//! per-view signed multiplicity deltas accumulate across an epoch and
//! opposing entries cancel eagerly; only the surviving net deltas are
//! applied at commit via [`MatchView::apply_delta`].
//!
//! The buffer maintains the invariant that, at every point inside an
//! epoch, `view ⊕ pending` equals the up-to-date view — which is what
//! lets [`TreeToasterEngine`](crate::engine::TreeToasterEngine) answer
//! `find_one` mid-epoch through a cheap overlay instead of flushing.
//! Because the deltas are signed and compose, the invariant survives a
//! pipelined commit too: an epoch **sealed** for a background committer
//! (`MatchSource::submit_commit`) and the next epoch's open buffer
//! overlay as `view ⊕ sealed ⊕ pending`, summing entries per node —
//! exactly what one merged buffer would hold. Draining the sealed
//! buffer first (commit order) transfers its entries into the views
//! without disturbing the open epoch's.

use crate::view::MatchView;
use tt_ast::{NodeId, NodeMap};

/// Signed multiplicity deltas staged against a set of per-rule views.
///
/// One dense [`NodeMap`] per view; staging a delta that returns an entry
/// to net zero removes the entry — that removal *is* the cancellation.
/// Pages are retained across epochs, so a long-lived buffer stages and
/// drains without allocating.
///
/// # Example
///
/// ```
/// use treetoaster_core::{DeltaBuffer, MatchView};
/// use tt_ast::NodeId;
///
/// let mut buffer = DeltaBuffer::new(1);
/// let node = NodeId::from_index(3);
/// // A node born and consumed inside the same epoch annihilates in the
/// // buffer — the view never sees either delta.
/// buffer.stage(0, node, 1);
/// buffer.stage(0, node, -1);
/// assert!(buffer.is_empty());
/// assert_eq!((buffer.staged(), buffer.canceled()), (2, 2));
/// // Surviving net deltas land on the views at commit.
/// buffer.stage(0, node, 1);
/// let mut views = vec![MatchView::new()];
/// buffer.drain_into(&mut views);
/// assert!(views[0].contains(node));
/// ```
#[derive(Debug, Default)]
pub struct DeltaBuffer {
    per_view: Vec<NodeMap<i64>>,
    /// Deltas staged since creation (including later-canceled ones).
    staged: u64,
    /// Staged deltas that annihilated with an opposing entry.
    canceled: u64,
}

impl DeltaBuffer {
    /// An empty buffer for `views` views.
    pub fn new(views: usize) -> DeltaBuffer {
        DeltaBuffer {
            per_view: (0..views).map(|_| NodeMap::new()).collect(),
            staged: 0,
            canceled: 0,
        }
    }

    /// Number of views this buffer covers.
    pub fn view_count(&self) -> usize {
        self.per_view.len()
    }

    /// Stages `delta` against `node` in `view`, cancelling in place when
    /// the entry's net reaches zero.
    pub fn stage(&mut self, view: usize, node: NodeId, delta: i64) {
        if delta == 0 {
            return;
        }
        self.staged += 1;
        let map = &mut self.per_view[view];
        let entry = map.get_or_insert_with(node, || 0);
        *entry += delta;
        if *entry == 0 {
            map.remove(node);
            // This stage op and the one(s) it annihilated.
            self.canceled += 2;
        }
    }

    /// Net pending delta for `node` in `view` (0 when absent).
    pub fn pending(&self, view: usize, node: NodeId) -> i64 {
        self.per_view[view].get(node).copied().unwrap_or(0)
    }

    /// The pending delta map of one view.
    pub fn view_deltas(&self, view: usize) -> &NodeMap<i64> {
        &self.per_view[view]
    }

    /// True if no net delta is pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.per_view.iter().all(NodeMap::is_empty)
    }

    /// Total net entries pending across all views.
    pub fn len(&self) -> usize {
        self.per_view.iter().map(NodeMap::len).sum()
    }

    /// Deltas staged over the buffer's lifetime.
    pub fn staged(&self) -> u64 {
        self.staged
    }

    /// Empties all staged state and zeroes the lifetime counters while
    /// keeping allocated pages — the engine recycles one buffer across
    /// epochs so begin/commit cycles stop allocating.
    pub fn reset(&mut self) {
        for map in &mut self.per_view {
            map.clear();
        }
        self.staged = 0;
        self.canceled = 0;
    }

    /// Staged deltas that cancelled against an opposing entry — work the
    /// views never had to absorb.
    pub fn canceled(&self) -> u64 {
        self.canceled
    }

    /// Fraction of staged deltas that annihilated (0.0 when nothing has
    /// been staged). This is the observed signal adaptive batch sizing
    /// tunes K from: a high rate means widening the epoch keeps
    /// absorbing churn, a low rate means staging is pure overhead.
    pub fn cancellation_rate(&self) -> f64 {
        if self.staged == 0 {
            0.0
        } else {
            self.canceled as f64 / self.staged as f64
        }
    }

    /// Applies every surviving net delta to its view and empties the
    /// buffer (the epoch commit).
    pub fn drain_into(&mut self, views: &mut [MatchView]) {
        assert_eq!(
            views.len(),
            self.per_view.len(),
            "buffer/view arity mismatch"
        );
        for (view, map) in views.iter_mut().zip(self.per_view.iter_mut()) {
            view.apply_delta(map.drain());
        }
    }

    /// Approximate heap bytes (allocated pages are charged in full).
    pub fn memory_bytes(&self) -> usize {
        self.per_view.iter().map(NodeMap::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn opposing_unit_deltas_cancel() {
        let mut b = DeltaBuffer::new(1);
        b.stage(0, n(1), 1);
        assert_eq!(b.pending(0, n(1)), 1);
        b.stage(0, n(1), -1);
        assert_eq!(b.pending(0, n(1)), 0);
        assert!(b.is_empty(), "insert+delete of the same node annihilates");
        assert_eq!(b.staged(), 2);
        assert_eq!(b.canceled(), 2);
    }

    #[test]
    fn cancellation_is_order_independent() {
        let mut b = DeltaBuffer::new(1);
        b.stage(0, n(7), -1);
        b.stage(0, n(7), 1);
        assert!(b.is_empty(), "−1 then +1 cancels too");
        assert_eq!(b.canceled(), 2);
    }

    #[test]
    fn canceled_entry_can_be_restaged() {
        let mut b = DeltaBuffer::new(1);
        b.stage(0, n(3), 1);
        b.stage(0, n(3), -1);
        b.stage(0, n(3), 1);
        assert_eq!(b.pending(0, n(3)), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn views_are_independent() {
        let mut b = DeltaBuffer::new(2);
        b.stage(0, n(1), 1);
        b.stage(1, n(1), -1);
        assert_eq!(b.pending(0, n(1)), 1);
        assert_eq!(b.pending(1, n(1)), -1);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut b = DeltaBuffer::new(1);
        b.stage(0, n(1), 0);
        assert!(b.is_empty());
        assert_eq!(b.staged(), 0);
    }

    #[test]
    fn drain_applies_net_deltas_only() {
        let mut views = vec![MatchView::new(), MatchView::new()];
        views[0].add(n(1), 1); // pre-existing member, to be removed
        let mut b = DeltaBuffer::new(2);
        b.stage(0, n(1), -1); // drop the member
        b.stage(0, n(2), 1); // new member
        b.stage(0, n(3), 1); // transient: born and killed in the epoch
        b.stage(0, n(3), -1);
        b.stage(1, n(9), 1);
        b.drain_into(&mut views);
        assert!(b.is_empty());
        assert!(!views[0].contains(n(1)));
        assert!(views[0].contains(n(2)));
        assert!(!views[0].contains(n(3)));
        assert_eq!(views[0].len(), 1);
        assert_eq!(views[1].any(), Some(n(9)));
        views[0].check_consistent().unwrap();
        views[1].check_consistent().unwrap();
    }

    #[test]
    fn drain_then_reuse() {
        let mut views = vec![MatchView::new()];
        let mut b = DeltaBuffer::new(1);
        b.stage(0, n(1), 1);
        b.drain_into(&mut views);
        b.stage(0, n(2), 1);
        assert_eq!(b.len(), 1);
        b.drain_into(&mut views);
        assert_eq!(views[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn drain_checks_arity() {
        let mut views = vec![MatchView::new()];
        DeltaBuffer::new(2).drain_into(&mut views);
    }

    #[test]
    fn memory_accounting_grows_with_entries() {
        let mut b = DeltaBuffer::new(1);
        for i in 0..64 {
            b.stage(0, n(i), 1);
        }
        assert!(b.memory_bytes() > 0);
    }
}
