//! TreeToaster: AST-specialized incremental view maintenance.
//!
//! The paper's contribution (§4–6). For a set of rewrite-rule patterns
//! `q₁…q_m` over an evolving AST, TreeToaster materializes one view per
//! pattern — the generalized multiset of nodes currently matching — and
//! maintains it incrementally as the tree is rewritten:
//!
//! - [`view::MatchView`] — the per-pattern view: a multiset of node
//!   references with O(1) "give me any eligible node" (§4's goal), built
//!   directly over the compiler's own AST (no shadow copy).
//! - [`engine::TreeToasterEngine`] — Algorithm 2 applied to the *maximal
//!   search set* of Definition 6: on `replace(R, R′)` only `Desc(R)`,
//!   `Desc(R′)`, and ancestors up to the pattern depth `D(q)` are
//!   re-checked.
//! - [`rules`] / [`generator`] — declaratively specified rewrite rules
//!   `⟨q, g⟩` with the generator grammar `G : Gen(ℓ, ā, ḡ) | Reuse(i)`
//!   and the Definition-7 safety discipline.
//! - [`inline`] — Algorithm 3 (`Inline_gen` / `Align`): compile-time
//!   elimination of impossible pattern matches, so a fired rule touches
//!   only label-aligned generated positions and ancestor heights.
//! - [`strategy`] — the `MatchSource` abstraction shared by every search
//!   strategy in the paper's evaluation (Naive, Index, Classic, DBT, TT),
//!   with the Naive and Label-Index baselines implemented here.
//! - [`batch`] — epoch/transactional maintenance: a [`DeltaBuffer`]
//!   accumulates ± view deltas across a rewrite burst and cancels
//!   opposing entries before they ever touch a `MatchView`
//!   (single-rewrite maintenance is the degenerate one-delta epoch).
//! - [`forest`] — the multi-tree deployment: a [`ForestEngine`] owns one
//!   strategy instance per `tt_ast::forest` shard, shares the compiled
//!   rule/pattern state across the fleet, and keeps per-tree epochs
//!   fully independent.
//! - [`config`] — the typed [`EngineConfig`]/[`FleetConfig`] builders;
//!   the one place `TT_*` environment knobs are parsed.

pub mod batch;
pub mod config;
pub mod engine;
pub mod forest;
pub mod generator;
pub mod inline;
pub mod rules;
pub mod strategy;
pub mod view;

pub use batch::DeltaBuffer;
pub use config::{env_u64, EngineConfig, FleetConfig};
pub use engine::TreeToasterEngine;
pub use forest::ForestEngine;
pub use generator::{AttrGen, GenCtx, GenNode, GenPath};
pub use inline::{CompiledRulePlan, InlineMatrix};
pub use rules::{AppliedRewrite, RewriteRule, RuleSet};
pub use strategy::{
    EpochOps, IndexStrategy, MatchCore, MatchSource, NaiveStrategy, ReplaceCtx, RuleFired, RuleId,
};
pub use view::{MatchView, OrderedMatchView};
