//! Algorithm 3: compile-time elimination of impossible pattern matches.
//!
//! For declarative rules, "the labels and structure of the nodes being
//! removed and those being added are known at compile time" (§6.1). For
//! every (view pattern `q`, fired rule `⟨m, g⟩`) pair we precompute:
//!
//! - which `Gen` positions of `g` could root a `q`-match (`Inline_gen`,
//!   by recursive descent with `Align₀`),
//! - which destroyed `Match` positions of `m` could have rooted a
//!   `q`-match (the "virtually identical process ... for matching removed
//!   nodes"),
//! - which ancestor heights `i ∈ [D(q)]` need re-checking (`Align_i`).
//!   We take the union of generator-side and pattern-side alignments:
//!   an ancestor can *lose* a match that aligned with the removed subtree
//!   or *gain* one aligning with the generated subtree — and an ancestor
//!   whose match never involved the rewrite site must be re-added if it
//!   is re-checked at all, so pre- and post-phases use the same height
//!   set.
//!
//! Reused subtrees are never candidates: a node's match status depends
//! only on its descendants (Figure 5 recurses strictly downward), and a
//! `Reuse` moves a subtree without changing its interior.

use crate::generator::{GenNode, GenPath};
use crate::rules::{RewriteRule, RuleSet};
use tt_pattern::{Pattern, PatternNode, VarId};

/// The per-(view, rule) maintenance plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledRulePlan {
    /// `Gen` indices of the fired rule's generator that can root a match
    /// of the view pattern.
    pub gen_candidates: Vec<GenPath>,
    /// Destroyed pattern variables of the fired rule whose positions can
    /// root a match of the view pattern (checked pre-state).
    pub removed_candidates: Vec<VarId>,
    /// Ancestor heights to re-check in both phases.
    pub ancestor_heights: Vec<usize>,
}

impl CompiledRulePlan {
    /// True if firing the rule cannot affect this view at all.
    pub fn is_trivial(&self) -> bool {
        self.gen_candidates.is_empty()
            && self.removed_candidates.is_empty()
            && self.ancestor_heights.is_empty()
    }
}

/// Plans for every (view pattern, fired rule) pair of a rule set. Rules
/// that fail the Definition-7 safety check get no plans (the engine falls
/// back to the maximal-search-set path for them).
#[derive(Debug)]
pub struct InlineMatrix {
    /// `plans[view][rule]`; `None` when `rule` is not safe for inlining.
    plans: Vec<Vec<Option<CompiledRulePlan>>>,
}

impl InlineMatrix {
    /// Builds the matrix for `rules` (views are the rules' own patterns,
    /// one per rule, as in the paper's evaluation).
    pub fn build(rules: &RuleSet) -> InlineMatrix {
        let plans = rules
            .iter()
            .map(|(_, view_rule)| {
                rules
                    .iter()
                    .map(|(_, fired)| {
                        fired
                            .safe_for_inline()
                            .then(|| compile_plan(&view_rule.pattern, fired))
                    })
                    .collect()
            })
            .collect();
        InlineMatrix { plans }
    }

    /// The plan for maintaining `view` after `fired` fires (`None` when
    /// the fired rule is unsafe for inlining).
    pub fn plan(&self, view: usize, fired: usize) -> Option<&CompiledRulePlan> {
        self.plans[view][fired].as_ref()
    }
}

/// Builds one plan: view pattern `q` against fired rule `⟨m, g⟩`.
fn compile_plan(q: &Pattern, fired: &RewriteRule) -> CompiledRulePlan {
    let mut gen_candidates = Vec::new();
    collect_gen_candidates(q.root(), &fired.generator, &mut gen_candidates);

    let removed_candidates = fired
        .removed_vars()
        .iter()
        .copied()
        .filter(|&v| {
            let pos = fired
                .pattern
                .node_of_var(v)
                .expect("removed var must be a pattern position");
            align0_pat(q.root(), pos)
        })
        .collect();

    let ancestor_heights = (1..=q.depth())
        .filter(|&h| {
            align_h_gen(q.root(), &fired.generator, h)
                || align_h_pat(q.root(), fired.pattern.root(), h)
        })
        .collect();

    CompiledRulePlan {
        gen_candidates,
        removed_candidates,
        ancestor_heights,
    }
}

/// Lines 3–11 of Algorithm 3: recursively descend the generator, marking
/// every `Gen` position whose subtree aligns with `q` at its root.
fn collect_gen_candidates(q: &PatternNode, g: &GenNode, out: &mut Vec<GenPath>) {
    if let GenNode::Gen {
        index, children, ..
    } = g
    {
        if align0_gen(q, g) {
            out.push(*index as usize);
        }
        for c in children {
            collect_gen_candidates(q, c, out);
        }
    }
    // Reuse positions are skipped entirely: their subtrees are unchanged.
}

/// `Align₀` against a generator: do the pattern and the generated shape
/// have equivalent labels (and arities) at equivalent positions?
fn align0_gen(q: &PatternNode, g: &GenNode) -> bool {
    match (q, g) {
        (PatternNode::Any { .. }, _) => true,
        (_, GenNode::Reuse(_)) => true, // label unknown until runtime
        (
            PatternNode::Match {
                label: ql,
                children: qc,
                ..
            },
            GenNode::Gen {
                label: gl,
                children: gc,
                ..
            },
        ) => {
            ql == gl && qc.len() == gc.len() && qc.iter().zip(gc).all(|(qk, gk)| align0_gen(qk, gk))
        }
    }
}

/// `Align₀` against the fired rule's *match pattern*: could a node shaped
/// like `m`'s position root a `q`-match? `m`-side wildcards have unknown
/// shape, so they align conservatively.
fn align0_pat(q: &PatternNode, m: &PatternNode) -> bool {
    match (q, m) {
        (PatternNode::Any { .. }, _) => true,
        (_, PatternNode::Any { .. }) => true,
        (
            PatternNode::Match {
                label: ql,
                children: qc,
                ..
            },
            PatternNode::Match {
                label: ml,
                children: mc,
                ..
            },
        ) => {
            ql == ml && qc.len() == mc.len() && qc.iter().zip(mc).all(|(qk, mk)| align0_pat(qk, mk))
        }
    }
}

/// `Align_d(q, g) = ∃k : Align_{d−1}(q_k, g)` — does the generated root
/// align somewhere at depth `d` below a `q`-match root? Wildcard pattern
/// positions terminate the recursion: nothing below them is inspected by
/// `q`, so changes there cannot affect a `q`-match.
fn align_h_gen(q: &PatternNode, g: &GenNode, d: usize) -> bool {
    if d == 0 {
        return align0_gen(q, g);
    }
    match q {
        PatternNode::Any { .. } => false,
        PatternNode::Match { children, .. } => children.iter().any(|qk| align_h_gen(qk, g, d - 1)),
    }
}

/// `Align_d` for the removed subtree's shape (the fired rule's pattern).
fn align_h_pat(q: &PatternNode, m: &PatternNode, d: usize) -> bool {
    if d == 0 {
        return align0_pat(q, m);
    }
    match q {
        PatternNode::Any { .. } => false,
        PatternNode::Match { children, .. } => children.iter().any(|qk| align_h_pat(qk, m, d - 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{aconst, gen, reuse};
    use crate::rules::RewriteRule;
    use std::sync::Arc;
    use tt_ast::schema::arith_schema;
    use tt_ast::{Schema, Value};
    use tt_pattern::dsl as p;

    fn schema() -> Arc<Schema> {
        arith_schema()
    }

    fn add_zero_pattern(s: &Arc<Schema>) -> Pattern {
        Pattern::compile(
            s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        )
    }

    /// Example 6.1's setting: the rule rewrites its match to Reuse(Var).
    /// Only the Var appears in both pattern and replacement, so "when a
    /// replacement is applied we need only check the parent of a replaced
    /// node for new view updates".
    #[test]
    fn example_6_1_only_parent_rechecked() {
        let s = schema();
        let rule = RewriteRule::new("AddZero", &s, add_zero_pattern(&s), reuse("C"));
        let rules = RuleSet::from_rules(vec![rule]);
        let m = InlineMatrix::build(&rules);
        let plan = m.plan(0, 0).expect("safe rule gets a plan");
        assert!(
            plan.gen_candidates.is_empty(),
            "pure-reuse generator creates nothing"
        );
        // The destroyed Arith(+) could itself have rooted a match of q;
        // the destroyed Const cannot (q roots at Arith).
        let pat = &rules.get(0).pattern;
        assert_eq!(plan.removed_candidates, vec![pat.var("A").unwrap()]);
        // D(q)=1 and the replacement (a reused Var of unknown alignment)
        // could sit under an Arith parent → height 1 is checked.
        assert_eq!(plan.ancestor_heights, vec![1]);
    }

    #[test]
    fn gen_candidates_found_by_label_alignment() {
        // Rule: Arith(+, Const0, Var) → Arith(*, Const(1), Reuse(C)).
        // The generated root aligns with q (Arith over Const, Var-reuse),
        // but the generated Const (arity 0, label Const ≠ Arith) does not.
        let s = schema();
        let rule = RewriteRule::new(
            "Rebuild",
            &s,
            add_zero_pattern(&s),
            gen(
                "Arith",
                [("op", aconst(Value::str("*")))],
                [
                    gen("Const", [("val", aconst(Value::Int(1)))], []),
                    reuse("C"),
                ],
            ),
        );
        let rules = RuleSet::from_rules(vec![rule]);
        let m = InlineMatrix::build(&rules);
        let plan = m.plan(0, 0).unwrap();
        assert_eq!(plan.gen_candidates, vec![0], "only the root Gen aligns");
    }

    #[test]
    fn label_mismatch_prunes_gen_candidates() {
        // Generator produces only Const nodes; q roots at Arith → no
        // generated candidates, no aligned removal for Const/Var.
        let s = schema();
        let pattern = Pattern::compile(&s, p::node("Var", "V", [], p::tru()));
        let rule = RewriteRule::new(
            "VarToConst",
            &s,
            pattern,
            gen("Const", [("val", aconst(Value::Int(0)))], []),
        );
        let q_rule = RewriteRule::new("AddZero", &s, add_zero_pattern(&s), reuse("C"));
        let rules = RuleSet::from_rules(vec![q_rule, rule]);
        let m = InlineMatrix::build(&rules);
        // Maintaining view 0 (AddZero) after rule 1 (VarToConst) fires:
        let plan = m.plan(0, 1).unwrap();
        assert!(
            plan.gen_candidates.is_empty(),
            "Const cannot root an Arith match"
        );
        assert!(
            plan.removed_candidates.is_empty(),
            "a destroyed Var cannot root an Arith match"
        );
        // But the parent could: Var aligns at depth 1 under q (position C).
        assert_eq!(plan.ancestor_heights, vec![1]);
    }

    #[test]
    fn deep_pattern_gets_multiple_heights() {
        let s = schema();
        // q: Arith over (Arith over (Const, _), _) — depth 2, Const at depth 2.
        let q = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node(
                        "Arith",
                        "B",
                        [p::node("Const", "C", [], p::tru()), p::any()],
                        p::tru(),
                    ),
                    p::any(),
                ],
                p::tru(),
            ),
        );
        // Rule rewriting a Const to a Const: candidate at heights where a
        // Const can sit: depth 2 only (Arith at 0,1).
        let cpat = Pattern::compile(&s, p::node("Const", "X", [], p::tru()));
        let fired = RewriteRule::new(
            "ConstToConst",
            &s,
            cpat,
            gen("Const", [("val", aconst(Value::Int(9)))], []),
        );
        let qrule = RewriteRule::new(
            "Deep",
            &s,
            q,
            gen("Const", [("val", aconst(Value::Int(0)))], []),
        );
        let rules = RuleSet::from_rules(vec![qrule, fired]);
        let m = InlineMatrix::build(&rules);
        let plan = m.plan(0, 1).unwrap();
        // Height 2 aligns through the Const position. Height 1 is also
        // kept because q has an AnyNode child at depth 1 and the paper's
        // Align₀ conservatively treats wildcards as aligned (a rewrite
        // under a wildcard can never actually flip the ancestor's match,
        // but Algorithm 3 does not exploit that).
        assert_eq!(plan.ancestor_heights, vec![1, 2]);
    }

    #[test]
    fn unsafe_rules_get_no_plan() {
        let s = schema();
        // Pattern has an unreused wildcard → unsafe.
        let pat = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [p::any_as("q"), p::node("Var", "V", [], p::tru())],
                p::tru(),
            ),
        );
        let unsafe_rule = RewriteRule::new("Drop", &s, pat, reuse("V"));
        let rules = RuleSet::from_rules(vec![unsafe_rule]);
        let m = InlineMatrix::build(&rules);
        assert!(m.plan(0, 0).is_none());
    }

    #[test]
    fn arity_mismatch_blocks_alignment() {
        let s = schema();
        // q roots at childless Arith (arity 0); generator builds a
        // two-child Arith → cannot align.
        let q = Pattern::compile(&s, p::node("Arith", "A", [], p::tru()));
        let fired_pat = Pattern::compile(&s, p::node("Var", "V", [], p::tru()));
        let fired = RewriteRule::new(
            "VarToAdd",
            &s,
            fired_pat,
            gen(
                "Arith",
                [("op", aconst(Value::str("+")))],
                [
                    gen("Const", [("val", aconst(Value::Int(0)))], []),
                    gen("Const", [("val", aconst(Value::Int(1)))], []),
                ],
            ),
        );
        let qrule = RewriteRule::new(
            "Q",
            &s,
            q,
            gen("Const", [("val", aconst(Value::Int(0)))], []),
        );
        let rules = RuleSet::from_rules(vec![qrule, fired]);
        let m = InlineMatrix::build(&rules);
        let plan = m.plan(0, 1).unwrap();
        assert!(plan.gen_candidates.is_empty());
    }
}
