//! Declaratively specified rewrite rules `⟨q, g⟩` (paper §6) and their
//! application.
//!
//! A rule pairs a match [`Pattern`] (the nodes to be removed from the
//! tree) with a [`GenNode`] generator (the nodes to be inserted back as
//! replacements). Rule construction validates the **Definition 7 safety**
//! discipline and records, for the inlined maintenance plan, which pattern
//! positions are actually destroyed by an application.

use crate::generator::{compile_generator, GenNode, GenSpec};
use std::sync::Arc;
use tt_ast::{Ast, FxHashMap, Label, NodeId, NodeRow, Schema};
use tt_pattern::{Bindings, MatchAutomaton, Pattern, PatternNode, VarId};

/// A declarative rewrite rule.
#[derive(Debug, Clone)]
pub struct RewriteRule {
    /// Human-readable name (e.g. `"CrackArray"`).
    pub name: String,
    /// The match pattern `q` — what gets removed.
    pub pattern: Pattern,
    /// The generator `g` — what gets inserted.
    pub generator: GenNode,
    /// Pattern `Match` positions destroyed by an application (not reused).
    removed_vars: Vec<VarId>,
    /// Pattern positions the generator reuses (cached at construction so
    /// `apply` never re-walks the generator or allocates to learn them).
    reused_vars: Vec<VarId>,
    /// Whether the rule satisfies the Definition-7 discipline, enabling
    /// the inlined maintenance path (unsafe rules fall back to the
    /// maximal-search-set path, which is always correct).
    safe_for_inline: bool,
}

impl RewriteRule {
    /// Builds and validates a rule. Panics on authoring errors: reusing an
    /// unbound or duplicate variable, reusing nested positions, or reusing
    /// the pattern root (which `replace` could not re-anchor).
    pub fn new(name: &str, schema: &Arc<Schema>, pattern: Pattern, genspec: GenSpec) -> Self {
        let generator = compile_generator(schema, &pattern, genspec);
        let reused = generator.reused_vars();

        // Each variable reused at most once.
        let mut sorted = reused.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(
            before,
            sorted.len(),
            "rule {name}: a variable is reused twice"
        );

        // Root cannot be reused: after detaching it there is nothing left
        // at the replacement site to swap out.
        if let Some(root_var) = pattern.root_var() {
            assert!(
                !reused.contains(&root_var),
                "rule {name}: cannot reuse the pattern root"
            );
        }

        // Reused positions must be pairwise non-nested, or re-attaching
        // one would steal a subtree out of another.
        for &a in &reused {
            for &b in &reused {
                if a != b {
                    assert!(
                        !var_contains(&pattern, a, b),
                        "rule {name}: reused position nests another reused position"
                    );
                }
            }
        }

        let removed_vars = compute_removed_vars(&pattern, &reused);
        let safe_for_inline = all_wildcards_covered(&pattern, &reused);

        RewriteRule {
            name: name.to_string(),
            pattern,
            generator,
            removed_vars,
            reused_vars: reused,
            safe_for_inline,
        }
    }

    /// `Match` positions whose nodes an application frees.
    pub fn removed_vars(&self) -> &[VarId] {
        &self.removed_vars
    }

    /// Pattern positions the generator reuses.
    pub fn reused_vars(&self) -> &[VarId] {
        &self.reused_vars
    }

    /// True if the rule satisfies Definition 7 (every wildcard match is
    /// reused), making the inlined maintenance plan sound.
    pub fn safe_for_inline(&self) -> bool {
        self.safe_for_inline
    }

    /// Applies the rule at `root` (which must match; `bindings` from
    /// [`tt_pattern::match_node`]). Performs the §5.1 pointer swap, frees
    /// the non-reused remainder of the old subtree, and reports everything
    /// downstream maintenance needs.
    ///
    /// Callers that maintain views must notify their engines **before**
    /// calling this (pre-state checks) and after (post-state checks) — see
    /// `MatchSource::{before_replace, after_replace}`.
    pub fn apply(
        &self,
        ast: &mut Ast,
        root: NodeId,
        bindings: &Bindings,
        tick: u64,
    ) -> AppliedRewrite {
        let parent = ast.parent(root);
        let parent_snapshot =
            (!parent.is_null()).then(|| (ast.label(parent), NodeRow::of(ast, parent)));

        // Snapshot the nodes this application will free — `Desc(root)`
        // pruned at reused subtrees — *before* the generator runs: reuse
        // detaches subtrees, which would otherwise corrupt the removed
        // parents' images (their child lists shrink), and bolt-on engines
        // must see `remove()` events matching the rows they inserted.
        // A rule reuses at most a handful of positions, so a linear scan
        // of the cached variable list beats materializing a set.
        let is_reused = |c: NodeId| self.reused_vars.iter().any(|&v| bindings.get(v) == c);
        let mut removed: Vec<(Label, NodeRow)> = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            removed.push((ast.label(n), NodeRow::of(ast, n)));
            for &c in ast.children(n) {
                if !is_reused(c) {
                    stack.push(c);
                }
            }
        }

        // ⟦g⟧Γ,µ — builds the new subtree, detaching reused nodes.
        let mut gen_nodes = vec![NodeId::NULL; self.generator.gen_count()];
        let new_root = self.generator.eval(ast, bindings, tick, &mut gen_nodes);

        // The single pointer swap.
        ast.replace(root, new_root);

        // Everything left under the old root (reused subtrees were
        // detached by the generator) is garbage.
        let freed = ast.free_subtree(root);
        debug_assert_eq!(
            {
                let mut a: Vec<NodeId> = freed.clone();
                a.sort_unstable();
                a
            },
            {
                let mut b: Vec<NodeId> = removed.iter().map(|(_, r)| r.id).collect();
                b.sort_unstable();
                b
            },
            "pre-computed removal set must equal the freed set"
        );

        let parent_update =
            parent_snapshot.map(|(label, old_row)| (label, old_row, NodeRow::of(ast, parent)));

        AppliedRewrite {
            old_root: root,
            new_root,
            gen_nodes,
            removed,
            parent_update,
        }
    }
}

/// The record of one rule application — the mutable update delta of §6
/// ("the size of this delta is linear in the size of g and m").
#[derive(Debug, Clone)]
pub struct AppliedRewrite {
    /// The replaced node's (now dead) id.
    pub old_root: NodeId,
    /// The replacement subtree root.
    pub new_root: NodeId,
    /// Newly created nodes, dense by the generator's `Gen` preorder index.
    pub gen_nodes: Vec<NodeId>,
    /// Snapshots of the freed nodes (label + relational image) — the
    /// `remove()` events the instrumented compiler reports.
    pub removed: Vec<(Label, NodeRow)>,
    /// If the replacement site had a parent, its (label, old image, new
    /// image): the child-pointer update bolt-on engines must see as a
    /// delete + insert.
    pub parent_update: Option<(Label, NodeRow, NodeRow)>,
}

impl AppliedRewrite {
    /// Ids of newly inserted nodes.
    pub fn inserted(&self) -> &[NodeId] {
        &self.gen_nodes
    }
}

/// A named collection of rewrite rules; rule ids are indices.
///
/// Construction eagerly derives everything the matchers and engines used
/// to recompute per consumer: the compiled [`MatchAutomaton`] over all
/// patterns, the name → id index, per-root-label rule buckets for the
/// one-rule-at-a-time fallback path, and the Definition-7
/// [`RewriteRule::safe_for_inline`] bits. Rule sets are tiny and shared
/// via `Arc` by whole fleets of engines, so paying once here is the
/// right trade.
#[derive(Debug)]
pub struct RuleSet {
    rules: Vec<RewriteRule>,
    /// The compiled multi-rule matcher (rule ids = indices).
    automaton: Arc<MatchAutomaton>,
    /// Name → id (first occurrence wins, like the old linear scan).
    name_index: FxHashMap<String, usize>,
    /// Rules bucketed by their root `Match` label.
    by_root_label: FxHashMap<Label, Vec<usize>>,
    /// Rules whose root is a wildcard (match any node).
    wildcard_rooted: Vec<usize>,
    /// Cached [`RewriteRule::safe_for_inline`] per rule, dense by id.
    inlineable: Vec<bool>,
}

impl Default for RuleSet {
    fn default() -> Self {
        Self::from_rules(Vec::new())
    }
}

impl RuleSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from rules.
    pub fn from_rules(rules: Vec<RewriteRule>) -> Self {
        let automaton = Arc::new(MatchAutomaton::compile(rules.iter().map(|r| &r.pattern)));
        let mut name_index = FxHashMap::default();
        let mut by_root_label: FxHashMap<Label, Vec<usize>> = FxHashMap::default();
        let mut wildcard_rooted = Vec::new();
        let mut inlineable = Vec::with_capacity(rules.len());
        for (id, rule) in rules.iter().enumerate() {
            name_index.entry(rule.name.clone()).or_insert(id);
            match rule.pattern.root_label() {
                Some(label) => by_root_label.entry(label).or_default().push(id),
                None => wildcard_rooted.push(id),
            }
            inlineable.push(rule.safe_for_inline());
        }
        Self {
            rules,
            automaton,
            name_index,
            by_root_label,
            wildcard_rooted,
            inlineable,
        }
    }

    /// Adds a rule, returning its id. Rebuilds the derived indexes (rule
    /// sets are authored once and tiny; mutation is not a hot path).
    pub fn push(&mut self, rule: RewriteRule) -> usize {
        let mut rules = std::mem::take(&mut self.rules);
        rules.push(rule);
        *self = Self::from_rules(rules);
        self.rules.len() - 1
    }

    /// Rule count.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule with id `id`.
    pub fn get(&self, id: usize) -> &RewriteRule {
        &self.rules[id]
    }

    /// Looks a rule up by name (hashed; duplicates resolve to the first
    /// occurrence, matching the historical linear scan).
    pub fn by_name(&self, name: &str) -> Option<(usize, &RewriteRule)> {
        self.name_index.get(name).map(|&id| (id, &self.rules[id]))
    }

    /// Iterates `(id, rule)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &RewriteRule)> {
        self.rules.iter().enumerate()
    }

    /// The compiled match automaton over every rule's pattern.
    pub fn automaton(&self) -> &Arc<MatchAutomaton> {
        &self.automaton
    }

    /// Ids of rules whose root `Match` carries `label` — the per-rule
    /// fallback path iterates this bucket (plus
    /// [`Self::wildcard_rooted`]) for a candidate node instead of
    /// scanning all R rules.
    pub fn rules_by_root_label(&self, label: Label) -> &[usize] {
        self.by_root_label.get(&label).map_or(&[], Vec::as_slice)
    }

    /// Ids of rules whose root is a wildcard (candidates at every node).
    pub fn wildcard_rooted(&self) -> &[usize] {
        &self.wildcard_rooted
    }

    /// Cached [`RewriteRule::safe_for_inline`] bits, dense by rule id —
    /// engines sharing one `Arc<RuleSet>` across thousands of shards
    /// read this instead of re-deriving the classification per shard.
    pub fn inlineable(&self) -> &[bool] {
        &self.inlineable
    }
}

/// True if the pattern position bound by `ancestor` strictly contains the
/// position bound by `descendant`.
fn var_contains(pattern: &Pattern, ancestor: VarId, descendant: VarId) -> bool {
    fn position_of(node: &PatternNode, var: VarId) -> Option<&PatternNode> {
        match node {
            PatternNode::Any { var: v } => (*v == Some(var)).then_some(node),
            PatternNode::Match {
                var: v, children, ..
            } => {
                if *v == var {
                    Some(node)
                } else {
                    children.iter().find_map(|c| position_of(c, var))
                }
            }
        }
    }
    fn binds(node: &PatternNode, var: VarId) -> bool {
        match node {
            PatternNode::Any { var: v } => *v == Some(var),
            PatternNode::Match {
                var: v, children, ..
            } => *v == var || children.iter().any(|c| binds(c, var)),
        }
    }
    let Some(anc) = position_of(pattern.root(), ancestor) else {
        return false;
    };
    match anc {
        PatternNode::Any { .. } => false,
        PatternNode::Match { children, .. } => children.iter().any(|c| binds(c, descendant)),
    }
}

/// Match positions not covered by any reused position (a position is
/// covered if it or one of its pattern ancestors is reused).
fn compute_removed_vars(pattern: &Pattern, reused: &[VarId]) -> Vec<VarId> {
    fn go(node: &PatternNode, reused: &[VarId], covered: bool, out: &mut Vec<VarId>) {
        match node {
            PatternNode::Any { .. } => {}
            PatternNode::Match { var, children, .. } => {
                let covered = covered || reused.contains(var);
                if !covered {
                    out.push(*var);
                }
                for c in children {
                    go(c, reused, covered, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    go(pattern.root(), reused, false, &mut out);
    out
}

/// Definition 7: the generator is safe iff it reuses exactly the wildcard
/// matches of the pattern. Operationally: every `AnyNode` position must be
/// reused itself (which requires it to be named) or sit under a reused
/// position — otherwise an application drops a subtree of statically
/// unknown shape, and the inlined plan could miss view updates inside it.
fn all_wildcards_covered(pattern: &Pattern, reused: &[VarId]) -> bool {
    fn go(node: &PatternNode, reused: &[VarId], covered: bool) -> bool {
        match node {
            PatternNode::Any { var } => {
                covered || var.map(|v| reused.contains(&v)).unwrap_or(false)
            }
            PatternNode::Match { var, children, .. } => {
                let covered = covered || reused.contains(var);
                children.iter().all(|c| go(c, reused, covered))
            }
        }
    }
    go(pattern.root(), reused, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{acopy, gen, reuse};
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::{parse_sexpr, to_sexpr};
    use tt_pattern::dsl as p;
    use tt_pattern::match_node;

    fn schema() -> Arc<Schema> {
        arith_schema()
    }

    /// Example 2.2 as a declarative rule: Arith(+, Const(0), Var) → Var.
    fn add_zero_rule() -> RewriteRule {
        let s = schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        );
        RewriteRule::new("AddZero", &s, pattern, reuse("C"))
    }

    #[test]
    fn apply_example_2_2() {
        let rule = add_zero_rule();
        let mut ast = Ast::new(schema());
        let root = parse_sexpr(
            &mut ast,
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#,
        )
        .unwrap();
        ast.set_root(root);
        let site = ast.children(root)[0];
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        let applied = rule.apply(&mut ast, site, &bindings, 0);

        assert_eq!(
            to_sexpr(&ast, ast.root()),
            r#"(Arith op="*" (Var name="b") (Var name="x"))"#
        );
        assert_eq!(applied.inserted().len(), 0, "pure-reuse generator");
        // Freed: the Arith(+) and the Const(0); the Var was reused.
        assert_eq!(applied.removed.len(), 2);
        // Parent's child pointer changed: update reported.
        let (_, old_row, new_row) = applied.parent_update.as_ref().unwrap();
        assert_eq!(old_row.children[0], applied.old_root);
        assert_eq!(new_row.children[0], applied.new_root);
        ast.validate().unwrap();
        assert_eq!(ast.live_count(), 3);
    }

    #[test]
    fn apply_at_root_has_no_parent_update() {
        let rule = add_zero_rule();
        let mut ast = Ast::new(schema());
        let root = parse_sexpr(&mut ast, r#"(Arith op="+" (Const val=0) (Var name="b"))"#).unwrap();
        ast.set_root(root);
        let bindings = match_node(&ast, root, &rule.pattern).unwrap();
        let applied = rule.apply(&mut ast, root, &bindings, 0);
        assert!(applied.parent_update.is_none());
        assert_eq!(ast.root(), applied.new_root);
        assert_eq!(to_sexpr(&ast, ast.root()), r#"(Var name="b")"#);
        ast.validate().unwrap();
    }

    #[test]
    fn generated_subtree_reports_inserted_nodes() {
        // Rewrite Arith(+, Const(0), Var) → Arith(*, Const(1), Reuse(C)).
        let s = schema();
        let pattern = add_zero_rule().pattern;
        let rule = RewriteRule::new(
            "Rebuild",
            &s,
            pattern,
            gen(
                "Arith",
                [("op", crate::generator::aconst(tt_ast::Value::str("*")))],
                [
                    gen(
                        "Const",
                        [("val", crate::generator::aconst(tt_ast::Value::Int(1)))],
                        [],
                    ),
                    reuse("C"),
                ],
            ),
        );
        let mut ast = Ast::new(s);
        let root = parse_sexpr(&mut ast, r#"(Arith op="+" (Const val=0) (Var name="b"))"#).unwrap();
        ast.set_root(root);
        let bindings = match_node(&ast, root, &rule.pattern).unwrap();
        let applied = rule.apply(&mut ast, root, &bindings, 0);
        assert_eq!(applied.inserted().len(), 2);
        assert_eq!(applied.gen_nodes[0], applied.new_root);
        assert_eq!(applied.removed.len(), 2);
        assert_eq!(
            to_sexpr(&ast, ast.root()),
            r#"(Arith op="*" (Const val=1) (Var name="b"))"#
        );
    }

    #[test]
    fn removed_vars_exclude_reused_positions() {
        let rule = add_zero_rule();
        let p_ = &rule.pattern;
        // A and B are destroyed; C is reused.
        assert_eq!(
            rule.removed_vars(),
            &[p_.var("A").unwrap(), p_.var("B").unwrap()]
        );
    }

    #[test]
    fn safety_classification() {
        let s = schema();
        // No wildcards at all → trivially safe.
        assert!(add_zero_rule().safe_for_inline());

        // A named wildcard that is reused → safe.
        let pat = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [p::any_as("q"), p::node("Var", "V", [], p::tru())],
                p::tru(),
            ),
        );
        let safe = RewriteRule::new("Safe", &s, pat.clone(), reuse("q"));
        assert!(safe.safe_for_inline());

        // A wildcard that is dropped → unsafe (falls back to generic path).
        let unsafe_rule = RewriteRule::new("Drop", &s, pat, reuse("V"));
        assert!(!unsafe_rule.safe_for_inline());
    }

    #[test]
    #[should_panic(expected = "cannot reuse the pattern root")]
    fn root_reuse_rejected() {
        let s = schema();
        let pat = Pattern::compile(&s, p::node("Const", "B", [], p::tru()));
        let _ = RewriteRule::new("Bad", &s, pat, reuse("B"));
    }

    #[test]
    #[should_panic(expected = "reused twice")]
    fn double_reuse_rejected() {
        let s = schema();
        let pat = Pattern::compile(
            &s,
            p::node("Arith", "A", [p::any_as("q"), p::any()], p::tru()),
        );
        let _ = RewriteRule::new(
            "Bad",
            &s,
            pat,
            gen(
                "Arith",
                [("op", acopy("A", "op"))],
                [reuse("q"), reuse("q")],
            ),
        );
    }

    #[test]
    #[should_panic(expected = "nests another reused position")]
    fn nested_reuse_rejected() {
        let s = schema();
        // B (a Match child) contains wildcard q below it.
        let pat = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Arith", "B", [p::any_as("q"), p::any()], p::tru()),
                    p::any(),
                ],
                p::tru(),
            ),
        );
        let _ = RewriteRule::new(
            "Bad",
            &s,
            pat,
            gen(
                "Arith",
                [("op", acopy("A", "op"))],
                [reuse("B"), reuse("q")],
            ),
        );
    }

    #[test]
    fn ruleset_lookup() {
        let mut rs = RuleSet::new();
        let id = rs.push(add_zero_rule());
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(id).name, "AddZero");
        assert_eq!(rs.by_name("AddZero").unwrap().0, id);
        assert!(rs.by_name("Missing").is_none());
    }

    #[test]
    fn ruleset_derived_indexes_cover_every_rule() {
        let s = schema();
        let wildcard = RewriteRule::new(
            "AnyRoot",
            &s,
            Pattern::compile(
                &s,
                p::node("Arith", "A", [p::any_as("q"), p::any()], p::tru()),
            ),
            reuse("q"),
        );
        let anywhere = RewriteRule::new(
            "Anywhere",
            &s,
            Pattern::compile(&s, p::any_as("n")),
            // A root `Any` cannot be reused, so generate a fresh leaf.
            gen(
                "Const",
                [("val", crate::generator::aconst(tt_ast::Value::Int(0)))],
                [],
            ),
        );
        let rs = RuleSet::from_rules(vec![add_zero_rule(), wildcard, anywhere]);

        // Root-label buckets: both Arith-rooted rules, in id order.
        let arith = s.expect_label("Arith");
        assert_eq!(rs.rules_by_root_label(arith), &[0, 1]);
        assert!(rs.rules_by_root_label(s.expect_label("Const")).is_empty());
        // The Any-rooted rule matches every label, so it lives in the
        // wildcard bucket consulted for all roots.
        assert_eq!(rs.wildcard_rooted(), &[2]);

        // Cached safety bits agree with the per-rule recomputation.
        let bits: Vec<bool> = rs.iter().map(|(_, r)| r.safe_for_inline()).collect();
        assert_eq!(rs.inlineable(), &bits[..]);

        // The compiled automaton covers the whole set, and `push`
        // rebuilds every derived index.
        assert_eq!(rs.automaton().rule_count(), 3);
        let mut rs = rs;
        let id = rs.push(add_zero_rule());
        assert_eq!(rs.rules_by_root_label(arith), &[0, 1, id]);
        assert_eq!(rs.automaton().rule_count(), 4);
        // First pushed name wins duplicate lookups.
        assert_eq!(rs.by_name("AddZero").unwrap().0, 0);
    }
}
