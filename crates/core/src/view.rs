//! The per-pattern materialized view.
//!
//! §4 states the goal: "given some q_k, obtain a single, arbitrary element
//! of the set q_k(N) as quickly as possible". A view is a generalized
//! multiset (Definition 4 maps matches to multiplicity 1) — here stored as
//! a dense member vector plus a page-backed [`NodeMap`] carrying, per
//! node, its multiplicity and its position in the member list, so:
//!
//! - `any()` (one arbitrary eligible node) is O(1),
//! - membership updates are O(1) direct-indexed stores (`swap_remove` on
//!   the member list, no hashing — see `tt_ast::dense`),
//! - memory is a few machine words per *match* (plus the pages the
//!   matches fall in), not per AST node — the paper's "negligible memory
//!   overhead" quadrant in Figure 2.
//!
//! Multiplicities other than 0/1 can occur transiently while a delta is
//! being applied; the member list tracks the positive support.

use tt_ast::{NodeId, NodeMap};

/// Sentinel position for slots whose node is not currently a member
/// (zero-crossing multiplicities keep a slot without a member position).
const NOT_MEMBER: u32 = u32::MAX;

/// Per-node view state: signed multiplicity plus the member-list index
/// (valid iff `count > 0`).
#[derive(Debug, Clone, Copy)]
struct ViewSlot {
    count: i64,
    pos: u32,
}

/// A maintained view over one pattern: the multiset of matching nodes.
#[derive(Debug, Default)]
pub struct MatchView {
    /// Dense per-node state (non-zero multiplicities only).
    slots: NodeMap<ViewSlot>,
    /// Dense list of nodes with positive multiplicity.
    members: Vec<NodeId>,
}

impl MatchView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current multiplicity of `node`.
    #[inline]
    pub fn count(&self, node: NodeId) -> i64 {
        self.slots.get(node).map_or(0, |s| s.count)
    }

    /// True if `node` is currently in the view (positive multiplicity).
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.count(node) > 0
    }

    /// Number of members (positive-multiplicity nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if no node currently matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// One arbitrary eligible node — the §4 fast path. O(1).
    #[inline]
    pub fn any(&self) -> Option<NodeId> {
        self.members.last().copied()
    }

    /// Iterates current members (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Adds `delta` to `node`'s multiplicity (Algorithm 2's
    /// `View ⊕ {| N → Δ(N) |}`), keeping the member list in sync as the
    /// multiplicity crosses zero. In steady state (the node's page
    /// already allocated, the member vector at capacity) this performs
    /// no heap allocation.
    pub fn add(&mut self, node: NodeId, delta: i64) {
        if delta == 0 {
            return;
        }
        let slot = self.slots.get_or_insert_with(node, || ViewSlot {
            count: 0,
            pos: NOT_MEMBER,
        });
        let old = slot.count;
        let new = old + delta;
        slot.count = new;
        match (old > 0, new > 0) {
            (false, true) => {
                slot.pos = self.members.len() as u32;
                self.members.push(node);
            }
            (true, false) => {
                debug_assert_ne!(slot.pos, NOT_MEMBER, "member without position");
                let at = slot.pos as usize;
                slot.pos = NOT_MEMBER;
                if new == 0 {
                    self.slots.remove(node);
                }
                self.members.swap_remove(at);
                if let Some(&moved) = self.members.get(at) {
                    self.slots.get_mut(moved).expect("member has a slot").pos = at as u32;
                }
            }
            _ => {
                if new == 0 {
                    self.slots.remove(node);
                }
            }
        }
    }

    /// Applies a batch of net multiplicity deltas in one pass — the
    /// commit side of epoch maintenance (see
    /// [`DeltaBuffer`](crate::batch::DeltaBuffer)). Deltas arriving here
    /// have already been coalesced, so every item touches the slot map
    /// at most once.
    pub fn apply_delta<I>(&mut self, deltas: I)
    where
        I: IntoIterator<Item = (NodeId, i64)>,
    {
        for (node, delta) in deltas {
            self.add(node, delta);
        }
    }

    /// Removes everything (pages stay allocated for reuse).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.members.clear();
    }

    /// Debug invariant: every multiplicity is exactly 1 and agrees with
    /// the member list (Definition 4's view correctness implies 0/1
    /// multiplicities between maintenance operations).
    pub fn check_consistent(&self) -> Result<(), String> {
        if self.slots.len() != self.members.len() {
            return Err(format!(
                "slot map has {} entries, member list {}",
                self.slots.len(),
                self.members.len()
            ));
        }
        for (n, slot) in self.slots.iter() {
            if slot.count != 1 {
                return Err(format!("{n:?} has multiplicity {}, expected 1", slot.count));
            }
            if slot.pos == NOT_MEMBER {
                return Err(format!("{n:?} missing from position map"));
            }
            if self.members.get(slot.pos as usize) != Some(&n) {
                return Err(format!("{n:?} position map out of sync"));
            }
        }
        Ok(())
    }

    /// Approximate heap bytes — the entire memory cost TreeToaster adds
    /// on top of the compiler's own AST. Allocated (even vacant) pages
    /// are charged in full; see `tt_ast::dense` on the tradeoff.
    pub fn memory_bytes(&self) -> usize {
        self.slots.memory_bytes() + self.members.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// An ordered alternative to [`MatchView`] backed by a `BTreeSet`,
/// for the view-structure ablation (DESIGN.md §8): `any()` returns the
/// *smallest* matching node id deterministically, at O(log n) update and
/// pop cost instead of O(1). The paper's §4 goal only asks for "a single,
/// arbitrary element ... as quickly as possible", which the swap-remove
/// view satisfies; this variant quantifies what ordering would cost.
///
/// API parity with [`MatchView`] (`iter`, `clear`, `apply_delta`,
/// `check_consistent`) lets the batched-mode ablations swap either view
/// structure under the same driver.
#[derive(Debug, Default)]
pub struct OrderedMatchView {
    counts: NodeMap<i64>,
    members: std::collections::BTreeSet<NodeId>,
}

impl OrderedMatchView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current multiplicity.
    pub fn count(&self, node: NodeId) -> i64 {
        self.counts.get(node).copied().unwrap_or(0)
    }

    /// True if in the view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.count(node) > 0
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The smallest matching node (deterministic, O(log n)).
    pub fn any(&self) -> Option<NodeId> {
        self.members.first().copied()
    }

    /// Iterates current members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// Adds `delta` to the multiplicity.
    pub fn add(&mut self, node: NodeId, delta: i64) {
        if delta == 0 {
            return;
        }
        let entry = self.counts.get_or_insert_with(node, || 0);
        let old = *entry;
        let new = old + delta;
        *entry = new;
        if new == 0 {
            self.counts.remove(node);
        }
        match (old > 0, new > 0) {
            (false, true) => {
                self.members.insert(node);
            }
            (true, false) => {
                self.members.remove(&node);
            }
            _ => {}
        }
    }

    /// Applies a batch of coalesced net deltas (epoch commit).
    pub fn apply_delta<I>(&mut self, deltas: I)
    where
        I: IntoIterator<Item = (NodeId, i64)>,
    {
        for (node, delta) in deltas {
            self.add(node, delta);
        }
    }

    /// Removes everything (pages stay allocated for reuse).
    pub fn clear(&mut self) {
        self.counts.clear();
        self.members.clear();
    }

    /// Debug invariant, mirroring [`MatchView::check_consistent`].
    pub fn check_consistent(&self) -> Result<(), String> {
        if self.counts.len() != self.members.len() {
            return Err(format!(
                "count map has {} entries, member set {}",
                self.counts.len(),
                self.members.len()
            ));
        }
        for (n, &c) in self.counts.iter() {
            if c != 1 {
                return Err(format!("{n:?} has multiplicity {c}, expected 1"));
            }
            if !self.members.contains(&n) {
                return Err(format!("{n:?} missing from member set"));
            }
        }
        Ok(())
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counts.memory_bytes()
            // BTreeSet nodes: ~B·(key + pointers) amortized; charge 3 words
            // per member as a conservative stand-in.
            + self.members.len() * 3 * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn ordered_view_pops_smallest() {
        let mut v = OrderedMatchView::new();
        v.add(n(5), 1);
        v.add(n(2), 1);
        v.add(n(9), 1);
        assert_eq!(v.any(), Some(n(2)));
        v.add(n(2), -1);
        assert_eq!(v.any(), Some(n(5)));
        assert_eq!(v.len(), 2);
        assert!(v.contains(n(9)));
        assert!(!v.is_empty());
        v.check_consistent().unwrap();
    }

    #[test]
    fn ordered_view_handles_transient_negatives() {
        let mut v = OrderedMatchView::new();
        v.add(n(3), -1);
        assert_eq!(v.any(), None);
        v.add(n(3), 2);
        assert_eq!(v.any(), Some(n(3)));
        v.check_consistent().unwrap();
    }

    #[test]
    fn ordered_view_parity_iter_clear_apply_delta() {
        let mut v = OrderedMatchView::new();
        v.add(n(4), 1);
        v.apply_delta([(n(1), 1), (n(7), 1), (n(4), -1), (n(2), 1)]);
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            vec![n(1), n(2), n(7)],
            "ordered iteration"
        );
        v.check_consistent().unwrap();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.count(n(1)), 0);
        assert_eq!(v.iter().count(), 0);
        v.check_consistent().unwrap();
    }

    #[test]
    fn ordered_view_consistency_detects_double_count() {
        let mut v = OrderedMatchView::new();
        v.add(n(1), 2);
        assert!(v.check_consistent().is_err());
    }

    /// Both view structures, driven by the same delta stream, must agree
    /// on membership (the batched-mode ablation's correctness premise).
    #[test]
    fn ordered_and_swap_remove_views_agree() {
        let mut ordered = OrderedMatchView::new();
        let mut swap = MatchView::new();
        let deltas: Vec<(NodeId, i64)> = (0..200u32)
            .map(|i| (n(i * 7 % 64), if i % 3 == 0 { -1 } else { 1 }))
            .collect();
        for &(node, d) in &deltas {
            ordered.add(node, d);
            swap.add(node, d);
        }
        assert_eq!(ordered.len(), swap.len());
        for i in 0..64 {
            assert_eq!(ordered.contains(n(i)), swap.contains(n(i)), "node {i}");
            assert_eq!(ordered.count(n(i)), swap.count(n(i)), "node {i}");
        }
    }

    #[test]
    fn empty_view() {
        let v = MatchView::new();
        assert!(v.is_empty());
        assert_eq!(v.any(), None);
        assert_eq!(v.count(n(1)), 0);
        v.check_consistent().unwrap();
    }

    #[test]
    fn add_and_remove_members() {
        let mut v = MatchView::new();
        v.add(n(1), 1);
        v.add(n(2), 1);
        assert_eq!(v.len(), 2);
        assert!(v.contains(n(1)));
        assert!(v.any().is_some());
        v.add(n(1), -1);
        assert!(!v.contains(n(1)));
        assert_eq!(v.len(), 1);
        assert_eq!(v.any(), Some(n(2)));
        v.check_consistent().unwrap();
    }

    #[test]
    fn transient_negative_then_recover() {
        // A maintenance pass may subtract before it adds.
        let mut v = MatchView::new();
        v.add(n(5), -1);
        assert_eq!(v.count(n(5)), -1);
        assert!(!v.contains(n(5)), "negative multiplicity is not membership");
        assert_eq!(v.len(), 0);
        v.add(n(5), 2);
        assert_eq!(v.count(n(5)), 1);
        assert!(v.contains(n(5)));
        v.check_consistent().unwrap();
    }

    #[test]
    fn swap_remove_order_stability() {
        let mut v = MatchView::new();
        for i in 0..100 {
            v.add(n(i), 1);
        }
        // Remove every third element; membership of the rest must hold.
        for i in (0..100).step_by(3) {
            v.add(n(i), -1);
        }
        for i in 0..100 {
            assert_eq!(v.contains(n(i)), i % 3 != 0);
        }
        assert_eq!(v.len(), 66);
        v.check_consistent().unwrap();
    }

    #[test]
    fn any_returns_live_member() {
        let mut v = MatchView::new();
        v.add(n(1), 1);
        v.add(n(2), 1);
        v.add(n(3), 1);
        let got = v.any().unwrap();
        assert!(v.contains(got));
        v.add(got, -1);
        let got2 = v.any().unwrap();
        assert_ne!(got, got2);
        assert!(v.contains(got2));
    }

    #[test]
    fn clear_resets() {
        let mut v = MatchView::new();
        v.add(n(1), 1);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.count(n(1)), 0);
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut v = MatchView::new();
        v.add(n(1), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn members_spread_across_pages() {
        // Ids far apart exercise lazy page allocation and the moved-member
        // position fixup across pages.
        let mut v = MatchView::new();
        for i in [3u32, 1000, 70_000, 5, 260] {
            v.add(n(i), 1);
        }
        assert_eq!(v.len(), 5);
        v.check_consistent().unwrap();
        v.add(n(1000), -1);
        v.add(n(3), -1);
        assert_eq!(v.len(), 3);
        assert!(v.contains(n(70_000)));
        v.check_consistent().unwrap();
    }

    #[test]
    fn apply_delta_bulk_matches_sequential_adds() {
        let mut bulk = MatchView::new();
        let mut seq = MatchView::new();
        seq.add(n(1), 1);
        seq.add(n(2), 1);
        seq.add(n(1), -1);
        seq.add(n(3), 1);
        bulk.add(n(1), 1);
        bulk.apply_delta([(n(2), 1), (n(1), -1), (n(3), 1)]);
        assert_eq!(bulk.len(), seq.len());
        for i in 1..=3 {
            assert_eq!(bulk.contains(n(i)), seq.contains(n(i)));
        }
        bulk.check_consistent().unwrap();
    }

    #[test]
    fn consistency_detects_double_count() {
        let mut v = MatchView::new();
        v.add(n(1), 2);
        assert!(v.check_consistent().is_err());
    }
}
