//! The declarative node-generator grammar (paper §6):
//!
//! ```text
//! G : Gen(ℓ, atom…, G…) | Reuse(Σ_I)
//! ```
//!
//! A `Gen` term creates a new node with the given label, attributes, and
//! children; attribute values are populated from the match's attribute
//! scope `Γ`. A `Reuse` term re-attaches a subtree of the previous AST,
//! looked up through the node scope `µ` (our match [`Bindings`]).
//!
//! Every `Gen` node carries a dense preorder index so the inlined
//! maintenance plan (Algorithm 3) can refer to generated positions and the
//! evaluator can report which [`NodeId`] each position produced.

use std::fmt;
use std::sync::Arc;
use tt_ast::{Ast, AttrName, Label, NodeId, Schema, Value};
use tt_pattern::{Bindings, Pattern, VarId};

/// Dense preorder index of a `Gen` node within its generator.
pub type GenPath = usize;

/// Context available to computed attribute values.
pub struct GenCtx<'a> {
    /// The AST (pre-replacement state; the matched subtree is intact).
    pub ast: &'a Ast,
    /// The match bindings `Γ` / `µ`.
    pub bindings: &'a Bindings,
    /// A monotonically increasing counter from the runtime; rules that
    /// need pseudo-randomness (e.g. CrackArray's pivot) derive it from
    /// here so runs stay reproducible.
    pub tick: u64,
}

/// How one generated attribute obtains its value.
#[derive(Clone)]
pub enum AttrGen {
    /// A literal.
    Const(Value),
    /// Copy `var.attr` from the matched nodes (an `a(Γ)` atom).
    Copy(VarId, AttrName),
    /// A named native computation (e.g. partitioning an array around a
    /// pivot) — the paper's rules compute `{x | x.key < sep}` etc.
    Compute(&'static str, Arc<dyn Fn(&GenCtx) -> Value + Send + Sync>),
}

impl fmt::Debug for AttrGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrGen::Const(v) => write!(f, "const({v})"),
            AttrGen::Copy(var, attr) => write!(f, "copy(v{}.a{})", var.0, attr.0),
            AttrGen::Compute(name, _) => write!(f, "compute({name})"),
        }
    }
}

impl AttrGen {
    fn eval(&self, ctx: &GenCtx<'_>) -> Value {
        match self {
            AttrGen::Const(v) => v.clone(),
            AttrGen::Copy(var, attr) => ctx.ast.attr(ctx.bindings.get(*var), *attr).clone(),
            AttrGen::Compute(_, f) => f(ctx),
        }
    }
}

/// A compiled generator tree.
#[derive(Debug, Clone)]
pub enum GenNode {
    /// Create a new node.
    Gen {
        /// Preorder index among the generator's `Gen` nodes.
        index: u32,
        /// Label of the created node.
        label: Label,
        /// Attribute generators in schema storage order.
        attrs: Vec<AttrGen>,
        /// Child generators.
        children: Vec<GenNode>,
    },
    /// Re-attach the subtree bound to this pattern variable.
    Reuse(VarId),
}

impl GenNode {
    /// Number of `Gen` nodes (dense index bound).
    pub fn gen_count(&self) -> usize {
        match self {
            GenNode::Reuse(_) => 0,
            GenNode::Gen { children, .. } => {
                1 + children.iter().map(GenNode::gen_count).sum::<usize>()
            }
        }
    }

    /// All `Reuse` variables, in preorder.
    pub fn reused_vars(&self) -> Vec<VarId> {
        fn go(g: &GenNode, out: &mut Vec<VarId>) {
            match g {
                GenNode::Reuse(v) => out.push(*v),
                GenNode::Gen { children, .. } => {
                    for c in children {
                        go(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Evaluates `⟦g⟧Γ,µ`: builds the replacement subtree (detached),
    /// detaching reused subtrees from their current positions. Fills
    /// `gen_nodes[i]` with the node produced by the `Gen` node of index
    /// `i`. Returns the new subtree root.
    pub fn eval(
        &self,
        ast: &mut Ast,
        bindings: &Bindings,
        tick: u64,
        gen_nodes: &mut [NodeId],
    ) -> NodeId {
        match self {
            GenNode::Reuse(var) => {
                let node = bindings.get(*var);
                ast.detach(node);
                node
            }
            GenNode::Gen {
                index,
                label,
                attrs,
                children,
            } => {
                // Attributes first (they read the pre-state AST), then
                // children (which may detach reused subtrees).
                let values: Vec<Value> = {
                    let ctx = GenCtx {
                        ast,
                        bindings,
                        tick,
                    };
                    attrs.iter().map(|a| a.eval(&ctx)).collect()
                };
                let child_ids: Vec<NodeId> = children
                    .iter()
                    .map(|c| c.eval(ast, bindings, tick, gen_nodes))
                    .collect();
                let id = ast.alloc(*label, values, child_ids);
                gen_nodes[*index as usize] = id;
                id
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Authoring DSL
// ---------------------------------------------------------------------------

/// Un-compiled generator spec (string labels / variables / attributes).
#[derive(Clone)]
pub enum GenSpec {
    /// Create a node: label, named attribute generators, children.
    Gen {
        /// Label name.
        label: String,
        /// `(attribute name, generator)` pairs; every schema-declared
        /// attribute of the label must appear exactly once.
        attrs: Vec<(String, AttrSpec)>,
        /// Child generator specs.
        children: Vec<GenSpec>,
    },
    /// Reuse the subtree bound to this pattern variable name.
    Reuse(String),
}

impl fmt::Debug for GenSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenSpec::Gen {
                label, children, ..
            } => {
                write!(f, "Gen({label}, …, {} children)", children.len())
            }
            GenSpec::Reuse(v) => write!(f, "Reuse({v})"),
        }
    }
}

/// Un-compiled attribute generator.
#[derive(Clone)]
pub enum AttrSpec {
    /// Literal.
    Const(Value),
    /// Copy `var.attr`.
    Copy(String, String),
    /// Named computation.
    Compute(&'static str, Arc<dyn Fn(&GenCtx) -> Value + Send + Sync>),
}

/// `Gen(label, attrs, children)`.
pub fn gen(
    label: &str,
    attrs: impl IntoIterator<Item = (&'static str, AttrSpec)>,
    children: impl IntoIterator<Item = GenSpec>,
) -> GenSpec {
    GenSpec::Gen {
        label: label.to_string(),
        attrs: attrs.into_iter().map(|(n, a)| (n.to_string(), a)).collect(),
        children: children.into_iter().collect(),
    }
}

/// `Reuse(var)`.
pub fn reuse(var: &str) -> GenSpec {
    GenSpec::Reuse(var.to_string())
}

/// Literal attribute value.
pub fn aconst(v: Value) -> AttrSpec {
    AttrSpec::Const(v)
}

/// Copy an attribute from a matched node.
pub fn acopy(var: &str, attr: &str) -> AttrSpec {
    AttrSpec::Copy(var.to_string(), attr.to_string())
}

/// Named computed attribute.
pub fn acompute(
    name: &'static str,
    f: impl Fn(&GenCtx) -> Value + Send + Sync + 'static,
) -> AttrSpec {
    AttrSpec::Compute(name, Arc::new(f))
}

/// Compiles a [`GenSpec`] against a pattern's variable table and schema.
/// Panics on unknown labels/attributes/variables, missing or duplicate
/// attributes, or over-long child lists — all rule-authoring errors.
pub fn compile_generator(schema: &Arc<Schema>, pattern: &Pattern, spec: GenSpec) -> GenNode {
    let mut next_index = 0u32;
    compile_rec(schema, pattern, spec, &mut next_index)
}

fn compile_rec(
    schema: &Arc<Schema>,
    pattern: &Pattern,
    spec: GenSpec,
    next_index: &mut u32,
) -> GenNode {
    match spec {
        GenSpec::Reuse(var) => {
            let var_id = pattern
                .var(&var)
                .unwrap_or_else(|| panic!("generator reuses unbound variable {var:?}"));
            GenNode::Reuse(var_id)
        }
        GenSpec::Gen {
            label,
            attrs,
            children,
        } => {
            let label_id = schema.expect_label(&label);
            let def = schema.def(label_id);
            let mut compiled_attrs: Vec<Option<AttrGen>> = vec![None; def.attrs.len()];
            for (name, a) in attrs {
                let attr_id = schema.expect_attr(&name);
                let idx = schema
                    .attr_index(label_id, attr_id)
                    .unwrap_or_else(|| panic!("label {label} has no attribute {name}"));
                assert!(
                    compiled_attrs[idx].is_none(),
                    "generator sets attribute {name} twice"
                );
                compiled_attrs[idx] = Some(match a {
                    AttrSpec::Const(v) => AttrGen::Const(v),
                    AttrSpec::Copy(var, attr) => {
                        let var_id = pattern.var(&var).unwrap_or_else(|| {
                            panic!("generator copies from unbound variable {var:?}")
                        });
                        AttrGen::Copy(var_id, schema.expect_attr(&attr))
                    }
                    AttrSpec::Compute(name, f) => AttrGen::Compute(name, f),
                });
            }
            let attrs: Vec<AttrGen> = compiled_attrs
                .into_iter()
                .enumerate()
                .map(|(i, a)| {
                    a.unwrap_or_else(|| {
                        panic!(
                            "generator for {label} missing attribute {}",
                            schema.attr_name(def.attrs[i])
                        )
                    })
                })
                .collect();
            assert!(
                children.len() <= def.max_children,
                "generator for {label} lists too many children"
            );
            let index = *next_index;
            *next_index += 1;
            let children = children
                .into_iter()
                .map(|c| compile_rec(schema, pattern, c, next_index))
                .collect();
            GenNode::Gen {
                index,
                label: label_id,
                attrs,
                children,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::{parse_sexpr, to_sexpr};
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    fn add_zero_pattern() -> Pattern {
        let schema = arith_schema();
        Pattern::compile(
            &schema,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        )
    }

    #[test]
    fn compile_and_eval_reuse_generator() {
        // Example 2.2: replace the whole match by the Var child.
        let schema = arith_schema();
        let pat = add_zero_pattern();
        let g = compile_generator(&schema, &pat, reuse("C"));
        assert_eq!(g.gen_count(), 0);
        assert_eq!(g.reused_vars(), vec![pat.var("C").unwrap()]);

        let mut ast = Ast::new(schema);
        let root = parse_sexpr(&mut ast, r#"(Arith op="+" (Const val=0) (Var name="b"))"#).unwrap();
        ast.set_root(root);
        let bindings = match_node(&ast, root, &pat).unwrap();
        let mut gen_nodes = vec![];
        let new_root = g.eval(&mut ast, &bindings, 0, &mut gen_nodes);
        assert_eq!(new_root, bindings.get(pat.var("C").unwrap()));
        assert!(ast.parent(new_root).is_null(), "reused node is detached");
    }

    #[test]
    fn compile_and_eval_gen_with_copy_and_const() {
        // Rebuild: Arith(op=*) over Const(val=B.val) and Reuse(C).
        let schema = arith_schema();
        let pat = add_zero_pattern();
        let g = compile_generator(
            &schema,
            &pat,
            gen(
                "Arith",
                [("op", aconst(Value::str("*")))],
                [gen("Const", [("val", acopy("B", "val"))], []), reuse("C")],
            ),
        );
        assert_eq!(g.gen_count(), 2);
        let mut ast = Ast::new(schema);
        let root = parse_sexpr(&mut ast, r#"(Arith op="+" (Const val=0) (Var name="b"))"#).unwrap();
        ast.set_root(root);
        let bindings = match_node(&ast, root, &pat).unwrap();
        let mut gen_nodes = vec![NodeId::NULL; 2];
        let new_root = g.eval(&mut ast, &bindings, 0, &mut gen_nodes);
        assert_eq!(gen_nodes[0], new_root, "preorder index 0 is the root Gen");
        assert_eq!(
            to_sexpr(&ast, new_root),
            r#"(Arith op="*" (Const val=0) (Var name="b"))"#
        );
    }

    #[test]
    fn compute_attr_sees_bindings_and_tick() {
        let schema = arith_schema();
        let pat = add_zero_pattern();
        let g = compile_generator(
            &schema,
            &pat,
            gen(
                "Const",
                [(
                    "val",
                    acompute("tick+val", |ctx: &GenCtx| {
                        let b = ctx.bindings;
                        // B.val (=0) plus the tick.
                        let pat_var = tt_pattern::VarId(1); // B
                        let val_attr = ctx.ast.schema().expect_attr("val");
                        Value::Int(
                            ctx.ast.attr(b.get(pat_var), val_attr).as_int() + ctx.tick as i64,
                        )
                    }),
                )],
                [],
            ),
        );
        let mut ast = Ast::new(schema);
        let root = parse_sexpr(&mut ast, r#"(Arith op="+" (Const val=0) (Var name="b"))"#).unwrap();
        ast.set_root(root);
        let bindings = match_node(&ast, root, &pat).unwrap();
        let mut gen_nodes = vec![NodeId::NULL; 1];
        let out = g.eval(&mut ast, &bindings, 41, &mut gen_nodes);
        let val = ast.schema().expect_attr("val");
        assert_eq!(ast.attr(out, val).as_int(), 41);
    }

    #[test]
    #[should_panic(expected = "missing attribute")]
    fn missing_attr_rejected() {
        let schema = arith_schema();
        let pat = add_zero_pattern();
        let _ = compile_generator(&schema, &pat, gen("Const", [], []));
    }

    #[test]
    #[should_panic(expected = "sets attribute op twice")]
    fn duplicate_attr_rejected() {
        let schema = arith_schema();
        let pat = add_zero_pattern();
        let _ = compile_generator(
            &schema,
            &pat,
            gen(
                "Arith",
                [
                    ("op", aconst(Value::str("+"))),
                    ("op", aconst(Value::str("*"))),
                ],
                [],
            ),
        );
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn reuse_of_unknown_var_rejected() {
        let schema = arith_schema();
        let pat = add_zero_pattern();
        let _ = compile_generator(&schema, &pat, reuse("Z"));
    }

    #[test]
    #[should_panic(expected = "too many children")]
    fn overlong_children_rejected() {
        let schema = arith_schema();
        let pat = add_zero_pattern();
        let _ = compile_generator(
            &schema,
            &pat,
            gen("Const", [("val", aconst(Value::Int(0)))], [reuse("C")]),
        );
    }
}
