//! The TreeToaster view-maintenance engine (paper §5–6).
//!
//! One [`MatchView`] per rewrite rule. On `replace(R, R′)` the engine
//! applies Algorithm 2 to the **maximal search set** of Definition 6:
//!
//! ```text
//! ⌈R,R′⌉_q = Desc(R) ⊕ {Ancestor_i(R)}_{i∈[D(q)]}
//!          ⊖ Desc(R′) ⊖ {Ancestor_i(R′)}_{i∈[D(q)]}
//! ```
//!
//! realized as two phases around the pointer swap: pre-state matches in
//! `Desc(R)` and the `D(q)` nearest ancestors are subtracted, post-state
//! matches in `Desc(R′)` and the same ancestors are added. For
//! declarative rules that pass the Definition-7 safety check, the engine
//! instead uses the Algorithm-3 inlined plan: only label-aligned
//! generated positions, destroyed positions, and ancestor heights are
//! touched — reused subtrees are skipped entirely.

use crate::batch::DeltaBuffer;
use crate::inline::InlineMatrix;
use crate::rules::RuleSet;
use crate::strategy::{EpochOps, MatchCore, ReplaceCtx, RuleId};
use crate::view::MatchView;
use std::sync::Arc;
use tt_ast::{Ast, NodeId};
use tt_pattern::{matches_with, AutomatonScratch, Bindings};

/// Maintenance-path selection (the §6.1 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Use inlined plans for safe rules, maximal search set otherwise.
    #[default]
    Inlined,
    /// Always use the maximal search set (Definition 6 only).
    Generic,
}

/// Reusable per-engine work buffers, so a steady-state `replace` — one
/// preorder walk plus a handful of candidate evaluations — performs zero
/// heap allocations: the DFS stack and the pattern-binding environment
/// both live for the life of the engine.
#[derive(Debug, Default)]
struct Scratch {
    /// DFS stack for [`tt_ast::Ast::descendants_with`] walks.
    stack: Vec<NodeId>,
    /// Binding environment for [`matches_with`] evaluations.
    bindings: Bindings,
    /// Scratch for the compiled automaton's walks.
    auto: AutomatonScratch,
}

/// The TreeToaster engine: per-rule views over the live AST.
pub struct TreeToasterEngine {
    rules: Arc<RuleSet>,
    views: Vec<MatchView>,
    matrix: InlineMatrix,
    mode: MaintenanceMode,
    /// Drive candidate discovery through the rule set's compiled
    /// [`tt_pattern::MatchAutomaton`] (one walk per touched node) rather
    /// than R independent pattern evaluations. On by default; the
    /// per-rule path stays alive as the differential-testing baseline.
    compiled: bool,
    /// Open maintenance epoch: deltas stage here (and cancel) instead of
    /// touching the views. `None` = immediate (K=1) maintenance.
    batch: Option<DeltaBuffer>,
    /// An epoch sealed by [`EpochOps::submit_commit`], awaiting its
    /// background committer. Reads overlay it alongside the open batch
    /// (`view ⊕ sealed ⊕ pending` is the up-to-date view); at most one
    /// epoch is ever sealed.
    sealed: Option<DeltaBuffer>,
    /// The previous epoch's drained buffer, kept so its dense pages are
    /// reused by the next [`EpochOps::begin_batch`] instead of being
    /// freed and re-allocated every epoch.
    spare: Option<DeltaBuffer>,
    /// Reusable maintenance work buffers (see [`Scratch`]).
    scratch: Scratch,
}

impl TreeToasterEngine {
    /// Builds an engine (views empty until [`MatchCore::rebuild`]).
    pub fn new(rules: Arc<RuleSet>) -> Self {
        Self::with_mode(rules, MaintenanceMode::Inlined)
    }

    /// Builds an engine with an explicit maintenance mode. The
    /// Definition-7 safety bits come from the rule set's construction-time
    /// cache ([`RuleSet::inlineable`]) — fleets sharing one
    /// `Arc<RuleSet>` across thousands of shards no longer re-derive the
    /// classification per shard.
    pub fn with_mode(rules: Arc<RuleSet>, mode: MaintenanceMode) -> Self {
        let matrix = InlineMatrix::build(&rules);
        let views = (0..rules.len()).map(|_| MatchView::new()).collect();
        Self {
            rules,
            views,
            matrix,
            mode,
            compiled: true,
            batch: None,
            sealed: None,
            spare: None,
            scratch: Scratch::default(),
        }
    }

    /// Selects the matcher: `true` (default) drives discovery through
    /// the compiled automaton, `false` keeps the one-pattern-at-a-time
    /// baseline.
    pub fn compiled_match(mut self, on: bool) -> Self {
        self.compiled = on;
        self
    }

    /// Net deltas currently staged in an open epoch, plus any sealed
    /// epoch's surviving deltas still awaiting the committer (0 when
    /// fully applied).
    pub fn pending_deltas(&self) -> usize {
        self.batch.as_ref().map_or(0, DeltaBuffer::len)
            + self.sealed.as_ref().map_or(0, DeltaBuffer::len)
    }

    /// `(staged, canceled)` counters of the open epoch's buffer, if any —
    /// `canceled` deltas are maintenance the views never had to absorb.
    pub fn batch_stats(&self) -> Option<(u64, u64)> {
        self.batch.as_ref().map(|b| (b.staged(), b.canceled()))
    }

    /// Routes one view delta through the open epoch (or straight into
    /// the view when none is open). Takes the fields directly so callers
    /// holding a borrow of `self.matrix` or `self.rules` can still stage.
    #[inline]
    fn stage_into(
        batch: &mut Option<DeltaBuffer>,
        views: &mut [MatchView],
        view: usize,
        node: NodeId,
        delta: i64,
    ) {
        match batch {
            Some(buffer) => buffer.stage(view, node, delta),
            None => views[view].add(node, delta),
        }
    }

    /// The view maintained for `rule`.
    pub fn view(&self, rule: RuleId) -> &MatchView {
        &self.views[rule]
    }

    /// The active maintenance mode.
    pub fn mode(&self) -> MaintenanceMode {
        self.mode
    }

    /// Test oracle: every view must equal a from-scratch scan
    /// (Definition 4 view correctness / Lemmas 5.2 and 5.4).
    pub fn check_views_correct(&self, ast: &Ast) -> Result<(), String> {
        for (id, rule) in self.rules.iter() {
            self.views[id].check_consistent()?;
            let expected = tt_pattern::match_set(ast, ast.root(), &rule.pattern);
            if expected.len() != self.views[id].len() {
                return Err(format!(
                    "view {} ({}) has {} members, expected {}",
                    id,
                    rule.name,
                    self.views[id].len(),
                    expected.len()
                ));
            }
            for n in expected {
                if !self.views[id].contains(n) {
                    return Err(format!("view {} ({}) missing {n:?}", id, rule.name));
                }
            }
        }
        Ok(())
    }

    /// Generic phase helper: walk `Desc(root)` and the `D(q)` nearest
    /// ancestors, applying `sign` for every current match.
    ///
    /// Compiled path: one automaton walk over the subtree emits every
    /// rule's candidates at once, then one [`run_at`] per distinct
    /// ancestor height covers the `{Ancestor_i}` part — a rule is staged
    /// at height `h` only when `h ≤ D(q)`, exactly the heights the
    /// per-rule sweep would visit, so the two paths stage identical
    /// delta sets. Fallback path: one preorder walk tests every pattern
    /// per node (better locality than one walk per pattern). Either way
    /// the stacks and binding scratch are engine-owned, so the walk
    /// allocates nothing.
    ///
    /// [`run_at`]: tt_pattern::MatchAutomaton::run_at
    fn generic_phase(&mut self, ast: &Ast, root: NodeId, sign: i64) {
        let Self {
            rules,
            views,
            batch,
            scratch,
            compiled,
            ..
        } = self;
        if *compiled {
            let auto = rules.automaton();
            auto.for_each_match(ast, root, &mut scratch.auto, &mut |n, id, _| {
                Self::stage_into(batch, views, id, n, sign);
            });
            for h in 1..=auto.max_depth() {
                let a = ast.ancestor_at(root, h);
                if a.is_null() {
                    break;
                }
                auto.run_at(ast, a, &mut scratch.auto, &mut |id, _| {
                    if auto.depth(id) >= h {
                        Self::stage_into(batch, views, id, a, sign);
                    }
                });
            }
            return;
        }
        // Only rules rooted at the node's label (plus the Any-rooted
        // bucket) can match there, so consult the rule set's pre-bucketed
        // root-label index instead of scanning all R rules per node.
        for n in ast.descendants_with(root, &mut scratch.stack) {
            for &id in Self::candidates(rules, ast, n) {
                if matches_with(ast, n, &rules.get(id).pattern, &mut scratch.bindings) {
                    Self::stage_into(batch, views, id, n, sign);
                }
            }
        }
        let max_depth = rules.iter().map(|(_, r)| r.pattern.depth()).max();
        for h in 1..=max_depth.unwrap_or(0) {
            let a = ast.ancestor_at(root, h);
            if a.is_null() {
                break;
            }
            for &id in Self::candidates(rules, ast, a) {
                let pattern = &rules.get(id).pattern;
                if pattern.depth() >= h && matches_with(ast, a, pattern, &mut scratch.bindings) {
                    Self::stage_into(batch, views, id, a, sign);
                }
            }
        }
    }

    /// Rule ids that can possibly match at `n`: the bucket for `n`'s
    /// label followed by the Any-rooted rules.
    #[inline]
    fn candidates<'r>(
        rules: &'r RuleSet,
        ast: &Ast,
        n: NodeId,
    ) -> impl Iterator<Item = &'r RuleId> {
        rules
            .rules_by_root_label(ast.label(n))
            .iter()
            .chain(rules.wildcard_rooted())
    }

    /// One candidate re-check on the Algorithm-3 plan paths: the
    /// compiled matcher's straight-line per-rule program, or the
    /// baseline pattern evaluation.
    #[inline]
    fn check_one(
        rules: &RuleSet,
        compiled: bool,
        scratch: &mut Scratch,
        ast: &Ast,
        n: NodeId,
        id: RuleId,
    ) -> bool {
        if compiled {
            rules.automaton().run_rule(ast, n, id, &mut scratch.auto)
        } else {
            matches_with(ast, n, &rules.get(id).pattern, &mut scratch.bindings)
        }
    }

    /// Inlined pre-phase: check only destroyed candidate positions and
    /// planned ancestor heights.
    fn inlined_pre(&mut self, ast: &Ast, old_root: NodeId, fired: RuleId, bindings: &Bindings) {
        let Self {
            rules,
            views,
            batch,
            matrix,
            scratch,
            compiled,
            ..
        } = self;
        for id in 0..rules.len() {
            let plan = matrix.plan(id, fired).expect("caller checked plan exists");
            for &var in &plan.removed_candidates {
                let n = bindings.get(var);
                if Self::check_one(rules, *compiled, scratch, ast, n, id) {
                    Self::stage_into(batch, views, id, n, -1);
                }
            }
            for &h in &plan.ancestor_heights {
                let a = ast.ancestor_at(old_root, h);
                if !a.is_null() && Self::check_one(rules, *compiled, scratch, ast, a, id) {
                    Self::stage_into(batch, views, id, a, -1);
                }
            }
        }
    }

    /// Inlined post-phase: check only aligned generated positions and the
    /// same ancestor heights.
    fn inlined_post(&mut self, ast: &Ast, new_root: NodeId, fired: RuleId, gen_nodes: &[NodeId]) {
        let Self {
            rules,
            views,
            batch,
            matrix,
            scratch,
            compiled,
            ..
        } = self;
        for id in 0..rules.len() {
            let plan = matrix.plan(id, fired).expect("caller checked plan exists");
            for &gi in &plan.gen_candidates {
                let n = gen_nodes[gi];
                if Self::check_one(rules, *compiled, scratch, ast, n, id) {
                    Self::stage_into(batch, views, id, n, 1);
                }
            }
            for &h in &plan.ancestor_heights {
                let a = ast.ancestor_at(new_root, h);
                if !a.is_null() && Self::check_one(rules, *compiled, scratch, ast, a, id) {
                    Self::stage_into(batch, views, id, a, 1);
                }
            }
        }
    }

    fn can_inline(&self, rule: RuleId) -> bool {
        self.mode == MaintenanceMode::Inlined && self.rules.inlineable()[rule]
    }
}

impl MatchCore for TreeToasterEngine {
    fn name(&self) -> &'static str {
        "TT"
    }

    fn rebuild(&mut self, ast: &Ast) {
        for v in &mut self.views {
            v.clear();
        }
        // A rebuild supersedes anything staged or sealed: restart the
        // epoch empty (pages retained for the coming deltas).
        if let Some(buffer) = &mut self.batch {
            buffer.reset();
        }
        if let Some(sealed) = self.sealed.take() {
            self.spare = Some(sealed);
        }
        if let Some(spare) = &mut self.spare {
            spare.reset();
        }
        let root = ast.root();
        if root.is_null() {
            return;
        }
        // One traversal for the paper's initial materialization: the
        // automaton emits every rule's matches in a single walk, or the
        // baseline tests every pattern per node.
        let Self {
            rules,
            views,
            scratch,
            compiled,
            ..
        } = self;
        if *compiled {
            rules
                .automaton()
                .for_each_match(ast, root, &mut scratch.auto, &mut |n, id, _| {
                    views[id].add(n, 1);
                });
            return;
        }
        for n in ast.descendants_with(root, &mut scratch.stack) {
            for &id in Self::candidates(rules, ast, n) {
                if matches_with(ast, n, &rules.get(id).pattern, &mut scratch.bindings) {
                    views[id].add(n, 1);
                }
            }
        }
    }

    fn find_one(&mut self, _ast: &Ast, rule: RuleId) -> Option<NodeId> {
        // The views are stale by exactly the deltas staged in the open
        // epoch plus any sealed epoch awaiting its committer, and
        // `view ⊕ sealed ⊕ pending` is the up-to-date view — so answer
        // through an overlay instead of forcing a commit. This read-path
        // asymmetry is the point: the bolt-on engines must reconcile
        // their whole event stream to answer the same question. Signed
        // deltas compose, so summing the two buffers' entries per node
        // gives the same overlay as one merged buffer would.
        let sealed = self
            .sealed
            .as_ref()
            .map(|b| b.view_deltas(rule))
            .filter(|p| !p.is_empty());
        let open = self
            .batch
            .as_ref()
            .map(|b| b.view_deltas(rule))
            .filter(|p| !p.is_empty());
        let (first, second) = match (sealed, open) {
            (None, None) => return self.views[rule].any(),
            // Single-buffer overlay — one probe per scanned member. This
            // is the hot shape (a synchronous commit cycle never holds a
            // sealed epoch), so it must not pay for the composed case.
            (Some(p), None) | (None, Some(p)) => {
                if let Some(n) = self.views[rule].iter().find(|&n| !p.contains_key(n)) {
                    return Some(n);
                }
                return p
                    .iter()
                    .filter(|&(n, &d)| self.views[rule].count(n) + d > 0)
                    .map(|(n, _)| n)
                    .next();
            }
            (Some(s), Some(o)) => (s, o),
        };
        let delta =
            |n: NodeId| first.get(n).copied().unwrap_or(0) + second.get(n).copied().unwrap_or(0);
        // Any member neither epoch touched is still a match…
        if let Some(n) = self.views[rule].iter().find(|&n| delta(n) == 0) {
            return Some(n);
        }
        // …otherwise a touched node with positive net support.
        [first, second]
            .iter()
            .flat_map(|p| p.iter())
            .map(|(n, _)| n)
            .find(|&n| self.views[rule].count(n) + delta(n) > 0)
    }

    fn before_replace(&mut self, ast: &Ast, old_root: NodeId, rule: Option<(RuleId, &Bindings)>) {
        if self.batch.is_none() {
            // A rewrite outside an epoch maintains the views in place,
            // so a sealed epoch still awaiting its committer must land
            // first — the direct ±1s below describe a tree the views
            // have not caught up to otherwise. The committer's later
            // pass finds the slot empty and no-ops.
            self.apply_submitted();
        }
        match rule {
            Some((fired, bindings)) if self.can_inline(fired) => {
                self.inlined_pre(ast, old_root, fired, bindings)
            }
            _ => self.generic_phase(ast, old_root, -1),
        }
    }

    fn after_replace(&mut self, ast: &Ast, ctx: &ReplaceCtx<'_>) {
        match &ctx.rule {
            Some(fired) if self.can_inline(fired.rule) => {
                self.inlined_post(ast, ctx.new_root, fired.rule, &fired.applied.gen_nodes);
            }
            _ => self.generic_phase(ast, ctx.new_root, 1),
        }
        #[cfg(debug_assertions)]
        for v in &self.views {
            debug_assert!(v.check_consistent().is_ok(), "view corrupted after replace");
        }
    }

    fn on_graft(&mut self, ast: &Ast, created: &[NodeId]) {
        if self.batch.is_none() {
            // Same ordering rule as `before_replace`: land any sealed
            // epoch before mutating the views directly.
            self.apply_submitted();
        }
        let Self {
            rules,
            views,
            batch,
            scratch,
            compiled,
            ..
        } = self;
        if *compiled {
            let auto = rules.automaton();
            for &n in created {
                auto.run_at(ast, n, &mut scratch.auto, &mut |id, _| {
                    Self::stage_into(batch, views, id, n, 1);
                });
            }
            return;
        }
        for &n in created {
            for &id in Self::candidates(rules, ast, n) {
                if matches_with(ast, n, &rules.get(id).pattern, &mut scratch.bindings) {
                    Self::stage_into(batch, views, id, n, 1);
                }
            }
        }
    }

    fn check_consistent(&self, ast: &Ast) -> Result<(), String> {
        if self.batch.as_ref().is_some_and(|b| !b.is_empty()) {
            return Err("engine has staged deltas in an open batch".into());
        }
        if self.sealed.as_ref().is_some_and(|b| !b.is_empty()) {
            return Err("engine has a sealed epoch awaiting its committer".into());
        }
        self.check_views_correct(ast)
    }

    fn memory_bytes(&self) -> usize {
        self.views
            .iter()
            .map(MatchView::memory_bytes)
            .sum::<usize>()
            + self.batch.as_ref().map_or(0, DeltaBuffer::memory_bytes)
            + self.sealed.as_ref().map_or(0, DeltaBuffer::memory_bytes)
            + self.spare.as_ref().map_or(0, DeltaBuffer::memory_bytes)
    }

    fn match_heat(&self) -> usize {
        // Exactly the §4 promise, repurposed as a scheduling signal: the
        // views already know how many rewrite opportunities are live, and
        // the open epoch's net deltas are matches about to land.
        self.views.iter().map(MatchView::len).sum::<usize>() + self.pending_deltas()
    }
}

impl EpochOps for TreeToasterEngine {
    fn begin_batch(&mut self) {
        if self.batch.is_none() {
            let buffer = match self.spare.take() {
                Some(mut spare) if spare.view_count() == self.views.len() => {
                    spare.reset();
                    spare
                }
                _ => DeltaBuffer::new(self.views.len()),
            };
            self.batch = Some(buffer);
        }
    }

    fn commit_batch(&mut self) {
        // Epochs apply in submission order: a sealed epoch always lands
        // before the one committing now.
        self.apply_submitted();
        if let Some(mut buffer) = self.batch.take() {
            buffer.drain_into(&mut self.views);
            #[cfg(debug_assertions)]
            for v in &self.views {
                debug_assert!(v.check_consistent().is_ok(), "view corrupted by commit");
            }
            // Park the drained buffer: its pages serve the next epoch.
            self.spare = Some(buffer);
        }
    }

    fn submit_commit(&mut self) -> bool {
        let Some(buffer) = self.batch.take() else {
            return false;
        };
        // Bounded backpressure: at most one epoch in flight. A second
        // submit before the committer ran applies the old seal inline.
        self.apply_submitted();
        if buffer.is_empty() {
            // Nothing staged: close the epoch without occupying the
            // sealed slot, so the committer is never fed a no-op.
            self.spare = Some(buffer);
            return false;
        }
        self.sealed = Some(buffer);
        true
    }

    fn apply_submitted(&mut self) -> bool {
        let Some(mut sealed) = self.sealed.take() else {
            return false;
        };
        sealed.drain_into(&mut self.views);
        #[cfg(debug_assertions)]
        for v in &self.views {
            debug_assert!(v.check_consistent().is_ok(), "view corrupted by commit");
        }
        self.spare = Some(sealed);
        true
    }

    fn has_submitted(&self) -> bool {
        self.sealed.is_some()
    }

    fn batch_cancellation(&self) -> Option<(u64, u64)> {
        // The open epoch's buffer if one exists; otherwise the drained
        // buffer parked in `spare`, whose counters still describe the
        // last committed epoch (reset happens at the next begin).
        self.batch
            .as_ref()
            .or(self.sealed.as_ref())
            .or(self.spare.as_ref())
            .map(|b| (b.staged(), b.canceled()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::reuse;
    use crate::rules::RewriteRule;
    use crate::strategy::RuleFired;
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_ast::{Schema, Value};
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    fn schema() -> Arc<Schema> {
        arith_schema()
    }

    fn add_zero_rule(s: &Arc<Schema>) -> RewriteRule {
        let pattern = Pattern::compile(
            s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        );
        RewriteRule::new("AddZero", s, pattern, reuse("C"))
    }

    /// Mul-by-one elimination: Arith(*, Const(1), Var) → Var. A second
    /// rule so cross-view maintenance is exercised.
    fn mul_one_rule(s: &Arc<Schema>) -> RewriteRule {
        let pattern = Pattern::compile(
            s,
            p::node(
                "Arith",
                "M",
                [
                    p::node("Const", "K", [], p::eq(p::attr("K", "val"), p::int(1))),
                    p::node("Var", "V", [], p::tru()),
                ],
                p::eq(p::attr("M", "op"), p::str_("*")),
            ),
        );
        RewriteRule::new("MulOne", s, pattern, reuse("V"))
    }

    fn rules() -> Arc<RuleSet> {
        let s = schema();
        Arc::new(RuleSet::from_rules(vec![
            add_zero_rule(&s),
            mul_one_rule(&s),
        ]))
    }

    fn tree(text: &str) -> Ast {
        let mut ast = Ast::new(schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        ast
    }

    /// Applies rule `rid` at `site` with full engine notification.
    fn fire(engine: &mut TreeToasterEngine, ast: &mut Ast, rid: usize, site: NodeId) {
        let rules = engine.rules.clone();
        let rule = rules.get(rid);
        let bindings = match_node(ast, site, &rule.pattern).expect("site must match");
        engine.before_replace(ast, site, Some((rid, &bindings)));
        let applied = rule.apply(ast, site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: rid,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        engine.after_replace(ast, &ctx);
    }

    #[test]
    fn rebuild_materializes_views() {
        let mut ast =
            tree(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        assert_eq!(engine.view(0).len(), 1, "one AddZero site");
        assert_eq!(
            engine.view(1).len(),
            0,
            "no MulOne site (left child is Arith)"
        );
        engine.check_views_correct(&ast).unwrap();
        let _ = &mut ast;
    }

    #[test]
    fn fire_updates_own_and_other_views_inlined() {
        // After AddZero fires, the root becomes Arith(*, Var(b), Var(x)) —
        // still no MulOne match (needs Const(1) child), and the AddZero
        // view must drain.
        let mut ast =
            tree(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        assert!(engine.view(0).is_empty());
        engine.check_views_correct(&ast).unwrap();
        ast.validate().unwrap();
    }

    #[test]
    fn cascading_rewrites_create_new_matches() {
        // MulOne at the inner node exposes an AddZero at the root:
        // (+ (* (Const 1) (Var v)) ...) — wait: build a tree where firing
        // rule 1 creates a match for rule 0:
        //   (Arith + (Const 0) (Var y))  after rewriting the inner
        // Start: (Arith + (Const 0) (Arith * (Const 1) (Var y)))
        // Root doesn't match AddZero yet (right child is Arith, not Var).
        // Firing MulOne turns the right child into Var(y) → root matches.
        let mut ast =
            tree(r#"(Arith op="+" (Const val=0) (Arith op="*" (Const val=1) (Var name="y")))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        assert!(engine.view(0).is_empty(), "root not yet eligible");
        let site = engine.find_one(&ast, 1).expect("MulOne site exists");
        fire(&mut engine, &mut ast, 1, site);
        engine.check_views_correct(&ast).unwrap();
        assert_eq!(engine.view(0).len(), 1, "ancestor became an AddZero match");
        // Drain it too.
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        engine.check_views_correct(&ast).unwrap();
        assert!(engine.view(0).is_empty());
        assert!(engine.view(1).is_empty());
        assert_eq!(
            tt_ast::sexpr::to_sexpr(&ast, ast.root()),
            r#"(Var name="y")"#
        );
    }

    #[test]
    fn generic_mode_agrees_with_inlined() {
        let build = |mode| {
            let mut ast =
                tree(r#"(Arith op="+" (Const val=0) (Arith op="*" (Const val=1) (Var name="y")))"#);
            let mut engine = TreeToasterEngine::with_mode(rules(), mode);
            engine.rebuild(&ast);
            let site = engine.find_one(&ast, 1).unwrap();
            fire(&mut engine, &mut ast, 1, site);
            engine.check_views_correct(&ast).unwrap();
            (engine.view(0).len(), engine.view(1).len())
        };
        assert_eq!(
            build(MaintenanceMode::Inlined),
            build(MaintenanceMode::Generic)
        );
    }

    #[test]
    fn compiled_matcher_agrees_with_baseline() {
        // Drive the cascade to quiescence under every (matcher, mode)
        // combination; `check_views_correct` rescans with the naive
        // evaluator after every rewrite, so this differentially checks
        // the automaton's rebuild, inlined, and generic paths at once.
        let run = |compiled: bool, mode| {
            let mut ast =
                tree(r#"(Arith op="+" (Const val=0) (Arith op="*" (Const val=1) (Var name="y")))"#);
            let mut engine = TreeToasterEngine::with_mode(rules(), mode).compiled_match(compiled);
            engine.rebuild(&ast);
            engine.check_views_correct(&ast).unwrap();
            while let Some((rid, site)) =
                (0..2).find_map(|r| engine.find_one(&ast, r).map(|n| (r, n)))
            {
                fire(&mut engine, &mut ast, rid, site);
                engine.check_views_correct(&ast).unwrap();
            }
            tt_ast::sexpr::to_sexpr(&ast, ast.root())
        };
        for mode in [MaintenanceMode::Inlined, MaintenanceMode::Generic] {
            assert_eq!(run(true, mode), run(false, mode));
        }
    }

    #[test]
    fn manual_replace_uses_generic_path() {
        // A mutation outside any rule (rule = None) must still keep views
        // exact: replace Var(x) with Const(0) by hand.
        let mut ast = tree(r#"(Arith op="+" (Const val=0) (Var name="x"))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        assert_eq!(engine.view(0).len(), 1);
        let root = ast.root();
        let x = ast.children(root)[1];
        let s = ast.schema().clone();
        let zero = ast.alloc(s.expect_label("Const"), vec![Value::Int(0)], vec![]);
        engine.before_replace(&ast, x, None);
        ast.replace(x, zero);
        let removed = vec![(s.expect_label("Var"), tt_ast::NodeRow::of(&ast, x))];
        ast.free_subtree(x);
        let ctx = ReplaceCtx {
            old_root: x,
            new_root: zero,
            removed: &removed,
            inserted: &[zero],
            parent_update: None,
            rule: None,
        };
        engine.after_replace(&ast, &ctx);
        engine.check_views_correct(&ast).unwrap();
        assert!(
            engine.view(0).is_empty(),
            "root no longer matches (Var became Const)"
        );
    }

    #[test]
    fn graft_adds_new_matches_only() {
        // Wrap the root in a new Arith(+) whose right child is a Var:
        // the wrapper itself becomes an AddZero match.
        let mut ast = tree(r#"(Const val=0)"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        let s = ast.schema().clone();
        let old_root = ast.root();
        ast.detach(old_root);
        let v = ast.alloc(s.expect_label("Var"), vec![Value::str("z")], vec![]);
        let wrap = ast.alloc(
            s.expect_label("Arith"),
            vec![Value::str("+")],
            vec![old_root, v],
        );
        ast.set_root(wrap);
        engine.on_graft(&ast, &[v, wrap]);
        engine.check_views_correct(&ast).unwrap();
        assert_eq!(engine.view(0).len(), 1);
        assert_eq!(engine.find_one(&ast, 0), Some(wrap));
    }

    #[test]
    fn find_one_is_constant_time_view_pop() {
        let mut ast = tree(
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="a")) (Arith op="+" (Const val=0) (Var name="b")))"#,
        );
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        assert_eq!(engine.view(0).len(), 2);
        // Draining both sites leaves the tree AddZero-free.
        while let Some(site) = engine.find_one(&ast, 0) {
            fire(&mut engine, &mut ast, 0, site);
        }
        engine.check_views_correct(&ast).unwrap();
        assert_eq!(
            tt_ast::sexpr::to_sexpr(&ast, ast.root()),
            r#"(Arith op="*" (Var name="a") (Var name="b"))"#
        );
    }

    #[test]
    fn batched_cascade_matches_immediate_maintenance() {
        // Same two-rewrite cascade as `cascading_rewrites_create_new_matches`,
        // but inside one epoch: mid-epoch finds must see through the
        // overlay, and the commit must leave the views exactly correct.
        let mut ast =
            tree(r#"(Arith op="+" (Const val=0) (Arith op="*" (Const val=1) (Var name="y")))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        engine.begin_batch();
        let site = engine.find_one(&ast, 1).expect("MulOne site exists");
        fire(&mut engine, &mut ast, 1, site);
        assert!(
            engine.pending_deltas() > 0,
            "deltas staged, views untouched"
        );
        let site = engine
            .find_one(&ast, 0)
            .expect("overlay exposes the new AddZero match mid-epoch");
        fire(&mut engine, &mut ast, 0, site);
        let (staged, canceled) = engine.batch_stats().unwrap();
        assert!(staged >= 2);
        assert!(
            canceled >= 2,
            "the AddZero match born and consumed in-epoch must cancel"
        );
        engine.commit_batch();
        engine.check_views_correct(&ast).unwrap();
        engine.check_consistent(&ast).unwrap();
        assert!(engine.view(0).is_empty());
        assert!(engine.view(1).is_empty());
        assert_eq!(
            tt_ast::sexpr::to_sexpr(&ast, ast.root()),
            r#"(Var name="y")"#
        );
    }

    #[test]
    fn epoch_buffers_are_recycled_across_epochs() {
        // Two sites, drained one per epoch: the second epoch must reuse
        // the first epoch's drained buffer (and its pages) instead of
        // allocating a fresh one, so memory stays flat across epochs.
        let mut ast = tree(
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="a")) (Arith op="+" (Const val=0) (Var name="b")))"#,
        );
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        engine.begin_batch();
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        engine.commit_batch();
        let after_first = engine.memory_bytes();
        engine.begin_batch();
        assert_eq!(
            engine.batch_stats(),
            Some((0, 0)),
            "recycled buffer starts the epoch with fresh counters"
        );
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        engine.commit_batch();
        engine.check_consistent(&ast).unwrap();
        assert!(
            engine.memory_bytes() <= after_first,
            "second epoch re-allocated pages: {} > {after_first}",
            engine.memory_bytes()
        );
    }

    #[test]
    fn batch_protocol_is_reentrant_and_degenerate_without_deltas() {
        let ast = tree(r#"(Arith op="+" (Const val=0) (Var name="x"))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        // begin twice, commit twice, commit without begin: all legal.
        engine.begin_batch();
        engine.begin_batch();
        assert_eq!(engine.find_one(&ast, 0), Some(ast.root()), "empty overlay");
        engine.commit_batch();
        engine.commit_batch();
        engine.check_consistent(&ast).unwrap();
        assert_eq!(engine.view(0).len(), 1);
    }

    #[test]
    fn check_consistent_rejects_open_dirty_batch() {
        let mut ast =
            tree(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        engine.begin_batch();
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        assert!(engine.check_consistent(&ast).is_err());
        engine.commit_batch();
        engine.check_consistent(&ast).unwrap();
    }

    #[test]
    fn memory_is_views_only() {
        let ast = tree(r#"(Arith op="+" (Const val=0) (Var name="x"))"#);
        let mut engine = TreeToasterEngine::new(rules());
        engine.rebuild(&ast);
        let bytes = engine.memory_bytes();
        assert!(bytes > 0);
        // Far smaller than a shadow copy of any real AST: with one match,
        // the cost is dominated by the single lazily allocated 256-slot
        // page the match falls in (page-granular accounting is honest —
        // see tt_ast::dense), plus the empty second view.
        assert!(bytes < 16 * 1024, "view memory should be tiny: {bytes}");
    }
}
