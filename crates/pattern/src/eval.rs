//! Pattern-match semantics (paper Figure 5) and the naive matcher.
//!
//! `⟦q(N)⟧` evaluates to `(T, Γ)` — success with bindings — or `(F, ∅)`.
//! [`match_set`] computes the Definition-3 match result `q(N) ⊆ Desc(N)`,
//! and [`find_first`] is the **Naive** strategy of the evaluation: a
//! depth-first scan of the whole tree per search, exactly what the paper's
//! host compiler did before IVM.

use crate::constraint::AttrSource;
use crate::query::{Pattern, PatternNode, VarId};
use tt_ast::{Ast, AttrName, NodeId, Value};

/// The binding environment `Γ : Σ_I → nodes`, stored densely by `VarId`.
///
/// A pattern's variables are dense (0..var_count), so bindings are a small
/// vector rather than a map; unbound slots are `NodeId::NULL` (only
/// possible mid-evaluation).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<NodeId>,
}

impl Bindings {
    /// Empty environment for a pattern with `var_count` variables.
    pub fn new(var_count: usize) -> Self {
        Self {
            slots: vec![NodeId::NULL; var_count],
        }
    }

    /// Re-initializes this environment for `pattern`, reusing the slot
    /// allocation. Hot maintenance loops evaluate thousands of candidate
    /// nodes per rewrite; pairing this with [`matches_with`] keeps those
    /// evaluations allocation-free.
    pub fn reset_for(&mut self, pattern: &Pattern) {
        self.reset_to(pattern.var_count());
    }

    /// [`Self::reset_for`] by raw slot count — the compiled automaton
    /// reconstructs environments without holding the source [`Pattern`].
    pub fn reset_to(&mut self, var_count: usize) {
        self.slots.clear();
        self.slots.resize(var_count, NodeId::NULL);
    }

    /// The node bound to `var`; panics if unbound (an evaluation bug).
    #[inline]
    pub fn get(&self, var: VarId) -> NodeId {
        let id = self.slots[var.0 as usize];
        debug_assert!(!id.is_null(), "variable v{} unbound", var.0);
        id
    }

    /// Binds `var` to `node`.
    #[inline]
    pub fn bind(&mut self, var: VarId, node: NodeId) {
        self.slots[var.0 as usize] = node;
    }

    /// Iterates `(var, node)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, NodeId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, &n)| (VarId(i as u16), n))
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no variable slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// [`AttrSource`] over a live AST plus bindings — the tree-side resolution
/// of `i.x` atoms.
pub struct TreeAttrs<'a> {
    /// The AST holding the bound nodes.
    pub ast: &'a Ast,
    /// The binding environment.
    pub bindings: &'a Bindings,
}

impl AttrSource for TreeAttrs<'_> {
    fn attr_of(&self, var: VarId, attr: AttrName) -> Value {
        self.ast.attr(self.bindings.get(var), attr).clone()
    }
}

/// Evaluates `⟦q(node)⟧`, returning the bindings on success.
pub fn match_node(ast: &Ast, node: NodeId, pattern: &Pattern) -> Option<Bindings> {
    let mut bindings = Bindings::new(pattern.var_count());
    if match_rec(ast, node, pattern.root(), &mut bindings)
        && check_constraints(ast, pattern.root(), &bindings)
    {
        Some(bindings)
    } else {
        None
    }
}

/// Boolean fast path of [`match_node`].
pub fn matches(ast: &Ast, node: NodeId, pattern: &Pattern) -> bool {
    match_node(ast, node, pattern).is_some()
}

/// [`matches`](fn@matches) over a caller-provided scratch environment: the zero-
/// allocation fast path the maintenance engines drive per candidate.
/// `scratch` is reset (and left holding this evaluation's bindings,
/// valid only on a `true` return).
pub fn matches_with(ast: &Ast, node: NodeId, pattern: &Pattern, scratch: &mut Bindings) -> bool {
    scratch.reset_for(pattern);
    match_rec(ast, node, pattern.root(), scratch) && check_constraints(ast, pattern.root(), scratch)
}

/// Structural phase: labels, arities, bindings. Constraints are checked in
/// a second phase once every variable is bound (Figure 5 evaluates `θ(Γ)`
/// with the full child environment).
fn match_rec(ast: &Ast, node: NodeId, pat: &PatternNode, bindings: &mut Bindings) -> bool {
    match pat {
        PatternNode::Any { var } => {
            if let Some(v) = var {
                bindings.bind(*v, node);
            }
            true
        }
        PatternNode::Match {
            label,
            var,
            children,
            ..
        } => {
            let n = ast.node(node);
            if n.label() != *label || n.children().len() != children.len() {
                return false;
            }
            bindings.bind(*var, node);
            n.children()
                .iter()
                .zip(children)
                .all(|(&child, cpat)| match_rec(ast, child, cpat, bindings))
        }
    }
}

fn check_constraints(ast: &Ast, pat: &PatternNode, bindings: &Bindings) -> bool {
    match pat {
        PatternNode::Any { .. } => true,
        PatternNode::Match {
            children,
            constraint,
            ..
        } => {
            let src = TreeAttrs { ast, bindings };
            constraint.eval(&src) && children.iter().all(|c| check_constraints(ast, c, bindings))
        }
    }
}

/// Depth-first scan for the first match at or below `root` — the Naive
/// baseline's per-query cost.
pub fn find_first(ast: &Ast, root: NodeId, pattern: &Pattern) -> Option<(NodeId, Bindings)> {
    if root.is_null() {
        return None;
    }
    ast.descendants(root)
        .find_map(|n| match_node(ast, n, pattern).map(|b| (n, b)))
}

/// All matches at or below `root`, with bindings, in preorder.
pub fn find_all(ast: &Ast, root: NodeId, pattern: &Pattern) -> Vec<(NodeId, Bindings)> {
    if root.is_null() {
        return Vec::new();
    }
    ast.descendants(root)
        .filter_map(|n| match_node(ast, n, pattern).map(|b| (n, b)))
        .collect()
}

/// Definition 3's match result `q(N)`: the set of descendants of `root`
/// on which the pattern evaluates to true.
pub fn match_set(ast: &Ast, root: NodeId, pattern: &Pattern) -> Vec<NodeId> {
    if root.is_null() {
        return Vec::new();
    }
    ast.descendants(root)
        .filter(|&n| matches(ast, n, pattern))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::Pattern;
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;

    fn add_zero() -> Pattern {
        let schema = arith_schema();
        Pattern::compile(
            &schema,
            node(
                "Arith",
                "A",
                [
                    node("Const", "B", [], eq(attr("B", "val"), int(0))),
                    node("Var", "C", [], tru()),
                ],
                eq(attr("A", "op"), str_("+")),
            ),
        )
    }

    fn tree(text: &str) -> (Ast, NodeId) {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        (ast, id)
    }

    #[test]
    fn example_2_2_matches() {
        // (Arith + (Const 0) (Var b)) is eligible for the rule.
        let (ast, root) = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let q = add_zero();
        let bindings = match_node(&ast, root, &q).expect("should match");
        assert_eq!(bindings.get(q.var("A").unwrap()), root);
        assert_eq!(bindings.get(q.var("B").unwrap()), ast.children(root)[0]);
        assert_eq!(bindings.get(q.var("C").unwrap()), ast.children(root)[1]);
    }

    #[test]
    fn matches_with_reuses_scratch_across_patterns() {
        let (ast, root) = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let q = add_zero();
        let schema = ast.schema().clone();
        let q_var = Pattern::compile(&schema, node("Var", "V", [], tru()));
        let mut scratch = Bindings::default();
        assert!(matches_with(&ast, root, &q, &mut scratch));
        assert_eq!(scratch.get(q.var("A").unwrap()), root);
        // Re-drive the same scratch through a pattern with fewer vars…
        let b = ast.children(root)[1];
        assert!(matches_with(&ast, b, &q_var, &mut scratch));
        // …and back through the wider one; stale slots must not leak.
        assert!(!matches_with(&ast, b, &q, &mut scratch));
        assert!(matches_with(&ast, root, &q, &mut scratch));
    }

    #[test]
    fn constraint_rejects_nonzero_const() {
        let (ast, root) = tree(r#"(Arith op="+" (Const val=1) (Var name="b"))"#);
        assert!(!matches(&ast, root, &add_zero()));
    }

    #[test]
    fn label_mismatch_rejects() {
        let (ast, root) = tree(r#"(Arith op="+" (Var name="a") (Var name="b"))"#);
        assert!(!matches(&ast, root, &add_zero()));
    }

    #[test]
    fn op_constraint_rejects_mul() {
        let (ast, root) = tree(r#"(Arith op="*" (Const val=0) (Var name="b"))"#);
        assert!(!matches(&ast, root, &add_zero()));
    }

    #[test]
    fn arity_must_match_exactly() {
        // A childless Arith (unusual but schema-legal) can't match a
        // two-child pattern.
        let (ast, root) = tree(r#"(Arith op="+")"#);
        assert!(!matches(&ast, root, &add_zero()));
    }

    #[test]
    fn anynode_matches_everything() {
        let (ast, root) = tree(r#"(Arith op="*" (Const val=2) (Var name="y"))"#);
        let schema = ast.schema().clone();
        let q = Pattern::compile(&schema, any());
        for n in ast.descendants(root) {
            assert!(matches(&ast, n, &q));
        }
    }

    #[test]
    fn find_first_scans_preorder() {
        // Two eligible subtrees; the scan finds the outermost first.
        let (ast, root) = tree(r#"(Arith op="+" (Const val=0) (Var name="a"))"#);
        let q = add_zero();
        let (found, _) = find_first(&ast, root, &q).unwrap();
        assert_eq!(found, root);
    }

    #[test]
    fn match_set_of_nested_tree() {
        // Root: + over (inner: + over Const0, Var) and Var — wait, root's
        // left child is an Arith, so only the inner node matches.
        let (ast, root) =
            tree(r#"(Arith op="+" (Arith op="+" (Const val=0) (Var name="a")) (Var name="b"))"#);
        let q = add_zero();
        let found = match_set(&ast, root, &q);
        assert_eq!(found, vec![ast.children(root)[0]]);
        assert_eq!(find_all(&ast, root, &q).len(), 1);
    }

    #[test]
    fn null_root_yields_nothing() {
        let ast = Ast::new(arith_schema());
        let q = add_zero();
        assert!(find_first(&ast, NodeId::NULL, &q).is_none());
        assert!(match_set(&ast, NodeId::NULL, &q).is_empty());
    }

    #[test]
    fn deep_constraint_spanning_nodes() {
        // Constraint relating parent and child attributes:
        // Arith(op=o) over Const(v) with v = 2 regardless of op.
        let schema = arith_schema();
        let q = Pattern::compile(
            &schema,
            node(
                "Arith",
                "A",
                [node("Const", "B", [], tru()), any()],
                eq(attr("B", "val"), int(2)),
            ),
        );
        let (ast, root) = tree(r#"(Arith op="*" (Const val=2) (Var name="y"))"#);
        assert!(matches(&ast, root, &q));
        let (ast2, root2) = tree(r#"(Arith op="*" (Const val=3) (Var name="y"))"#);
        assert!(!matches(&ast2, root2, &q));
    }

    #[test]
    fn wildcard_positions_do_not_bind() {
        let schema = arith_schema();
        let q = Pattern::compile(&schema, node("Arith", "A", [any(), any()], tru()));
        let (ast, root) = tree(r#"(Arith op="+" (Const val=1) (Var name="x"))"#);
        let b = match_node(&ast, root, &q).unwrap();
        assert_eq!(b.len(), 1, "only A binds");
        assert_eq!(b.get(q.var("A").unwrap()), root);
    }
}
