//! A label-discriminated **match automaton** compiled from a rule set's
//! patterns.
//!
//! The naive consumers of this crate discover candidates by trying every
//! rule independently: R patterns × one [`matches_with`] walk each, per
//! touched node. This module compiles all R patterns **once** into a
//! single discriminating trie so one walk per node emits every candidate
//! `(RuleId, Bindings)` — O(matching work), not O(rules), per node.
//!
//! ## Construction
//!
//! Each pattern is linearized in preorder into tokens:
//!
//! - `Sym(label, arity)` for a `Match` node — the subject node must carry
//!   `label` and exactly `arity` children, which are then consumed by the
//!   following tokens (Figure 5 aligns children pairwise);
//! - `Star` for an `AnyNode` — consumes one whole subtree, bound or not.
//!
//! The token sequences are inserted into a trie whose states merge shared
//! prefixes: two rules that open with the same `Concat(BinTree(·,·),·)`
//! shape walk the same states until their structure (or nothing — two
//! rules can share the whole path and differ only in constraints)
//! diverges. Because a complete pattern's tokens consume the pending
//! frontier exactly, no complete sequence is a proper prefix of another;
//! accepting rules therefore sit on trie leaves, possibly several per
//! leaf.
//!
//! Binding slots and constraints are *not* part of the trie. Each
//! consumed token appends its subject node to a **trail**; per rule, a
//! precomputed `VarId → trail index` map reconstructs the [`Bindings`]
//! at the accept state, and the rule's collected constraints (including
//! cross-binding equality via attribute comparisons) are evaluated
//! against the reconstructed environment — identical semantics to the
//! two-phase [`matches_with`] evaluation.
//!
//! ## Matching
//!
//! [`MatchAutomaton::run_at`] anchors the automaton at one node and runs
//! a small backtracking DFS: at each state a `Sym` edge (selected by the
//! subject's label + arity — the discrimination) and a `Star` edge may
//! both apply. Work is bounded by the patterns' combined shape, not the
//! tree. All scratch space ([`AutomatonScratch`]) is caller-owned and
//! reused, so steady-state matching allocates nothing.
//!
//! [`MatchAutomaton::run_rule`] is the single-rule fast path: one rule's
//! linearization is a straight-line token program (no trie, no
//! branching), a drop-in replacement for [`matches_with`] at call sites
//! that re-check one known rule against one candidate node.
//!
//! [`matches_with`]: crate::eval::matches_with

use crate::constraint::Constraint;
use crate::eval::{Bindings, TreeAttrs};
use crate::query::{Pattern, PatternNode, VarId};
use tt_ast::{Ast, Label, NodeId};

/// One linearized pattern token (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    /// Structural step: the subject must carry this label and exactly
    /// this many children; the children become the next subjects.
    Sym(Label, u32),
    /// Wildcard step: consumes one whole subtree.
    Star,
}

/// One trie state. Outgoing `Sym` edges are kept sorted by
/// `(label, arity)` so the subject node's shape selects its edge by
/// binary search — the label discrimination that replaces the per-rule
/// loop.
#[derive(Debug, Default)]
struct State {
    /// `Sym` edges, sorted by `(label, arity)`; unique per token.
    syms: Vec<(Label, u32, u32)>,
    /// The merged wildcard edge, if any pattern has an `AnyNode` here.
    star: Option<u32>,
    /// Rules whose token sequence ends at this state.
    accepts: Vec<u32>,
}

/// Per-rule data the trie deliberately excludes: the straight-line token
/// program, binding reconstruction, and deferred constraints.
#[derive(Debug)]
struct RuleProgram {
    /// The rule's own linearization (the deterministic single-rule path).
    tokens: Vec<Tok>,
    /// `(variable, trail index)` pairs, in variable order.
    bind_map: Vec<(VarId, u32)>,
    /// Non-trivial constraints of the pattern's `Match` nodes, evaluated
    /// once every variable is bound (Figure 5's second phase).
    constraints: Vec<Constraint>,
    /// Slots the reconstructed [`Bindings`] needs.
    var_count: usize,
    /// `D(q)` — kept so consumers can size ancestor sweeps without
    /// holding the source pattern.
    depth: usize,
}

/// Reusable scratch for automaton runs. One instance serves any number
/// of [`MatchAutomaton::run_at`] / [`MatchAutomaton::run_rule`] /
/// [`MatchAutomaton::for_each_match`] calls, allocation-free once warm.
#[derive(Debug, Default)]
pub struct AutomatonScratch {
    /// Pending subjects (preorder frontier).
    stack: Vec<NodeId>,
    /// Nodes consumed so far, in token order.
    trail: Vec<NodeId>,
    /// Binding reconstruction target; holds the last accepted rule's
    /// environment after a successful [`MatchAutomaton::run_rule`].
    bindings: Bindings,
    /// Subtree-walk stack for [`MatchAutomaton::for_each_match`].
    walk: Vec<NodeId>,
}

impl AutomatonScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bindings left by the last successful
    /// [`MatchAutomaton::run_rule`] (mirrors the [`matches_with`]
    /// contract: valid only after a `true` return).
    ///
    /// [`matches_with`]: crate::eval::matches_with
    pub fn bindings(&self) -> &Bindings {
        &self.bindings
    }
}

/// The compiled automaton over one rule set's patterns. Rule ids are the
/// indices of the patterns passed to [`MatchAutomaton::compile`].
#[derive(Debug)]
pub struct MatchAutomaton {
    states: Vec<State>,
    programs: Vec<RuleProgram>,
    max_depth: usize,
}

impl MatchAutomaton {
    /// Compiles the automaton from the rule patterns, in rule-id order.
    /// All patterns must agree on one label interning (i.e. be compiled
    /// against the same schema, or structurally identical copies of it).
    pub fn compile<'a>(patterns: impl IntoIterator<Item = &'a Pattern>) -> MatchAutomaton {
        let mut states = vec![State::default()];
        let mut programs = Vec::new();
        for pattern in patterns {
            let rid = programs.len() as u32;
            let prog = linearize(pattern);
            // Thread the token sequence through the trie, reusing any
            // shared prefix and materializing states past the fork.
            let mut state = 0usize;
            for &tok in &prog.tokens {
                state = match tok {
                    Tok::Sym(label, arity) => {
                        let syms = &mut states[state].syms;
                        match syms.binary_search_by_key(&(label, arity), |&(l, a, _)| (l, a)) {
                            Ok(i) => syms[i].2 as usize,
                            Err(i) => {
                                let next = states.len() as u32;
                                states[state].syms.insert(i, (label, arity, next));
                                states.push(State::default());
                                next as usize
                            }
                        }
                    }
                    Tok::Star => match states[state].star {
                        Some(next) => next as usize,
                        None => {
                            let next = states.len() as u32;
                            states[state].star = Some(next);
                            states.push(State::default());
                            next as usize
                        }
                    },
                };
            }
            states[state].accepts.push(rid);
            programs.push(prog);
        }
        let max_depth = programs.iter().map(|p| p.depth).max().unwrap_or(0);
        MatchAutomaton {
            states,
            programs,
            max_depth,
        }
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.programs.len()
    }

    /// Number of trie states (the prefix-merge observable: structurally
    /// overlapping patterns share states, so this is strictly less than
    /// the sum of per-pattern token counts plus one whenever prefixes
    /// merge).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// `D(q)` of rule `rule`'s pattern.
    pub fn depth(&self, rule: usize) -> usize {
        self.programs[rule].depth
    }

    /// The deepest pattern's `D(q)` (0 for an empty rule set).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Runs the automaton anchored at `node`, emitting every rule whose
    /// pattern matches there together with its reconstructed bindings.
    /// The `&Bindings` argument is scratch-owned and only valid for the
    /// duration of the callback. Emission order follows the trie's DFS,
    /// not rule-id order; order-sensitive callers buffer and sort.
    pub fn run_at(
        &self,
        ast: &Ast,
        node: NodeId,
        scratch: &mut AutomatonScratch,
        out: &mut impl FnMut(usize, &Bindings),
    ) {
        if self.states[0].syms.is_empty() && self.states[0].star.is_none() {
            return;
        }
        scratch.stack.clear();
        scratch.trail.clear();
        scratch.stack.push(node);
        self.dfs(
            ast,
            0,
            &mut scratch.stack,
            &mut scratch.trail,
            &mut scratch.bindings,
            out,
        );
    }

    /// One DFS walk over the whole subtree under `root`: [`Self::run_at`]
    /// anchored at every descendant, in preorder. This is the "all
    /// candidates in one pass" entry the maintenance engines drive over a
    /// rebuilt tree or a delta's touched region.
    pub fn for_each_match(
        &self,
        ast: &Ast,
        root: NodeId,
        scratch: &mut AutomatonScratch,
        out: &mut impl FnMut(NodeId, usize, &Bindings),
    ) {
        if root.is_null() {
            return;
        }
        let AutomatonScratch {
            stack,
            trail,
            bindings,
            walk,
        } = scratch;
        walk.clear();
        walk.push(root);
        while let Some(n) = walk.pop() {
            for &c in ast.node(n).children().iter().rev() {
                walk.push(c);
            }
            stack.clear();
            trail.clear();
            stack.push(n);
            self.dfs(ast, 0, stack, trail, bindings, &mut |rid, b| out(n, rid, b));
        }
    }

    /// Single-rule straight-line matcher: does rule `rule` match at
    /// `node`? On `true`, `scratch.bindings()` holds the environment —
    /// the same contract as [`matches_with`].
    ///
    /// [`matches_with`]: crate::eval::matches_with
    pub fn run_rule(
        &self,
        ast: &Ast,
        node: NodeId,
        rule: usize,
        scratch: &mut AutomatonScratch,
    ) -> bool {
        let prog = &self.programs[rule];
        scratch.stack.clear();
        scratch.trail.clear();
        scratch.stack.push(node);
        for &tok in &prog.tokens {
            let n = scratch.stack.pop().expect("token stream outran frontier");
            match tok {
                Tok::Sym(label, arity) => {
                    let nd = ast.node(n);
                    if nd.label() != label || nd.children().len() != arity as usize {
                        return false;
                    }
                    scratch.trail.push(n);
                    for &c in nd.children().iter().rev() {
                        scratch.stack.push(c);
                    }
                }
                Tok::Star => scratch.trail.push(n),
            }
        }
        debug_assert!(scratch.stack.is_empty(), "pattern left frontier unconsumed");
        self.finish(ast, prog, &scratch.trail, &mut scratch.bindings)
    }

    /// The backtracking core: consume the top of `stack` along every
    /// applicable edge. Recursion depth is bounded by the longest token
    /// sequence (pattern size), not the subject tree.
    fn dfs(
        &self,
        ast: &Ast,
        state: u32,
        stack: &mut Vec<NodeId>,
        trail: &mut Vec<NodeId>,
        bindings: &mut Bindings,
        out: &mut impl FnMut(usize, &Bindings),
    ) {
        let st = &self.states[state as usize];
        let Some(&n) = stack.last() else {
            // Frontier consumed: every rule accepted here matched
            // structurally; its constraints decide.
            for &rid in &st.accepts {
                let prog = &self.programs[rid as usize];
                if self.finish(ast, prog, trail, bindings) {
                    out(rid as usize, bindings);
                }
            }
            return;
        };
        if !st.syms.is_empty() {
            let nd = ast.node(n);
            let key = (nd.label(), nd.children().len() as u32);
            if let Ok(i) = st.syms.binary_search_by_key(&key, |&(l, a, _)| (l, a)) {
                let next = st.syms[i].2;
                let arity = key.1 as usize;
                stack.pop();
                trail.push(n);
                for &c in nd.children().iter().rev() {
                    stack.push(c);
                }
                self.dfs(ast, next, stack, trail, bindings, out);
                stack.truncate(stack.len() - arity);
                trail.pop();
                stack.push(n);
            }
        }
        if let Some(next) = st.star {
            stack.pop();
            trail.push(n);
            self.dfs(ast, next, stack, trail, bindings, out);
            trail.pop();
            stack.push(n);
        }
    }

    /// Second phase: reconstruct the bindings from the trail and evaluate
    /// the rule's deferred constraints.
    fn finish(
        &self,
        ast: &Ast,
        prog: &RuleProgram,
        trail: &[NodeId],
        bindings: &mut Bindings,
    ) -> bool {
        bindings.reset_to(prog.var_count);
        for &(v, ti) in &prog.bind_map {
            bindings.bind(v, trail[ti as usize]);
        }
        let src = TreeAttrs { ast, bindings };
        prog.constraints.iter().all(|c| c.eval(&src))
    }
}

/// Preorder token linearization of one pattern, with its binding map and
/// deferred constraints.
fn linearize(pattern: &Pattern) -> RuleProgram {
    fn go(
        node: &PatternNode,
        tokens: &mut Vec<Tok>,
        bind_map: &mut Vec<(VarId, u32)>,
        constraints: &mut Vec<Constraint>,
    ) {
        let idx = tokens.len() as u32;
        match node {
            PatternNode::Any { var } => {
                tokens.push(Tok::Star);
                if let Some(v) = var {
                    bind_map.push((*v, idx));
                }
            }
            PatternNode::Match {
                label,
                var,
                children,
                constraint,
            } => {
                tokens.push(Tok::Sym(*label, children.len() as u32));
                bind_map.push((*var, idx));
                if !matches!(constraint, Constraint::True) {
                    constraints.push(constraint.clone());
                }
                for c in children {
                    go(c, tokens, bind_map, constraints);
                }
            }
        }
    }
    let mut tokens = Vec::new();
    let mut bind_map = Vec::new();
    let mut constraints = Vec::new();
    go(pattern.root(), &mut tokens, &mut bind_map, &mut constraints);
    RuleProgram {
        tokens,
        bind_map,
        constraints,
        var_count: pattern.var_count(),
        depth: pattern.depth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::eval::{match_node, matches_with};
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;

    fn tree(text: &str) -> (Ast, NodeId) {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        (ast, id)
    }

    /// The eval-module running example plus overlapping friends.
    fn rules() -> Vec<Pattern> {
        let schema = arith_schema();
        vec![
            // 0: Arith(+) over Const(0), Var — constraints on two levels.
            Pattern::compile(
                &schema,
                node(
                    "Arith",
                    "A",
                    [
                        node("Const", "B", [], eq(attr("B", "val"), int(0))),
                        node("Var", "C", [], tru()),
                    ],
                    eq(attr("A", "op"), str_("+")),
                ),
            ),
            // 1: same structure, different constraint — shares the whole
            // trie path with rule 0.
            Pattern::compile(
                &schema,
                node(
                    "Arith",
                    "A",
                    [node("Const", "B", [], tru()), node("Var", "C", [], tru())],
                    eq(attr("A", "op"), str_("*")),
                ),
            ),
            // 2: shares the Arith root edge, then diverges to wildcards.
            Pattern::compile(&schema, node("Arith", "A", [any_as("l"), any()], tru())),
            // 3: different root label entirely.
            Pattern::compile(&schema, node("Const", "K", [], tru())),
        ]
    }

    fn candidates(auto: &MatchAutomaton, ast: &Ast, node: NodeId) -> Vec<usize> {
        let mut scratch = AutomatonScratch::new();
        let mut hits = Vec::new();
        auto.run_at(ast, node, &mut scratch, &mut |rid, _| hits.push(rid));
        hits.sort_unstable();
        hits
    }

    #[test]
    fn multi_rule_run_agrees_with_per_rule_matching() {
        let patterns = rules();
        let auto = MatchAutomaton::compile(&patterns);
        let (ast, root) = tree(
            r#"(Arith op="+" (Arith op="*" (Const val=0) (Var name="a")) (Arith op="+" (Const val=0) (Var name="b")))"#,
        );
        for n in ast.descendants(root) {
            let expected: Vec<usize> = patterns
                .iter()
                .enumerate()
                .filter(|(_, p)| match_node(&ast, n, p).is_some())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(candidates(&auto, &ast, n), expected, "node {n:?}");
        }
    }

    #[test]
    fn emitted_bindings_match_the_naive_evaluator() {
        let patterns = rules();
        let auto = MatchAutomaton::compile(&patterns);
        let (ast, root) = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let mut scratch = AutomatonScratch::new();
        let mut seen = Vec::new();
        auto.run_at(&ast, root, &mut scratch, &mut |rid, b| {
            seen.push((rid, b.clone()));
        });
        seen.sort_by_key(|(rid, _)| *rid);
        let expected: Vec<(usize, Bindings)> = patterns
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match_node(&ast, root, p).map(|b| (i, b)))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn run_rule_mirrors_matches_with() {
        let patterns = rules();
        let auto = MatchAutomaton::compile(&patterns);
        let (ast, root) =
            tree(r#"(Arith op="*" (Const val=0) (Arith op="+" (Const val=0) (Var name="x")))"#);
        let mut scratch = AutomatonScratch::new();
        let mut naive = Bindings::default();
        for n in ast.descendants(root) {
            for (rid, p) in patterns.iter().enumerate() {
                let compiled = auto.run_rule(&ast, n, rid, &mut scratch);
                let reference = matches_with(&ast, n, p, &mut naive);
                assert_eq!(compiled, reference, "rule {rid} at {n:?}");
                if compiled {
                    assert_eq!(*scratch.bindings(), naive);
                }
            }
        }
    }

    #[test]
    fn shared_prefixes_merge_states() {
        let patterns = rules();
        let auto = MatchAutomaton::compile(&patterns);
        // Rules 0 and 1 share their full 3-token path; rule 2 shares the
        // root edge and adds its 2 wildcard states; rule 3 is disjoint.
        // Unmerged, 3+3+3+1 tokens would need 11 states; merged:
        // root + 3 + 2 + 1 = 7.
        assert_eq!(auto.rule_count(), 4);
        assert_eq!(auto.state_count(), 7);
        assert_eq!(auto.max_depth(), 1);
        assert_eq!(auto.depth(3), 0);
    }

    #[test]
    fn for_each_match_covers_the_subtree_in_one_walk() {
        let patterns = rules();
        let auto = MatchAutomaton::compile(&patterns);
        let (ast, root) =
            tree(r#"(Arith op="+" (Arith op="*" (Const val=1) (Var name="a")) (Var name="b"))"#);
        let mut scratch = AutomatonScratch::new();
        let mut hits = Vec::new();
        auto.for_each_match(&ast, root, &mut scratch, &mut |n, rid, _| {
            hits.push((n, rid));
        });
        hits.sort();
        let mut expected = Vec::new();
        for n in ast.descendants(root) {
            for (rid, p) in patterns.iter().enumerate() {
                if match_node(&ast, n, p).is_some() {
                    expected.push((n, rid));
                }
            }
        }
        expected.sort();
        assert_eq!(hits, expected);
        // Null roots are a quiet no-op, like the naive scanners.
        auto.for_each_match(&ast, NodeId::NULL, &mut scratch, &mut |_, _, _| {
            panic!("matched under a null root")
        });
    }

    #[test]
    fn empty_rule_set_matches_nothing() {
        let auto = MatchAutomaton::compile(std::iter::empty());
        let (ast, root) = tree(r#"(Const val=0)"#);
        assert!(candidates(&auto, &ast, root).is_empty());
        assert_eq!(auto.rule_count(), 0);
        assert_eq!(auto.max_depth(), 0);
    }

    #[test]
    fn wildcard_root_pattern_matches_everywhere() {
        let schema = arith_schema();
        let patterns = vec![Pattern::compile(&schema, any_as("q"))];
        let auto = MatchAutomaton::compile(&patterns);
        let (ast, root) = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        for n in ast.descendants(root) {
            assert_eq!(candidates(&auto, &ast, n), vec![0]);
        }
    }
}
