//! The AST pattern-matching query language.
//!
//! Implements the paper's §2.1:
//!
//! - [`query::Pattern`] — the grammar `Q : AnyNode | Match(ℓ, i, [q…], θ)`
//!   (Definition 2), compiled from the declarative [`dsl`] spec.
//! - [`constraint::Constraint`] — the constraint grammar `Θ` (Figure 4):
//!   comparisons and arithmetic over `var.attr` atoms, boolean connectives,
//!   plus named *host predicates* standing in for the native side
//!   conditions the paper's Appendix D patterns carry (e.g.
//!   `canPushThrough(...)`, `o2 ⊆ r1`).
//! - [`eval`] — the Figure 5 semantics: `⟦q(N)⟧ = (T, Γ) | (F, ∅)`, the
//!   match set `q(N)` over `Desc(N)` (Definition 3), and the naive
//!   full-tree scan that is the paper's **Naive** baseline.
//! - [`sql`] — the Figure 6 reduction of a pattern to an SPJ query over
//!   the relational encoding, consumed by the bolt-on IVM engines.
//! - [`automaton`] — the whole rule set compiled into one
//!   label-discriminated match automaton: one walk per node emits every
//!   candidate `(RuleId, Bindings)` instead of R independent pattern
//!   evaluations.

pub mod automaton;
pub mod constraint;
pub mod dsl;
pub mod eval;
pub mod query;
pub mod sql;

pub use automaton::{AutomatonScratch, MatchAutomaton};
pub use constraint::{ArithOp, Atom, AttrSource, CmpOp, Constraint, HostPred};
pub use eval::{
    find_all, find_first, match_node, match_set, matches, matches_with, Bindings, TreeAttrs,
};
pub use query::{Pattern, PatternNode, VarId};
pub use sql::{ChildJoin, SqlAtom, SqlQuery};
