//! Declarative pattern-authoring DSL.
//!
//! Patterns are written as plain spec values with string labels/variables
//! and compiled by [`Pattern::compile`](crate::Pattern::compile). The
//! running example (paper Example 2.3) reads almost like the paper:
//!
//! ```
//! use tt_pattern::dsl::*;
//! use tt_pattern::Pattern;
//! let schema = tt_ast::schema::arith_schema();
//! let q = Pattern::compile(&schema, node(
//!     "Arith", "A",
//!     [node("Const", "B", [], eq(attr("B", "val"), int(0))),
//!      node("Var",   "C", [], tru())],
//!     eq(attr("A", "op"), str_("+")),
//! ));
//! assert_eq!(q.depth(), 1);
//! ```

use crate::constraint::{ArithOp, CmpOp, HostPred};
use tt_ast::Value;

/// Un-compiled pattern spec (string labels and variables).
#[derive(Debug, Clone)]
pub enum PatSpec {
    /// `AnyNode`, optionally binding the matched subtree to a name so a
    /// rewrite generator can `Reuse` it.
    Any {
        /// Optional wildcard binder.
        var: Option<String>,
    },
    /// `Match(label, var, children, constraint)`.
    Match {
        /// Label name (resolved against the schema at compile time).
        label: String,
        /// Variable name.
        var: String,
        /// Child pattern specs.
        children: Vec<PatSpec>,
        /// Constraint spec.
        constraint: CSpec,
    },
}

/// Un-compiled constraint spec.
#[derive(Debug, Clone)]
pub enum CSpec {
    /// `T`
    True,
    /// `F`
    False,
    /// Comparison of two atoms.
    Cmp(CmpOp, ASpec, ASpec),
    /// Conjunction.
    And(Box<CSpec>, Box<CSpec>),
    /// Disjunction.
    Or(Box<CSpec>, Box<CSpec>),
    /// Negation.
    Not(Box<CSpec>),
    /// Named host predicate (compiled through unchanged).
    Host(HostPred),
}

/// Un-compiled atom spec.
#[derive(Debug, Clone)]
pub enum ASpec {
    /// Literal.
    Const(Value),
    /// `var.attr` reference.
    Attr(String, String),
    /// Arithmetic.
    Arith(ArithOp, Box<ASpec>, Box<ASpec>),
}

/// `Match(label, var, children, constraint)`.
pub fn node(
    label: &str,
    var: &str,
    children: impl IntoIterator<Item = PatSpec>,
    constraint: CSpec,
) -> PatSpec {
    PatSpec::Match {
        label: label.to_string(),
        var: var.to_string(),
        children: children.into_iter().collect(),
        constraint,
    }
}

/// `AnyNode`.
pub fn any() -> PatSpec {
    PatSpec::Any { var: None }
}

/// `AnyNode` binding the matched subtree to `var` (so generators can
/// `Reuse` it — the paper writes these as `q₁`, `q₂` in its JITD rules).
pub fn any_as(var: &str) -> PatSpec {
    PatSpec::Any {
        var: Some(var.to_string()),
    }
}

/// Constraint `T`.
pub fn tru() -> CSpec {
    CSpec::True
}

/// Constraint `F`.
pub fn fls() -> CSpec {
    CSpec::False
}

/// `a = b`.
pub fn eq(a: ASpec, b: ASpec) -> CSpec {
    CSpec::Cmp(CmpOp::Eq, a, b)
}

/// `a ≠ b`.
pub fn ne(a: ASpec, b: ASpec) -> CSpec {
    CSpec::Cmp(CmpOp::Ne, a, b)
}

/// `a < b`.
pub fn lt(a: ASpec, b: ASpec) -> CSpec {
    CSpec::Cmp(CmpOp::Lt, a, b)
}

/// `a ≤ b`.
pub fn le(a: ASpec, b: ASpec) -> CSpec {
    CSpec::Cmp(CmpOp::Le, a, b)
}

/// `a > b`.
pub fn gt(a: ASpec, b: ASpec) -> CSpec {
    CSpec::Cmp(CmpOp::Gt, a, b)
}

/// `a ≥ b`.
pub fn ge(a: ASpec, b: ASpec) -> CSpec {
    CSpec::Cmp(CmpOp::Ge, a, b)
}

/// `Θ ∧ Θ`.
pub fn and(a: CSpec, b: CSpec) -> CSpec {
    CSpec::And(Box::new(a), Box::new(b))
}

/// `Θ ∨ Θ`.
pub fn or(a: CSpec, b: CSpec) -> CSpec {
    CSpec::Or(Box::new(a), Box::new(b))
}

/// `¬Θ`.
pub fn not(c: CSpec) -> CSpec {
    CSpec::Not(Box::new(c))
}

/// Named host predicate.
pub fn host(h: HostPred) -> CSpec {
    CSpec::Host(h)
}

/// `var.attr` atom.
pub fn attr(var: &str, attr_name: &str) -> ASpec {
    ASpec::Attr(var.to_string(), attr_name.to_string())
}

/// Integer literal atom.
pub fn int(v: i64) -> ASpec {
    ASpec::Const(Value::Int(v))
}

/// String literal atom.
pub fn str_(v: &str) -> ASpec {
    ASpec::Const(Value::str(v))
}

/// Boolean literal atom.
pub fn boolean(v: bool) -> ASpec {
    ASpec::Const(Value::Bool(v))
}

/// Arbitrary value literal atom.
pub fn val(v: Value) -> ASpec {
    ASpec::Const(v)
}

/// `a + b`.
pub fn add(a: ASpec, b: ASpec) -> ASpec {
    ASpec::Arith(ArithOp::Add, Box::new(a), Box::new(b))
}

/// `a − b`.
pub fn sub(a: ASpec, b: ASpec) -> ASpec {
    ASpec::Arith(ArithOp::Sub, Box::new(a), Box::new(b))
}

/// `a × b`.
pub fn mul(a: ASpec, b: ASpec) -> ASpec {
    ASpec::Arith(ArithOp::Mul, Box::new(a), Box::new(b))
}

/// `a ÷ b`.
pub fn div(a: ASpec, b: ASpec) -> ASpec {
    ASpec::Arith(ArithOp::Div, Box::new(a), Box::new(b))
}
