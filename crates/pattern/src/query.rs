//! The pattern grammar `Q` (Definition 2) and compiled [`Pattern`]s.

use crate::constraint::Constraint;
use crate::dsl::{CSpec, PatSpec};
use std::fmt;
use std::sync::Arc;
use tt_ast::{FxHashMap, Label, Schema};

/// A node variable (`i ∈ Σ_I`), dense per pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u16);

/// One node of a compiled pattern:
/// `AnyNode` or `Match(label, var, children, constraint)`.
#[derive(Debug, Clone)]
pub enum PatternNode {
    /// Matches any node. An optional binder names the matched subtree so
    /// rewrite generators can `Reuse` it (the paper's rules reference
    /// wildcard positions by name, e.g. `Reuse(q₁)` in
    /// PushDownSingletonBtreeLeft).
    Any {
        /// Optional binder for the wildcard-matched subtree.
        var: Option<VarId>,
    },
    /// Structural match (label, binder, child patterns, constraint).
    Match {
        /// Required node label `ℓ_q`.
        label: Label,
        /// The node variable `i` bound to the matched node.
        var: VarId,
        /// Child patterns `[q_1 … q_n]`; the node must have exactly `n`
        /// children (Figure 5 aligns them pairwise).
        children: Vec<PatternNode>,
        /// Constraint `θ` over this node's and descendants' attributes.
        constraint: Constraint,
    },
}

impl PatternNode {
    /// Pattern depth `D(q)` (Definition 5): edges on the longest downward
    /// path. `AnyNode` and childless `Match` have depth 0.
    pub fn depth(&self) -> usize {
        match self {
            PatternNode::Any { .. } => 0,
            PatternNode::Match { children, .. } => {
                children.iter().map(|c| 1 + c.depth()).max().unwrap_or(0)
            }
        }
    }
}

/// A compiled pattern query: the tree plus its variable table.
#[derive(Debug, Clone)]
pub struct Pattern {
    schema: Arc<Schema>,
    root: PatternNode,
    /// Variable display names, indexed by `VarId`.
    var_names: Vec<String>,
    depth: usize,
}

impl Pattern {
    /// Compiles a [`dsl`](crate::dsl) spec against `schema`. Interns
    /// labels, attribute names, and node variables; panics on unknown
    /// labels/attributes or duplicate variable names (authoring errors).
    pub fn compile(schema: &Arc<Schema>, spec: PatSpec) -> Pattern {
        let mut vars: Vec<String> = Vec::new();
        let mut by_name: FxHashMap<String, VarId> = FxHashMap::default();
        let root = compile_node(schema, spec, &mut vars, &mut by_name);
        let depth = root.depth();
        Pattern {
            schema: schema.clone(),
            root,
            var_names: vars,
            depth,
        }
    }

    /// The pattern tree.
    #[inline]
    pub fn root(&self) -> &PatternNode {
        &self.root
    }

    /// `D(q)`.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The schema the pattern was compiled against.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of node variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// A variable's display name.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_names[var.0 as usize]
    }

    /// Looks up a variable by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u16))
    }

    /// The root label, if the root is a `Match` (None for `AnyNode`).
    pub fn root_label(&self) -> Option<Label> {
        match &self.root {
            PatternNode::Any { .. } => None,
            PatternNode::Match { label, .. } => Some(*label),
        }
    }

    /// The root binder variable, if any.
    pub fn root_var(&self) -> Option<VarId> {
        match &self.root {
            PatternNode::Any { var } => *var,
            PatternNode::Match { var, .. } => Some(*var),
        }
    }

    /// The pattern node bound by `var`, if any (searching the tree).
    pub fn node_of_var(&self, var: VarId) -> Option<&PatternNode> {
        fn go(node: &PatternNode, var: VarId) -> Option<&PatternNode> {
            match node {
                PatternNode::Any { var: v } => (*v == Some(var)).then_some(node),
                PatternNode::Match {
                    var: v, children, ..
                } => {
                    if *v == var {
                        Some(node)
                    } else {
                        children.iter().find_map(|c| go(c, var))
                    }
                }
            }
        }
        go(&self.root, var)
    }

    /// All labels mentioned by `Match` nodes (with repetition).
    pub fn labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        collect_labels(&self.root, &mut out);
        out
    }

    /// Compiles an additional constraint spec against this pattern's
    /// variable table (used for the "precise" side conditions an
    /// optimizer evaluates inside a rule body, separately from the
    /// structural guard).
    pub fn compile_extra_constraint(&self, spec: CSpec) -> Constraint {
        let by_name: FxHashMap<String, VarId> = self
            .var_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), VarId(i as u16)))
            .collect();
        compile_constraint(&self.schema, spec, &by_name)
    }
}

fn compile_node(
    schema: &Arc<Schema>,
    spec: PatSpec,
    vars: &mut Vec<String>,
    by_name: &mut FxHashMap<String, VarId>,
) -> PatternNode {
    fn intern_var(
        vars: &mut Vec<String>,
        by_name: &mut FxHashMap<String, VarId>,
        var: String,
    ) -> VarId {
        assert!(
            !by_name.contains_key(&var),
            "pattern variable {var:?} bound twice"
        );
        let var_id = VarId(u16::try_from(vars.len()).expect("too many pattern vars"));
        vars.push(var.clone());
        by_name.insert(var, var_id);
        var_id
    }
    match spec {
        PatSpec::Any { var } => PatternNode::Any {
            var: var.map(|v| intern_var(vars, by_name, v)),
        },
        PatSpec::Match {
            label,
            var,
            children,
            constraint,
        } => {
            let label_id = schema.expect_label(&label);
            let var_id = intern_var(vars, by_name, var);
            let children: Vec<PatternNode> = children
                .into_iter()
                .map(|c| compile_node(schema, c, vars, by_name))
                .collect();
            assert!(
                children.len() <= schema.def(label_id).max_children,
                "pattern on {} lists more children than the schema allows",
                schema.label_name(label_id)
            );
            let constraint = compile_constraint(schema, constraint, by_name);
            PatternNode::Match {
                label: label_id,
                var: var_id,
                children,
                constraint,
            }
        }
    }
}

fn compile_constraint(
    schema: &Arc<Schema>,
    spec: CSpec,
    by_name: &FxHashMap<String, VarId>,
) -> Constraint {
    use crate::constraint::{Atom, Constraint as C};
    fn atom(
        schema: &Arc<Schema>,
        spec: crate::dsl::ASpec,
        by_name: &FxHashMap<String, VarId>,
    ) -> Atom {
        use crate::dsl::ASpec;
        match spec {
            ASpec::Const(v) => Atom::Const(v),
            ASpec::Attr(var, attr) => {
                let var_id = *by_name
                    .get(&var)
                    .unwrap_or_else(|| panic!("constraint references unbound variable {var:?}"));
                Atom::Attr(var_id, schema.expect_attr(&attr))
            }
            ASpec::Arith(op, a, b) => Atom::Arith(
                op,
                Box::new(atom(schema, *a, by_name)),
                Box::new(atom(schema, *b, by_name)),
            ),
        }
    }
    match spec {
        CSpec::True => C::True,
        CSpec::False => C::False,
        CSpec::Cmp(op, a, b) => C::Cmp(op, atom(schema, a, by_name), atom(schema, b, by_name)),
        CSpec::And(a, b) => {
            compile_constraint(schema, *a, by_name).and(compile_constraint(schema, *b, by_name))
        }
        CSpec::Or(a, b) => C::Or(
            Box::new(compile_constraint(schema, *a, by_name)),
            Box::new(compile_constraint(schema, *b, by_name)),
        ),
        CSpec::Not(c) => C::Not(Box::new(compile_constraint(schema, *c, by_name))),
        CSpec::Host(h) => C::Host(h),
    }
}

fn collect_labels(node: &PatternNode, out: &mut Vec<Label>) {
    if let PatternNode::Match {
        label, children, ..
    } = node
    {
        out.push(*label);
        for c in children {
            collect_labels(c, out);
        }
    }
}

impl Pattern {
    /// All pattern variables that name `Match` positions (as opposed to
    /// named wildcards), in preorder. These are the positions whose nodes
    /// a rewrite removes unless it reuses them.
    pub fn match_vars(&self) -> Vec<VarId> {
        fn go(node: &PatternNode, out: &mut Vec<VarId>) {
            if let PatternNode::Match { var, children, .. } = node {
                out.push(*var);
                for c in children {
                    go(c, out);
                }
            }
        }
        let mut out = Vec::new();
        go(&self.root, &mut out);
        out
    }

    /// All named-wildcard variables, in preorder.
    pub fn wildcard_vars(&self) -> Vec<VarId> {
        fn go(node: &PatternNode, out: &mut Vec<VarId>) {
            match node {
                PatternNode::Any { var: Some(v) } => out.push(*v),
                PatternNode::Any { var: None } => {}
                PatternNode::Match { children, .. } => {
                    for c in children {
                        go(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(&self.root, &mut out);
        out
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Pattern, node: &PatternNode, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match node {
                PatternNode::Any { var: None } => write!(f, "_"),
                PatternNode::Any { var: Some(v) } => write!(f, "{}@_", p.var_name(*v)),
                PatternNode::Match {
                    label,
                    var,
                    children,
                    constraint,
                } => {
                    write!(f, "{}@{}", p.var_name(*var), p.schema.label_name(*label))?;
                    if !children.is_empty() {
                        write!(f, "(")?;
                        for (i, c) in children.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            go(p, c, f)?;
                        }
                        write!(f, ")")?;
                    }
                    if !matches!(constraint, Constraint::True) {
                        write!(f, "{{…}}")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, &self.root, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use tt_ast::schema::arith_schema;

    /// Example 2.3's pattern: Arith(+) over Const(0) and Var.
    pub(crate) fn add_zero_pattern() -> Pattern {
        let schema = arith_schema();
        Pattern::compile(
            &schema,
            node(
                "Arith",
                "A",
                [
                    node("Const", "B", [], eq(attr("B", "val"), int(0))),
                    node("Var", "C", [], tru()),
                ],
                eq(attr("A", "op"), str_("+")),
            ),
        )
    }

    #[test]
    fn compile_example_2_3() {
        let p = add_zero_pattern();
        assert_eq!(p.var_count(), 3);
        assert_eq!(p.var_name(VarId(0)), "A");
        assert_eq!(p.var("C"), Some(VarId(2)));
        assert_eq!(p.depth(), 1, "Example 5.5: the running example has depth 1");
        assert_eq!(p.root_label(), Some(p.schema().expect_label("Arith")));
        assert_eq!(p.root_var(), Some(VarId(0)));
        assert_eq!(p.labels().len(), 3);
    }

    #[test]
    fn depth_of_deeper_patterns() {
        let schema = arith_schema();
        // Arith over (Arith over Const, Any), Any — depth 2.
        let p = Pattern::compile(
            &schema,
            node(
                "Arith",
                "A",
                [
                    node("Arith", "B", [node("Const", "C", [], tru()), any()], tru()),
                    any(),
                ],
                tru(),
            ),
        );
        assert_eq!(p.depth(), 2);
        // A childless match and a bare wildcard are depth 0.
        assert_eq!(
            Pattern::compile(&schema, node("Const", "X", [], tru())).depth(),
            0
        );
        assert_eq!(Pattern::compile(&schema, any()).depth(), 0);
    }

    #[test]
    fn anynode_root_has_no_label_or_var() {
        let schema = arith_schema();
        let p = Pattern::compile(&schema, any());
        assert_eq!(p.root_label(), None);
        assert_eq!(p.root_var(), None);
        assert_eq!(p.var_count(), 0);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn duplicate_variable_rejected() {
        let schema = arith_schema();
        let _ = Pattern::compile(
            &schema,
            node("Arith", "A", [node("Const", "A", [], tru()), any()], tru()),
        );
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn constraint_on_unbound_var_rejected() {
        let schema = arith_schema();
        let _ = Pattern::compile(
            &schema,
            node("Const", "B", [], eq(attr("Z", "val"), int(0))),
        );
    }

    #[test]
    #[should_panic(expected = "more children than the schema allows")]
    fn overlong_child_list_rejected() {
        let schema = arith_schema();
        let _ = Pattern::compile(&schema, node("Const", "B", [any()], tru()));
    }

    #[test]
    fn display_is_readable() {
        let p = add_zero_pattern();
        let s = p.to_string();
        assert!(s.contains("A@Arith"));
        assert!(s.contains("B@Const"));
    }

    #[test]
    fn match_and_wildcard_var_partition() {
        let schema = arith_schema();
        let p = Pattern::compile(
            &schema,
            node(
                "Arith",
                "A",
                [node("Const", "B", [], tru()), any_as("q")],
                tru(),
            ),
        );
        let names = |vars: Vec<VarId>| -> Vec<String> {
            vars.iter().map(|&v| p.var_name(v).to_string()).collect()
        };
        assert_eq!(names(p.match_vars()), vec!["A", "B"]);
        assert_eq!(names(p.wildcard_vars()), vec!["q"]);
        // Unnamed wildcards are invisible to both.
        let p2 = Pattern::compile(&schema, node("Arith", "A", [any(), any()], tru()));
        assert_eq!(p2.match_vars().len(), 1);
        assert!(p2.wildcard_vars().is_empty());
    }

    #[test]
    fn node_of_var_finds_positions() {
        let schema = arith_schema();
        let p = Pattern::compile(
            &schema,
            node(
                "Arith",
                "A",
                [node("Const", "B", [], tru()), any_as("q")],
                tru(),
            ),
        );
        let b = p.var("B").unwrap();
        assert!(matches!(p.node_of_var(b), Some(PatternNode::Match { .. })));
        let q = p.var("q").unwrap();
        assert!(matches!(p.node_of_var(q), Some(PatternNode::Any { .. })));
        assert!(p.node_of_var(VarId(99)).is_none());
    }

    #[test]
    fn compile_extra_constraint_resolves_same_vars() {
        let p = add_zero_pattern();
        let extra = p.compile_extra_constraint(eq(attr("B", "val"), int(0)));
        let mut vars = Vec::new();
        extra.vars(&mut vars);
        assert_eq!(vars, vec![p.var("B").unwrap()]);
    }
}
