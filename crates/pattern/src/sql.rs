//! Reduction of patterns to SPJ queries (paper Figure 6).
//!
//! A pattern with `k` `Match` nodes becomes a `k`-ary join over the
//! relations `R_ℓ` for each `Match` label; join constraints come from
//! parent/child slots (`parent.child_x = child.id`), and pattern
//! constraints transfer to the `WHERE` clause. `AnyNode` contributes
//! nothing (`join(a, AnyNode) = T`).
//!
//! One addition beyond the paper's sketch: each `Match` node requires its
//! node to have *exactly* the pattern's arity (Figure 5 aligns children
//! pairwise), so the reduction records an arity requirement per atom; the
//! relational encoding stores the child count alongside the child columns.

use crate::constraint::Constraint;
use crate::query::{Pattern, PatternNode, VarId};
use tt_ast::Label;

/// `(R_ℓ AS i)` — one relation atom of the join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlAtom {
    /// The relation's label.
    pub label: Label,
    /// The pattern variable aliasing it.
    pub var: VarId,
    /// Required child count of matching nodes.
    pub arity: usize,
}

/// `parent.child_index = child.id` — a parent/child equi-join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildJoin {
    /// The parent-side variable.
    pub parent: VarId,
    /// Which child slot (0-based; the paper's `child_x` is 1-based).
    pub child_index: usize,
    /// The child-side variable.
    pub child: VarId,
}

/// The reduced query: `SELECT * FROM atoms WHERE joins ∧ filters`.
#[derive(Debug, Clone)]
pub struct SqlQuery {
    /// Join atoms in pattern preorder (root first).
    pub atoms: Vec<SqlAtom>,
    /// Parent/child equi-joins.
    pub joins: Vec<ChildJoin>,
    /// Per-`Match` constraints (`θ` fragments), paired with the variable
    /// of the `Match` node that carried them.
    pub filters: Vec<(VarId, Constraint)>,
    /// Size of the pattern's variable space (join rows are indexed by
    /// `VarId`; named-wildcard slots stay unbound in relational rows).
    pub var_space: usize,
}

impl SqlQuery {
    /// Reduces `pattern` per Figure 6. Panics if the pattern root is
    /// `AnyNode` (such a "query" matches everything; the paper's reduction
    /// yields the empty join, which no bolt-on engine materializes), or if
    /// a constraint references a named wildcard (whose label — hence
    /// relation — is unknown, so no relational image can evaluate it).
    pub fn from_pattern(pattern: &Pattern) -> SqlQuery {
        assert!(
            !matches!(pattern.root(), PatternNode::Any { .. }),
            "cannot reduce a bare AnyNode pattern to SQL"
        );
        let mut q = SqlQuery {
            atoms: Vec::new(),
            joins: Vec::new(),
            filters: Vec::new(),
            var_space: pattern.var_count(),
        };
        reduce(pattern.root(), &mut q);
        let atom_vars: Vec<VarId> = q.atoms.iter().map(|a| a.var).collect();
        for (_, c) in &q.filters {
            let mut used = Vec::new();
            c.vars(&mut used);
            for v in used {
                assert!(
                    atom_vars.contains(&v),
                    "constraint references wildcard variable {:?}, which has no relation",
                    pattern.var_name(v)
                );
            }
        }
        q
    }

    /// The variable of the atom whose tuple *is* the match root.
    pub fn root_var(&self) -> VarId {
        self.atoms[0].var
    }

    /// Number of join atoms (the paper's join width `k`).
    pub fn width(&self) -> usize {
        self.atoms.len()
    }

    /// The atom aliased by `var`.
    pub fn atom(&self, var: VarId) -> &SqlAtom {
        self.atoms
            .iter()
            .find(|a| a.var == var)
            .expect("variable not in query")
    }
}

fn reduce(node: &PatternNode, q: &mut SqlQuery) {
    let PatternNode::Match {
        label,
        var,
        children,
        constraint,
    } = node
    else {
        return; // AnyNode (named or not): R_q = ∅, θ_q = T
    };
    q.atoms.push(SqlAtom {
        label: *label,
        var: *var,
        arity: children.len(),
    });
    if !matches!(constraint, Constraint::True) {
        q.filters.push((*var, constraint.clone()));
    }
    for (idx, child) in children.iter().enumerate() {
        if let PatternNode::Match { var: child_var, .. } = child {
            q.joins.push(ChildJoin {
                parent: *var,
                child_index: idx,
                child: *child_var,
            });
        }
        reduce(child, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::Pattern;
    use tt_ast::schema::arith_schema;

    #[test]
    fn example_3_1_reduction() {
        // SELECT * FROM Arith a, Const b, Var c
        // WHERE a.child1 = b.id AND a.child2 = c.id
        //   AND a.op = '+' AND b.val = 0
        let schema = arith_schema();
        let p = Pattern::compile(
            &schema,
            node(
                "Arith",
                "a",
                [
                    node("Const", "b", [], eq(attr("b", "val"), int(0))),
                    node("Var", "c", [], tru()),
                ],
                eq(attr("a", "op"), str_("+")),
            ),
        );
        let q = SqlQuery::from_pattern(&p);
        assert_eq!(q.width(), 3);
        let labels: Vec<&str> = q.atoms.iter().map(|a| schema.label_name(a.label)).collect();
        assert_eq!(labels, vec!["Arith", "Const", "Var"]);
        let a = p.var("a").unwrap();
        let b = p.var("b").unwrap();
        let c = p.var("c").unwrap();
        assert_eq!(q.root_var(), a);
        assert_eq!(
            q.joins,
            vec![
                ChildJoin {
                    parent: a,
                    child_index: 0,
                    child: b
                },
                ChildJoin {
                    parent: a,
                    child_index: 1,
                    child: c
                },
            ]
        );
        // Two θ fragments: a.op='+' and b.val=0. Var's T is dropped.
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.atom(a).arity, 2);
        assert_eq!(q.atom(b).arity, 0);
    }

    #[test]
    fn anynode_children_contribute_no_joins() {
        let schema = arith_schema();
        let p = Pattern::compile(&schema, node("Arith", "a", [any(), any()], tru()));
        let q = SqlQuery::from_pattern(&p);
        assert_eq!(q.width(), 1);
        assert!(q.joins.is_empty());
        assert!(q.filters.is_empty());
        assert_eq!(
            q.atom(p.var("a").unwrap()).arity,
            2,
            "arity still counts wildcards"
        );
    }

    #[test]
    fn nested_patterns_produce_chained_joins() {
        let schema = arith_schema();
        let p = Pattern::compile(
            &schema,
            node(
                "Arith",
                "a",
                [
                    node("Arith", "b", [node("Const", "c", [], tru()), any()], tru()),
                    any(),
                ],
                tru(),
            ),
        );
        let q = SqlQuery::from_pattern(&p);
        assert_eq!(q.width(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].parent, p.var("a").unwrap());
        assert_eq!(q.joins[1].parent, p.var("b").unwrap());
        assert_eq!(q.joins[1].child, p.var("c").unwrap());
    }

    #[test]
    #[should_panic(expected = "bare AnyNode")]
    fn bare_any_rejected() {
        let schema = arith_schema();
        let p = Pattern::compile(&schema, any());
        let _ = SqlQuery::from_pattern(&p);
    }
}
