//! The constraint grammar `Θ` (paper Figure 4) and its evaluation.
//!
//! ```text
//! Θ    : atom = atom | atom < atom | Θ ∧ Θ | Θ ∨ Θ | ¬Θ | T | F
//! atom : const | Σ_I.Σ_M | atom [+,−,×,÷] atom
//! ```
//!
//! The grammar "is expressive enough to capture the full range of
//! comparisons", so we provide all six comparison operators directly.
//! Appendix-D patterns additionally carry native side conditions
//! (`o2 ⊆ r1`, `canPushThrough(j)`); those are modeled as named
//! [`HostPred`]s over the bound attribute values.
//!
//! Evaluation is generic over [`AttrSource`] — the tree engines resolve
//! `i.x` against the live AST, while the bolt-on relational engines
//! resolve it against their own tuple copies. That genericity is what lets
//! one constraint definition serve every strategy in the evaluation.

use crate::query::VarId;
use std::fmt;
use std::sync::Arc;
use tt_ast::{AttrName, Value};

/// Resolves `var.attr` atoms during constraint evaluation.
pub trait AttrSource {
    /// The value of attribute `attr` on the node bound to `var`.
    fn attr_of(&self, var: VarId, attr: AttrName) -> Value;
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to an `Ordering`.
    #[inline]
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Arithmetic operators on integer atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `−`
    Sub,
    /// `×`
    Mul,
    /// `÷` (integer division; division by zero evaluates the atom to None)
    Div,
}

/// An atom: constant, attribute reference, or integer arithmetic.
#[derive(Debug, Clone)]
pub enum Atom {
    /// Literal value.
    Const(Value),
    /// `i.x` — attribute `x` of the node bound to variable `i`.
    Attr(VarId, AttrName),
    /// Integer arithmetic over two atoms.
    Arith(ArithOp, Box<Atom>, Box<Atom>),
}

impl Atom {
    /// Evaluates the atom. Returns `None` on type mismatches (arithmetic
    /// over non-integers, division by zero) — a failed atom makes the
    /// enclosing comparison false, matching the paper's "otherwise (F, ∅)"
    /// clause.
    pub fn eval(&self, src: &dyn AttrSource) -> Option<Value> {
        match self {
            Atom::Const(v) => Some(v.clone()),
            Atom::Attr(var, attr) => Some(src.attr_of(*var, *attr)),
            Atom::Arith(op, a, b) => {
                let (Value::Int(a), Value::Int(b)) = (a.eval(src)?, b.eval(src)?) else {
                    return None;
                };
                let out = match op {
                    ArithOp::Add => a.checked_add(b)?,
                    ArithOp::Sub => a.checked_sub(b)?,
                    ArithOp::Mul => a.checked_mul(b)?,
                    ArithOp::Div => a.checked_div(b)?,
                };
                Some(Value::Int(out))
            }
        }
    }
}

/// The shared function type behind a [`HostPred`].
pub type HostPredFn = dyn Fn(&dyn AttrSource) -> bool + Send + Sync;

/// A named native predicate over the bound attribute values.
///
/// The function sees only attribute values through [`AttrSource`], so the
/// same predicate evaluates identically against the live AST and against a
/// bolt-on engine's shadow tuples.
#[derive(Clone)]
pub struct HostPred {
    /// Display name (e.g. `"arrayLen>threshold"`).
    pub name: &'static str,
    /// The predicate.
    pub test: Arc<HostPredFn>,
}

impl HostPred {
    /// Creates a named host predicate.
    pub fn new(
        name: &'static str,
        test: impl Fn(&dyn AttrSource) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name,
            test: Arc::new(test),
        }
    }
}

impl fmt::Debug for HostPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host:{}", self.name)
    }
}

/// The constraint grammar `Θ`.
#[derive(Debug, Clone, Default)]
pub enum Constraint {
    /// `T`
    #[default]
    True,
    /// `F`
    False,
    /// `atom ⋈ atom`
    Cmp(CmpOp, Atom, Atom),
    /// `Θ ∧ Θ`
    And(Box<Constraint>, Box<Constraint>),
    /// `Θ ∨ Θ`
    Or(Box<Constraint>, Box<Constraint>),
    /// `¬Θ`
    Not(Box<Constraint>),
    /// Named native predicate (Appendix-D style side condition).
    Host(HostPred),
}

impl Constraint {
    /// Evaluates the constraint against bound attribute values.
    pub fn eval(&self, src: &dyn AttrSource) -> bool {
        match self {
            Constraint::True => true,
            Constraint::False => false,
            Constraint::Cmp(op, a, b) => {
                let (Some(a), Some(b)) = (a.eval(src), b.eval(src)) else {
                    return false;
                };
                match op {
                    // Equality is defined for every value kind.
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    // Ordering comparisons only for same-kind scalars.
                    _ => a.partial_cmp_scalar(&b).is_some_and(|ord| op.test(ord)),
                }
            }
            Constraint::And(a, b) => a.eval(src) && b.eval(src),
            Constraint::Or(a, b) => a.eval(src) || b.eval(src),
            Constraint::Not(c) => !c.eval(src),
            Constraint::Host(h) => (h.test)(src),
        }
    }

    /// `Θ ∧ Θ`, short-circuiting trivial operands.
    pub fn and(self, other: Constraint) -> Constraint {
        match (self, other) {
            (Constraint::True, c) | (c, Constraint::True) => c,
            (Constraint::False, _) | (_, Constraint::False) => Constraint::False,
            (a, b) => Constraint::And(Box::new(a), Box::new(b)),
        }
    }

    /// Collects the variables the constraint references (for the SQL
    /// reduction's filter placement).
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Constraint::True | Constraint::False => {}
            Constraint::Cmp(_, a, b) => {
                atom_vars(a, out);
                atom_vars(b, out);
            }
            Constraint::And(a, b) | Constraint::Or(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Constraint::Not(c) => c.vars(out),
            // Host predicates may touch any bound variable; callers treat
            // them as referencing everything (conservative).
            Constraint::Host(_) => {}
        }
    }

    /// Collects the `(variable, attribute)` pairs the constraint reads —
    /// used by the bolt-on engines to project un-referenced attributes
    /// out of their shadow copies (§3.2). Host predicates are opaque;
    /// callers must disable projection when [`Self::has_host_pred`].
    pub fn attr_refs(&self, out: &mut Vec<(VarId, AttrName)>) {
        fn atom_refs(atom: &Atom, out: &mut Vec<(VarId, AttrName)>) {
            match atom {
                Atom::Const(_) => {}
                Atom::Attr(v, a) => out.push((*v, *a)),
                Atom::Arith(_, a, b) => {
                    atom_refs(a, out);
                    atom_refs(b, out);
                }
            }
        }
        match self {
            Constraint::True | Constraint::False | Constraint::Host(_) => {}
            Constraint::Cmp(_, a, b) => {
                atom_refs(a, out);
                atom_refs(b, out);
            }
            Constraint::And(a, b) | Constraint::Or(a, b) => {
                a.attr_refs(out);
                b.attr_refs(out);
            }
            Constraint::Not(c) => c.attr_refs(out),
        }
    }

    /// True if the constraint contains a host predicate (which the SQL
    /// reduction must treat as referencing every variable).
    pub fn has_host_pred(&self) -> bool {
        match self {
            Constraint::True | Constraint::False | Constraint::Cmp(..) => false,
            Constraint::And(a, b) | Constraint::Or(a, b) => a.has_host_pred() || b.has_host_pred(),
            Constraint::Not(c) => c.has_host_pred(),
            Constraint::Host(_) => true,
        }
    }
}

fn atom_vars(atom: &Atom, out: &mut Vec<VarId>) {
    match atom {
        Atom::Const(_) => {}
        Atom::Attr(v, _) => out.push(*v),
        Atom::Arith(_, a, b) => {
            atom_vars(a, out);
            atom_vars(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_ast::FxHashMap;

    /// Test attribute source: a flat (var, attr) → value map.
    struct MapSource(FxHashMap<(u16, u16), Value>);

    impl MapSource {
        fn new(entries: &[((u16, u16), Value)]) -> Self {
            Self(entries.iter().cloned().collect())
        }
    }

    impl AttrSource for MapSource {
        fn attr_of(&self, var: VarId, attr: AttrName) -> Value {
            self.0.get(&(var.0, attr.0)).cloned().unwrap_or(Value::Unit)
        }
    }

    fn v(i: u16) -> VarId {
        VarId(i)
    }
    fn a(i: u16) -> AttrName {
        AttrName(i)
    }

    #[test]
    fn comparison_operators() {
        let src = MapSource::new(&[((0, 0), Value::Int(5))]);
        let attr = Atom::Attr(v(0), a(0));
        let five = Atom::Const(Value::Int(5));
        let six = Atom::Const(Value::Int(6));
        assert!(Constraint::Cmp(CmpOp::Eq, attr.clone(), five.clone()).eval(&src));
        assert!(Constraint::Cmp(CmpOp::Ne, attr.clone(), six.clone()).eval(&src));
        assert!(Constraint::Cmp(CmpOp::Lt, attr.clone(), six.clone()).eval(&src));
        assert!(Constraint::Cmp(CmpOp::Le, attr.clone(), five.clone()).eval(&src));
        assert!(!Constraint::Cmp(CmpOp::Gt, attr.clone(), five.clone()).eval(&src));
        assert!(Constraint::Cmp(CmpOp::Ge, attr, five).eval(&src));
    }

    #[test]
    fn arithmetic_atoms() {
        let src = MapSource::new(&[((0, 0), Value::Int(10))]);
        // (x + 2) * 3 = 36
        let expr = Atom::Arith(
            ArithOp::Mul,
            Box::new(Atom::Arith(
                ArithOp::Add,
                Box::new(Atom::Attr(v(0), a(0))),
                Box::new(Atom::Const(Value::Int(2))),
            )),
            Box::new(Atom::Const(Value::Int(3))),
        );
        assert_eq!(expr.eval(&src), Some(Value::Int(36)));
        let div0 = Atom::Arith(
            ArithOp::Div,
            Box::new(Atom::Const(Value::Int(1))),
            Box::new(Atom::Const(Value::Int(0))),
        );
        assert_eq!(div0.eval(&src), None);
        // A failed atom makes the comparison false rather than panicking.
        assert!(!Constraint::Cmp(CmpOp::Eq, div0, Atom::Const(Value::Int(0))).eval(&src));
    }

    #[test]
    fn arithmetic_on_non_ints_fails_closed() {
        let src = MapSource::new(&[((0, 0), Value::str("s"))]);
        let bad = Atom::Arith(
            ArithOp::Add,
            Box::new(Atom::Attr(v(0), a(0))),
            Box::new(Atom::Const(Value::Int(1))),
        );
        assert_eq!(bad.eval(&src), None);
    }

    #[test]
    fn boolean_connectives() {
        let src = MapSource::new(&[]);
        let t = Constraint::True;
        let f = Constraint::False;
        assert!(t.clone().and(t.clone()).eval(&src));
        assert!(!t.clone().and(f.clone()).eval(&src));
        assert!(Constraint::Or(Box::new(f.clone()), Box::new(t.clone())).eval(&src));
        assert!(Constraint::Not(Box::new(f)).eval(&src));
    }

    #[test]
    fn and_simplifies_trivial_operands() {
        let c = Constraint::True.and(Constraint::Cmp(
            CmpOp::Eq,
            Atom::Const(Value::Int(1)),
            Atom::Const(Value::Int(1)),
        ));
        assert!(matches!(c, Constraint::Cmp(..)), "T ∧ c simplifies to c");
        assert!(matches!(
            Constraint::False.and(Constraint::True),
            Constraint::False
        ));
    }

    #[test]
    fn host_predicate() {
        let src = MapSource::new(&[((0, 0), Value::recs(vec![tt_ast::Record::new(1, 1); 5]))]);
        let pred = Constraint::Host(HostPred::new("len>3", |s: &dyn AttrSource| {
            s.attr_of(v(0), a(0)).as_recs().len() > 3
        }));
        assert!(pred.eval(&src));
        assert!(pred.has_host_pred());
        assert!(!Constraint::True.has_host_pred());
    }

    #[test]
    fn equality_on_strings_and_mismatched_kinds() {
        let src = MapSource::new(&[((0, 0), Value::str("+"))]);
        let eq = Constraint::Cmp(
            CmpOp::Eq,
            Atom::Attr(v(0), a(0)),
            Atom::Const(Value::str("+")),
        );
        assert!(eq.eval(&src));
        // Int < Str is undefined → false, not a panic.
        let cross = Constraint::Cmp(
            CmpOp::Lt,
            Atom::Const(Value::Int(1)),
            Atom::Const(Value::str("a")),
        );
        assert!(!cross.eval(&src));
    }

    #[test]
    fn vars_collection() {
        let c = Constraint::Cmp(
            CmpOp::Lt,
            Atom::Attr(v(1), a(0)),
            Atom::Arith(
                ArithOp::Add,
                Box::new(Atom::Attr(v(2), a(1))),
                Box::new(Atom::Const(Value::Int(1))),
            ),
        );
        let mut vars = Vec::new();
        c.vars(&mut vars);
        assert_eq!(vars, vec![v(1), v(2)]);
    }
}
