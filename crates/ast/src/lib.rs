//! Arena-based mutable abstract syntax trees.
//!
//! This crate implements the paper's Definition 1: an AST node is a 3-tuple
//! `(label, attributes, children)` where labels come from a schema that
//! fixes, per label, the attribute set and an upper bound on child count.
//!
//! Nodes live in a [`Ast`] arena and are addressed by compact [`NodeId`]s.
//! This gives the *mutable* tree model of §5.1 its literal meaning: a
//! rewrite is a single pointer swap in the parent's child slot
//! ([`Ast::replace`]), and every incremental-view-maintenance engine
//! navigates the very same tree the compiler owns — no shadow copies.
//!
//! The crate also provides:
//! - [`forest`] — a sharded [`Forest`] of independent arenas for
//!   multi-tree deployments (one [`TreeId`]-tagged shard per concurrent
//!   plan; each shard is its own compact id space, so dense pages
//!   partition trivially across shards),
//! - [`dense`] — the dense node-indexed storage layer ([`NodeMap`],
//!   [`NodeBitSet`], [`NodeLabelMap`]): page-backed direct-indexed maps
//!   that every maintenance-hot-path structure (views, posting lists,
//!   epoch delta buffers) uses instead of hashing `NodeId` keys,
//! - [`multiset::GenMultiset`] — Blizard generalized multisets (§5) with
//!   signed multiplicities and ⊕ / ⊖ operators,
//! - [`fxhash`] — a fast FxHash-style hasher for the remaining (cold or
//!   non-`NodeId`-keyed) maps; avoids SipHash in inner loops,
//! - [`sexpr`] — an s-expression printer/parser used by tests, examples,
//!   and debugging output.

pub mod arena;
pub mod dense;
pub mod forest;
pub mod fxhash;
pub mod multiset;
pub mod schema;
pub mod sexpr;
pub mod value;

pub use arena::{Ast, Node, NodeId, NodeRow};
pub use dense::{NodeBitSet, NodeLabelMap, NodeMap};
pub use forest::{Forest, GlobalNodeId, TreeId};
pub use fxhash::{FxHashMap, FxHashSet};
pub use multiset::GenMultiset;
pub use schema::{AttrName, Label, Schema, SchemaBuilder};
pub use value::{IntSet, Record, Value};
