//! The mutable AST arena.
//!
//! Nodes are stored in slot vector indexed by [`NodeId`]; children are id
//! arrays and every node carries a parent back-pointer (the paper's §5.1
//! notes ancestors "may be derived ... by extending the AST definition with
//! parent pointers" — we do exactly that). A rewrite is [`Ast::replace`]:
//! one pointer swap in the parent's child slot, leaving the displaced
//! subtree detached for the caller to free (or partially reuse) —
//! mirroring how the JITD compiler applies `⟨pattern, generator⟩` rules.

use crate::schema::{AttrName, Label, Schema};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Compact node handle: an index into the arena's slot vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Sentinel for "no node" (detached parents, empty roots).
    pub const NULL: NodeId = NodeId(u32::MAX);

    /// True for the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Raw index (used by the relational encoding as the `id` column).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from a raw index (used by the relational decoding).
    #[inline]
    pub fn from_index(index: u32) -> NodeId {
        NodeId(index)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "n∅")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// One AST node: `(label, attributes, children)` plus the parent pointer.
#[derive(Debug, Clone)]
pub struct Node {
    label: Label,
    attrs: Vec<Value>,
    children: Vec<NodeId>,
    parent: NodeId,
}

impl Node {
    /// The node's label.
    #[inline]
    pub fn label(&self) -> Label {
        self.label
    }

    /// Attribute values in schema storage order.
    #[inline]
    pub fn attrs(&self) -> &[Value] {
        &self.attrs
    }

    /// Child ids in order.
    #[inline]
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Parent id ([`NodeId::NULL`] for the root or detached nodes).
    #[inline]
    pub fn parent(&self) -> NodeId {
        self.parent
    }

    /// True if the node has no children (`isleaf` in the paper).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The arena-backed mutable AST.
pub struct Ast {
    schema: Arc<Schema>,
    slots: Vec<Option<Node>>,
    free: Vec<u32>,
    root: NodeId,
    live: usize,
}

impl Ast {
    /// Creates an empty AST over `schema` (no root yet).
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            root: NodeId::NULL,
            live: 0,
        }
    }

    /// The schema this AST follows.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Current root ([`NodeId::NULL`] if unset).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live nodes (attached or detached).
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Allocates a node. Children must be live and detached; they become
    /// children of the new node. Panics on schema violations.
    pub fn alloc(&mut self, label: Label, attrs: Vec<Value>, children: Vec<NodeId>) -> NodeId {
        let def = self.schema.def(label);
        assert_eq!(
            attrs.len(),
            def.attrs.len(),
            "label {} expects {} attributes, got {}",
            def.name,
            def.attrs.len(),
            attrs.len()
        );
        assert!(
            children.len() <= def.max_children,
            "label {} allows at most {} children, got {}",
            def.name,
            def.max_children,
            children.len()
        );
        let id = match self.free.pop() {
            Some(idx) => NodeId(idx),
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena exhausted");
                self.slots.push(None);
                NodeId(idx)
            }
        };
        for &c in &children {
            let child = self.node_mut(c);
            assert!(child.parent.is_null(), "child {c:?} already attached");
            child.parent = id;
        }
        self.slots[id.0 as usize] = Some(Node {
            label,
            attrs,
            children,
            parent: NodeId::NULL,
        });
        self.live += 1;
        id
    }

    /// Designates a detached node as the root.
    pub fn set_root(&mut self, id: NodeId) {
        assert!(self.node(id).parent.is_null(), "root must be detached");
        self.root = id;
    }

    /// True if `id` refers to a live node.
    #[inline]
    pub fn is_live(&self, id: NodeId) -> bool {
        !id.is_null() && (id.0 as usize) < self.slots.len() && self.slots[id.0 as usize].is_some()
    }

    /// Immutable node access; panics on dead ids (a stale-id bug).
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        self.slots[id.0 as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("dead node {id:?}"))
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.slots[id.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("dead node {id:?}"))
    }

    /// The node's label.
    #[inline]
    pub fn label(&self, id: NodeId) -> Label {
        self.node(id).label
    }

    /// The node's children.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The node's parent ([`NodeId::NULL`] for root / detached).
    #[inline]
    pub fn parent(&self, id: NodeId) -> NodeId {
        self.node(id).parent
    }

    /// Attribute value by name; panics if the label doesn't declare it.
    #[inline]
    pub fn attr(&self, id: NodeId, attr: AttrName) -> &Value {
        let node = self.node(id);
        let idx = self.schema.attr_index(node.label, attr).unwrap_or_else(|| {
            panic!(
                "label {} has no attribute {}",
                self.schema.label_name(node.label),
                self.schema.attr_name(attr)
            )
        });
        &node.attrs[idx]
    }

    /// Overwrites an attribute value in place (an *update* event for IVM).
    pub fn set_attr(&mut self, id: NodeId, attr: AttrName, value: Value) {
        let label = self.node(id).label;
        let idx = self
            .schema
            .attr_index(label, attr)
            .unwrap_or_else(|| panic!("label has no such attribute"));
        self.node_mut(id).attrs[idx] = value;
    }

    /// Detaches `id` from its parent (removing it from the parent's child
    /// list). No-op for already-detached nodes. Used to extract `Reuse`
    /// subtrees before the rest of a replaced subtree is freed.
    pub fn detach(&mut self, id: NodeId) {
        let parent = self.node(id).parent;
        if parent.is_null() {
            if self.root == id {
                self.root = NodeId::NULL;
            }
            return;
        }
        let siblings = &mut self.node_mut(parent).children;
        let pos = siblings
            .iter()
            .position(|&c| c == id)
            .expect("child missing from parent");
        siblings.remove(pos);
        self.node_mut(id).parent = NodeId::NULL;
    }

    /// The single pointer swap of §5.1: replaces attached node `old` with
    /// detached node `new` in `old`'s parent slot (or as root). `old` is
    /// left detached and still live; the caller frees or reuses it.
    pub fn replace(&mut self, old: NodeId, new: NodeId) {
        assert!(
            self.node(new).parent.is_null(),
            "replacement {new:?} must be detached"
        );
        assert_ne!(old, new, "cannot replace a node with itself");
        let parent = self.node(old).parent;
        if parent.is_null() {
            assert_eq!(self.root, old, "old node is detached and not the root");
            self.root = new;
        } else {
            let slot = self
                .node(parent)
                .children
                .iter()
                .position(|&c| c == old)
                .expect("old missing from its parent");
            self.node_mut(parent).children[slot] = new;
            self.node_mut(new).parent = parent;
            self.node_mut(old).parent = NodeId::NULL;
        }
    }

    /// Frees a detached subtree, returning the freed ids (preorder).
    /// Panics if the subtree root is attached or is the AST root.
    pub fn free_subtree(&mut self, id: NodeId) -> Vec<NodeId> {
        assert!(
            self.node(id).parent.is_null(),
            "cannot free an attached subtree"
        );
        assert_ne!(self.root, id, "cannot free the root; detach it first");
        let ids = self.collect_subtree(id);
        for &n in &ids {
            self.slots[n.0 as usize] = None;
            self.free.push(n.0);
            self.live -= 1;
        }
        ids
    }

    /// Preorder ids of the subtree rooted at `id` (the paper's `Desc(N)`).
    pub fn collect_subtree(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children reversed so preorder pops left-to-right.
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Iterates `Desc(id)` (the node and all descendants, preorder) without
    /// allocating the whole list up front.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            ast: self,
            stack: if id.is_null() { vec![] } else { vec![id] },
        }
    }

    /// [`Ast::descendants`] over a caller-provided DFS stack, so hot
    /// maintenance loops (one preorder walk per rewrite) reuse one
    /// allocation for the life of an engine instead of allocating a
    /// fresh stack per traversal. The stack is cleared on entry.
    pub fn descendants_with<'a>(
        &'a self,
        id: NodeId,
        stack: &'a mut Vec<NodeId>,
    ) -> DescendantsWith<'a> {
        stack.clear();
        if !id.is_null() {
            stack.push(id);
        }
        DescendantsWith { ast: self, stack }
    }

    /// Iterates proper ancestors of `id`, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            ast: self,
            current: self.parent(id),
        }
    }

    /// The `depth`-th ancestor (1 = parent), or `NULL` if the path leaves
    /// the tree first. `Ancestor_i(N)` in the paper's Definition 6.
    pub fn ancestor_at(&self, id: NodeId, depth: usize) -> NodeId {
        let mut cur = id;
        for _ in 0..depth {
            if cur.is_null() {
                return NodeId::NULL;
            }
            cur = self.parent(cur);
        }
        cur
    }

    /// Number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }

    /// Structural equality of two subtrees (labels, attributes, shapes).
    pub fn deep_eq(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let (na, nb) = (self.node(a), self.node(b));
        if na.label != nb.label || na.attrs != nb.attrs || na.children.len() != nb.children.len() {
            return false;
        }
        na.children
            .iter()
            .zip(&nb.children)
            .all(|(&ca, &cb)| self.deep_eq(ca, cb))
    }

    /// A structural hash of the subtree at `id` (labels, attributes,
    /// arities). Used by optimizers for cheap fixpoint detection and memo
    /// signatures: equal trees hash equal; collisions are possible but
    /// irrelevant for the cost models that use this.
    pub fn structural_hash(&self, id: NodeId) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::fxhash::FxHasher::default();
        for n in self.descendants(id) {
            let node = self.node(n);
            node.label.hash(&mut h);
            for v in &node.attrs {
                v.hash(&mut h);
            }
            node.children.len().hash(&mut h);
        }
        h.finish()
    }

    /// Allocates a detached deep copy of the subtree at `src`.
    pub fn clone_subtree(&mut self, src: NodeId) -> NodeId {
        let node = self.node(src);
        let (label, attrs, children) = (node.label, node.attrs.clone(), node.children.clone());
        let copies: Vec<NodeId> = children.iter().map(|&c| self.clone_subtree(c)).collect();
        self.alloc(label, attrs, copies)
    }

    /// Approximate heap bytes held by the arena (slots, child vectors,
    /// attribute payloads). This is the *compiler's own* AST cost — the
    /// baseline every strategy's overhead in Figures 11/13 sits on top of.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.slots.capacity() * std::mem::size_of::<Option<Node>>()
            + self.free.capacity() * std::mem::size_of::<u32>();
        for slot in self.slots.iter().flatten() {
            bytes += slot.children.capacity() * std::mem::size_of::<NodeId>();
            bytes += slot.attrs.capacity() * std::mem::size_of::<Value>();
            for v in &slot.attrs {
                bytes += v.heap_bytes();
            }
        }
        bytes
    }

    /// Consistency check used by tests and debug assertions: parent/child
    /// links agree, the root is live and detached, no child appears twice,
    /// and every live node is reachable from the root or from a detached
    /// ancestor.
    pub fn validate(&self) -> Result<(), String> {
        if !self.root.is_null() {
            if !self.is_live(self.root) {
                return Err("root is dead".into());
            }
            if !self.node(self.root).parent.is_null() {
                return Err("root has a parent".into());
            }
        }
        let mut live_seen = 0usize;
        // One dense scratch set for the whole pass; entries are removed
        // after each node so the per-node duplicate check stays O(children).
        let mut seen = crate::dense::NodeBitSet::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(node) = slot else { continue };
            live_seen += 1;
            let id = NodeId(idx as u32);
            for &c in &node.children {
                if !self.is_live(c) {
                    return Err(format!("{id:?} has dead child {c:?}"));
                }
                if !seen.insert(c) {
                    return Err(format!("{id:?} lists child {c:?} twice"));
                }
                if self.node(c).parent != id {
                    return Err(format!("child {c:?} of {id:?} has wrong parent"));
                }
            }
            for &c in &node.children {
                seen.remove(c);
            }
            if !node.parent.is_null() {
                if !self.is_live(node.parent) {
                    return Err(format!("{id:?} has dead parent"));
                }
                if !self.node(node.parent).children.contains(&id) {
                    return Err(format!("{id:?} missing from its parent's children"));
                }
            }
        }
        if live_seen != self.live {
            return Err(format!("live count {} != counted {}", self.live, live_seen));
        }
        Ok(())
    }
}

/// A self-contained snapshot of one node: the relational image
/// `(id, A(x₁)…A(x_k), id_N₁…id_N_c)` of §3, minus the label (carried
/// alongside by consumers that route rows to per-label relations).
///
/// Snapshots let the instrumented compiler report *removed* nodes to
/// bolt-on view structures after the nodes have already been freed.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// The node id (`id_N`).
    pub id: NodeId,
    /// Attribute values in schema storage order.
    pub attrs: Vec<Value>,
    /// Child ids.
    pub children: Vec<NodeId>,
}

impl NodeRow {
    /// Snapshots a live node.
    pub fn of(ast: &Ast, id: NodeId) -> NodeRow {
        let node = ast.node(id);
        NodeRow {
            id,
            attrs: node.attrs().to_vec(),
            children: node.children().to_vec(),
        }
    }

    /// Approximate heap bytes of this snapshot (shadow-copy accounting).
    pub fn heap_bytes(&self) -> usize {
        self.attrs.capacity() * std::mem::size_of::<Value>()
            + self.attrs.iter().map(Value::heap_bytes).sum::<usize>()
            + self.children.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// Preorder iterator over a subtree. See [`Ast::descendants`].
pub struct Descendants<'a> {
    ast: &'a Ast,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        for &c in self.ast.node(id).children().iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

/// Preorder iterator borrowing its DFS stack. See
/// [`Ast::descendants_with`].
pub struct DescendantsWith<'a> {
    ast: &'a Ast,
    stack: &'a mut Vec<NodeId>,
}

impl Iterator for DescendantsWith<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        for &c in self.ast.node(id).children().iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

/// Parent-chain iterator. See [`Ast::ancestors`].
pub struct Ancestors<'a> {
    ast: &'a Ast,
    current: NodeId,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.current.is_null() {
            return None;
        }
        let out = self.current;
        self.current = self.ast.parent(out);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::arith_schema;
    use crate::value::Value;

    /// Builds the paper's Figure 3 AST: `2 * y + x`.
    fn fig3() -> (Ast, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let schema = arith_schema();
        let mut ast = Ast::new(schema.clone());
        let arith = schema.expect_label("Arith");
        let constant = schema.expect_label("Const");
        let var = schema.expect_label("Var");
        let two = ast.alloc(constant, vec![Value::Int(2)], vec![]);
        let y = ast.alloc(var, vec![Value::str("y")], vec![]);
        let mul = ast.alloc(arith, vec![Value::str("*")], vec![two, y]);
        let x = ast.alloc(var, vec![Value::str("x")], vec![]);
        let add = ast.alloc(arith, vec![Value::str("+")], vec![mul, x]);
        ast.set_root(add);
        (ast, add, mul, two, y, x)
    }

    #[test]
    fn build_fig3_and_navigate() {
        let (ast, add, mul, two, y, x) = fig3();
        assert_eq!(ast.root(), add);
        assert_eq!(ast.children(add), &[mul, x]);
        assert_eq!(ast.parent(mul), add);
        assert_eq!(ast.parent(two), mul);
        let op = ast.schema().expect_attr("op");
        assert_eq!(ast.attr(add, op).as_str(), "+");
        assert_eq!(ast.attr(mul, op).as_str(), "*");
        assert!(ast.node(y).is_leaf());
        assert_eq!(ast.live_count(), 5);
        ast.validate().unwrap();
    }

    #[test]
    fn descendants_preorder() {
        let (ast, add, mul, two, y, x) = fig3();
        let desc: Vec<NodeId> = ast.descendants(add).collect();
        assert_eq!(desc, vec![add, mul, two, y, x]);
        assert_eq!(ast.subtree_size(add), 5);
        assert_eq!(ast.subtree_size(mul), 3);
    }

    #[test]
    fn ancestors_nearest_first() {
        let (ast, add, mul, two, _, _) = fig3();
        let anc: Vec<NodeId> = ast.ancestors(two).collect();
        assert_eq!(anc, vec![mul, add]);
        assert_eq!(ast.ancestor_at(two, 1), mul);
        assert_eq!(ast.ancestor_at(two, 2), add);
        assert_eq!(ast.ancestor_at(two, 3), NodeId::NULL);
        assert_eq!(ast.ancestor_at(add, 0), add);
    }

    #[test]
    fn replace_is_a_pointer_swap() {
        // Example 5.1: the left subtree (2 * y) is replaced by Const(0).
        let (mut ast, add, mul, _, _, x) = fig3();
        let constant = ast.schema().expect_label("Const");
        let zero = ast.alloc(constant, vec![Value::Int(0)], vec![]);
        ast.replace(mul, zero);
        assert_eq!(ast.children(add), &[zero, x]);
        assert_eq!(ast.parent(zero), add);
        assert!(ast.parent(mul).is_null(), "old subtree is detached");
        ast.validate().unwrap();
        // The old subtree can now be freed; live count drops by 3.
        let freed = ast.free_subtree(mul);
        assert_eq!(freed.len(), 3);
        assert_eq!(ast.live_count(), 3);
        ast.validate().unwrap();
    }

    #[test]
    fn replace_root() {
        let (mut ast, add, _, _, _, _) = fig3();
        let var = ast.schema().expect_label("Var");
        let z = ast.alloc(var, vec![Value::str("z")], vec![]);
        ast.replace(add, z);
        assert_eq!(ast.root(), z);
        assert!(ast.parent(add).is_null());
        ast.validate().unwrap();
    }

    #[test]
    fn detach_then_reuse_in_new_subtree() {
        // Mimics a generator Reuse: pull `x` out, rebuild a new node over it.
        let (mut ast, add, mul, _, _, x) = fig3();
        ast.detach(x);
        assert_eq!(ast.children(add), &[mul]);
        let arith = ast.schema().expect_label("Arith");
        let constant = ast.schema().expect_label("Const");
        let one = ast.alloc(constant, vec![Value::Int(1)], vec![]);
        let new = ast.alloc(arith, vec![Value::str("*")], vec![one, x]);
        ast.replace(mul, new);
        ast.validate().unwrap();
        assert_eq!(ast.parent(x), new);
        let freed = ast.free_subtree(mul);
        assert_eq!(freed.len(), 3, "two/y/mul freed; x survived via reuse");
    }

    #[test]
    fn freed_slots_are_recycled() {
        let (mut ast, _, mul, _, _, _) = fig3();
        let constant = ast.schema().expect_label("Const");
        let zero = ast.alloc(constant, vec![Value::Int(0)], vec![]);
        ast.replace(mul, zero);
        let freed = ast.free_subtree(mul);
        let before = ast.slots.len();
        for _ in 0..freed.len() {
            ast.alloc(constant, vec![Value::Int(1)], vec![]);
        }
        assert_eq!(ast.slots.len(), before, "allocations reused the free list");
    }

    #[test]
    fn deep_eq_and_clone_subtree() {
        let (mut ast, add, mul, _, _, _) = fig3();
        let copy = ast.clone_subtree(add);
        assert!(ast.deep_eq(add, copy));
        assert!(!ast.deep_eq(mul, copy));
        // Mutating the copy breaks equality.
        let op = ast.schema().expect_attr("op");
        ast.set_attr(copy, op, Value::str("-"));
        assert!(!ast.deep_eq(add, copy));
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn stale_id_access_panics() {
        let (mut ast, _, mul, two, _, _) = fig3();
        let constant = ast.schema().expect_label("Const");
        let zero = ast.alloc(constant, vec![Value::Int(0)], vec![]);
        ast.replace(mul, zero);
        ast.free_subtree(mul);
        let _ = ast.label(two);
    }

    #[test]
    #[should_panic(expected = "expects 1 attributes")]
    fn alloc_checks_attr_arity() {
        let schema = arith_schema();
        let mut ast = Ast::new(schema.clone());
        ast.alloc(schema.expect_label("Const"), vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "at most 0 children")]
    fn alloc_checks_child_bound() {
        let schema = arith_schema();
        let mut ast = Ast::new(schema.clone());
        let a = ast.alloc(schema.expect_label("Const"), vec![Value::Int(1)], vec![]);
        ast.alloc(schema.expect_label("Const"), vec![Value::Int(2)], vec![a]);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn alloc_rejects_attached_children() {
        let (mut ast, _, _, two, _, _) = fig3();
        let arith = ast.schema().expect_label("Arith");
        ast.alloc(arith, vec![Value::str("+")], vec![two]);
    }

    #[test]
    #[should_panic(expected = "must be detached")]
    fn replace_rejects_attached_replacement() {
        let (mut ast, _, mul, two, _, _) = fig3();
        ast.replace(mul, two);
    }

    #[test]
    fn memory_bytes_grows_with_nodes() {
        let schema = arith_schema();
        let mut ast = Ast::new(schema.clone());
        let baseline = ast.memory_bytes();
        let constant = schema.expect_label("Const");
        for i in 0..64 {
            ast.alloc(constant, vec![Value::Int(i)], vec![]);
        }
        assert!(ast.memory_bytes() > baseline);
    }
}
