//! S-expression serialization for ASTs.
//!
//! Format: `(Label attr=value … child child …)`, e.g. the paper's Figure 3
//! tree prints as:
//!
//! ```text
//! (Arith op="+" (Arith op="*" (Const val=2) (Var name="y")) (Var name="x"))
//! ```
//!
//! Values: integers (`2`), booleans (`true`), quoted strings (`"+"`),
//! records (`1:10`), record lists (`[1:10,2:20]`), int sets (`{1,2}`),
//! unit (`()`). The parser is the inverse of the printer and is used by
//! tests and examples to state trees legibly.

use crate::arena::{Ast, NodeId};
use crate::value::{Record, Value};
use std::fmt::Write as _;

/// Renders the subtree at `id` as a single-line s-expression.
pub fn to_sexpr(ast: &Ast, id: NodeId) -> String {
    let mut out = String::new();
    write_node(ast, id, &mut out);
    out
}

fn write_node(ast: &Ast, id: NodeId, out: &mut String) {
    let schema = ast.schema();
    let node = ast.node(id);
    let def = schema.def(node.label());
    let _ = write!(out, "({}", def.name);
    for (attr, value) in def.attrs.iter().zip(node.attrs()) {
        let _ = write!(out, " {}={}", schema.attr_name(*attr), value);
    }
    for &child in node.children() {
        out.push(' ');
        write_node(ast, child, out);
    }
    out.push(')');
}

/// Parses an s-expression into `ast`, returning the (detached) subtree root.
///
/// Attribute order in the text may differ from schema order; missing
/// attributes default to `Unit`. Errors carry byte offsets.
pub fn parse_sexpr(ast: &mut Ast, text: &str) -> Result<NodeId, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let id = p.node(ast)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(id)
}

/// Parse failure with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii ident"))
    }

    fn node(&mut self, ast: &mut Ast) -> Result<NodeId, ParseError> {
        self.skip_ws();
        self.expect(b'(')?;
        let label_name = self.ident()?;
        let label = ast
            .schema()
            .label(label_name)
            .ok_or_else(|| self.err(&format!("unknown label {label_name:?}")))?;
        let def_attrs = ast.schema().def(label).attrs.clone();
        let mut attrs: Vec<Value> = vec![Value::Unit; def_attrs.len()];
        let mut children = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                Some(b'(') => {
                    children.push(self.node(ast)?);
                }
                Some(_) => {
                    // attribute: name=value
                    let name = self.ident()?;
                    self.expect(b'=')?;
                    let value = self.value()?;
                    let attr = ast
                        .schema()
                        .attr(name)
                        .ok_or_else(|| self.err(&format!("unknown attribute {name:?}")))?;
                    let idx = def_attrs
                        .iter()
                        .position(|a| *a == attr)
                        .ok_or_else(|| self.err(&format!("{label_name} has no attr {name}")))?;
                    attrs[idx] = value;
                }
                None => return Err(self.err("unexpected end of input")),
            }
        }
        Ok(ast.alloc(label, attrs, children))
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'"' {
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf8 in string"))?;
                        self.pos += 1;
                        return Ok(Value::str(s));
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string"))
            }
            Some(b'[') => {
                self.pos += 1;
                let mut records = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::recs(records));
                }
                loop {
                    records.push(self.record()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::recs(records));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::set(items));
                }
                loop {
                    let i = self.int()?;
                    items.push(u32::try_from(i).map_err(|_| self.err("set item out of range"))?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::set(items));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'(') => {
                self.pos += 1;
                self.expect(b')')?;
                Ok(Value::Unit)
            }
            Some(b't') | Some(b'f') => {
                let word = self.ident()?;
                match word {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => Err(self.err("expected true/false")),
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let first = self.int()?;
                if self.peek() == Some(b':') {
                    self.pos += 1;
                    let second = self.int()?;
                    Ok(Value::Rec(Record::new(first, second)))
                } else {
                    Ok(Value::Int(first))
                }
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn record(&mut self) -> Result<Record, ParseError> {
        self.skip_ws();
        let key = self.int()?;
        self.expect(b':')?;
        let value = self.int()?;
        Ok(Record::new(key, value))
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits")
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{arith_schema, Schema};

    #[test]
    fn roundtrip_fig3() {
        let text = r#"(Arith op="+" (Arith op="*" (Const val=2) (Var name="y")) (Var name="x"))"#;
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        assert_eq!(to_sexpr(&ast, id), text);
        ast.validate().unwrap();
        assert_eq!(ast.live_count(), 5);
    }

    #[test]
    fn parse_all_value_kinds() {
        let schema = Schema::builder()
            .label("N", &["i", "b", "s", "r", "rs", "st", "u"], 0)
            .finish();
        let mut ast = Ast::new(schema.clone());
        let text = r#"(N i=-7 b=true s="hi" r=1:2 rs=[1:2,3:4] st={5,6} u=())"#;
        let id = parse_sexpr(&mut ast, text).unwrap();
        assert_eq!(ast.attr(id, schema.expect_attr("i")).as_int(), -7);
        assert!(ast.attr(id, schema.expect_attr("b")).as_bool());
        assert_eq!(ast.attr(id, schema.expect_attr("s")).as_str(), "hi");
        assert_eq!(
            ast.attr(id, schema.expect_attr("r")).as_rec(),
            Record::new(1, 2)
        );
        assert_eq!(ast.attr(id, schema.expect_attr("rs")).as_recs().len(), 2);
        assert!(ast.attr(id, schema.expect_attr("st")).as_set().contains(6));
        assert_eq!(*ast.attr(id, schema.expect_attr("u")), Value::Unit);
        // Round trip.
        assert_eq!(to_sexpr(&ast, id), text);
    }

    #[test]
    fn missing_attrs_default_to_unit() {
        let schema = Schema::builder().label("N", &["a", "b"], 0).finish();
        let mut ast = Ast::new(schema.clone());
        let id = parse_sexpr(&mut ast, "(N b=1)").unwrap();
        assert_eq!(*ast.attr(id, schema.expect_attr("a")), Value::Unit);
        assert_eq!(ast.attr(id, schema.expect_attr("b")).as_int(), 1);
    }

    #[test]
    fn error_on_unknown_label() {
        let mut ast = Ast::new(arith_schema());
        let err = parse_sexpr(&mut ast, "(Nope)").unwrap_err();
        assert!(err.message.contains("unknown label"));
    }

    #[test]
    fn error_on_trailing_input() {
        let mut ast = Ast::new(arith_schema());
        let err = parse_sexpr(&mut ast, "(Const val=1) junk").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn error_carries_offset() {
        let mut ast = Ast::new(arith_schema());
        let err = parse_sexpr(&mut ast, "(Const val=)").unwrap_err();
        assert_eq!(err.at, 11);
    }

    #[test]
    fn empty_collections() {
        let schema = Schema::builder().label("N", &["rs", "st"], 0).finish();
        let mut ast = Ast::new(schema.clone());
        let id = parse_sexpr(&mut ast, "(N rs=[] st={})").unwrap();
        assert!(ast.attr(id, schema.expect_attr("rs")).as_recs().is_empty());
        assert!(ast.attr(id, schema.expect_attr("st")).as_set().is_empty());
    }
}
