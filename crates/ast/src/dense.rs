//! Dense node-indexed storage: the data plane under every maintained view.
//!
//! [`NodeId`] is already a dense `u32` arena index, yet the first version
//! of every hot maintenance structure — view multiplicity maps, posting
//! list positions, epoch delta buffers — keyed an `FxHashMap` by it,
//! paying a hash, a probe sequence, and tombstone churn per update. §4 of
//! the paper promises `find_one` in O(1) with "negligible memory
//! overhead"; the same holds for *maintenance* only if each staged delta
//! is a direct store. This module provides the direct-indexed
//! replacements:
//!
//! - [`NodeMap<T>`] — a page-backed map `NodeId → T`. Pages (of
//!   [`PAGE_LEN`] slots) are allocated lazily on first touch, so a sparse
//!   view over a huge arena holds only the pages its members fall in, and
//!   a steady-state update (the overwhelmingly common case: a node whose
//!   page already exists) is one bounds check and one indexed store —
//!   no hashing, no probing, no allocation.
//! - [`NodeBitSet`] — one bit per node, for membership-only scratch sets.
//! - [`NodeLabelMap<T>`] — `(Label, NodeId) → T` for the epoch logs that
//!   must distinguish an arena slot freed under one label and reused
//!   under another. Keyed densely by node; the per-node label dimension
//!   is a one-inline-entry structure (a node carries exactly one label at
//!   a time, so the spill vector is empty in steady state).
//!
//! ### Page size
//!
//! [`PAGE_LEN`] is 256 slots. For the common payloads (`i64`
//! multiplicities, `u32` positions) a page is 2–4 KiB — big enough that
//! the per-page pointer and occupancy counter are noise, small enough
//! that a view whose members cluster (as rewrite sites do: the arena
//! recycles freed slots, so live ids stay compact) doesn't drag in
//! megabytes for a handful of entries. `memory_bytes()` on every
//! structure accounts allocated pages honestly, so the Figure 11/13
//! memory axis reflects the true dense-vs-hash tradeoff.
//!
//! ### Generation stamps
//!
//! [`NodeMap`] carries a generation counter and every page records the
//! generation it was last written in. [`NodeMap::clear`] is therefore an
//! O(1) stamp bump — no page walk — which matters for the epoch
//! structures (delta buffers, staging maps) that clear once per epoch,
//! and for forest deployments where per-tree structures clear whenever
//! their shard's epoch turns over. A stale page (stamp ≠ current
//! generation) reads as empty and is lazily wiped on its first write, so
//! the cost of the old `clear` walk is only ever paid for pages actually
//! reused — and at most once per page per epoch. The one observable
//! tradeoff: values parked in stale pages are dropped at first-reuse (or
//! map drop) rather than at `clear` time, and any heap those values own
//! is invisible to value-walking `memory_bytes` implementations until
//! then. Structures whose values own heap should `drain()` (which drops
//! eagerly and still retains pages) instead of `clear()` when discarding
//! state — see `tt_ivm`'s `DeltaLog::clear`.

use crate::arena::NodeId;
use crate::schema::Label;
use std::fmt;

/// Slots per page (2⁸). See the module docs for the sizing rationale.
pub const PAGE_LEN: usize = 1 << PAGE_BITS;
const PAGE_BITS: u32 = 8;

/// One lazily allocated page: a fixed slab of optional slots, an
/// occupancy count so iteration can skip vacant pages (and trailing
/// vacant slots) wholesale, and the map generation the page was last
/// written in (a page whose stamp lags the map's is logically empty —
/// see the module docs).
struct Page<T> {
    slots: Box<[Option<T>]>,
    used: u32,
    gen: u64,
}

impl<T> Page<T> {
    fn new(gen: u64) -> Page<T> {
        let mut slots = Vec::with_capacity(PAGE_LEN);
        slots.resize_with(PAGE_LEN, || None);
        Page {
            slots: slots.into_boxed_slice(),
            used: 0,
            gen,
        }
    }

    /// Wipes a stale page so it can serve the current generation. Cold:
    /// it runs at most once per page per generation, and keeping it out
    /// of line keeps the per-touch fast paths small.
    #[cold]
    #[inline(never)]
    fn revive(&mut self, gen: u64) {
        if self.used > 0 {
            self.slots.fill_with(|| None);
            self.used = 0;
        }
        self.gen = gen;
    }
}

/// A page-backed direct-indexed map `NodeId → T`.
///
/// Insert/lookup/remove are O(1) with no hashing; `iter`/`drain` visit
/// only allocated, current-generation, non-empty pages. Pages are
/// retained by `remove`, `clear`, and `drain` so a structure reused
/// across maintenance epochs reaches a steady state where no operation
/// allocates, and `clear` is an O(1) generation-stamp bump rather than
/// a page walk.
pub struct NodeMap<T> {
    pages: Vec<Option<Box<Page<T>>>>,
    len: usize,
    gen: u64,
}

impl<T> Default for NodeMap<T> {
    fn default() -> Self {
        NodeMap {
            pages: Vec::new(),
            len: 0,
            gen: 0,
        }
    }
}

impl<T> NodeMap<T> {
    /// An empty map (no pages allocated).
    pub fn new() -> NodeMap<T> {
        NodeMap::default()
    }

    #[inline]
    fn split(id: NodeId) -> (usize, usize) {
        debug_assert!(!id.is_null(), "null NodeId used as a dense key");
        let idx = id.index() as usize;
        (idx >> PAGE_BITS, idx & (PAGE_LEN - 1))
    }

    #[inline]
    fn join(page: usize, slot: usize) -> NodeId {
        NodeId::from_index(((page << PAGE_BITS) | slot) as u32)
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are present (pages may still be allocated).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `id`, if present.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&T> {
        let (p, s) = Self::split(id);
        let page = self.pages.get(p)?.as_deref()?;
        if page.gen != self.gen {
            return None;
        }
        page.slots[s].as_ref()
    }

    /// Mutable access to the value for `id`, if present.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        let (p, s) = Self::split(id);
        let gen = self.gen;
        let page = self.pages.get_mut(p)?.as_deref_mut()?;
        if page.gen != gen {
            return None;
        }
        page.slots[s].as_mut()
    }

    /// True if `id` has an entry.
    #[inline]
    pub fn contains_key(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    #[inline]
    fn page_for(pages: &mut Vec<Option<Box<Page<T>>>>, gen: u64, p: usize) -> &mut Page<T> {
        if p >= pages.len() {
            pages.resize_with(p + 1, || None);
        }
        let page = pages[p].get_or_insert_with(|| Box::new(Page::new(gen)));
        if page.gen != gen {
            page.revive(gen);
        }
        page
    }

    /// Inserts `value` for `id`, returning the displaced value if any.
    #[inline]
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let (p, s) = Self::split(id);
        let page = Self::page_for(&mut self.pages, self.gen, p);
        let old = page.slots[s].replace(value);
        if old.is_none() {
            page.used += 1;
            self.len += 1;
        }
        old
    }

    /// The entry for `id`, inserted via `default` if absent.
    #[inline]
    pub fn get_or_insert_with(&mut self, id: NodeId, default: impl FnOnce() -> T) -> &mut T {
        let (p, s) = Self::split(id);
        let page = Self::page_for(&mut self.pages, self.gen, p);
        if page.slots[s].is_none() {
            page.slots[s] = Some(default());
            page.used += 1;
            self.len += 1;
        }
        page.slots[s].as_mut().expect("slot just ensured")
    }

    /// Removes and returns the entry for `id`. The page is retained for
    /// reuse (see the type docs on steady-state allocation).
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let (p, s) = Self::split(id);
        let gen = self.gen;
        let page = self.pages.get_mut(p)?.as_deref_mut()?;
        if page.gen != gen {
            return None;
        }
        let old = page.slots[s].take();
        if old.is_some() {
            page.used -= 1;
            self.len -= 1;
        }
        old
    }

    /// Removes every entry in O(1): bumps the map generation, so every
    /// allocated page becomes stale (logically empty) at once. Pages
    /// stay allocated and are wiped lazily on their next write.
    pub fn clear(&mut self) {
        self.gen += 1;
        self.len = 0;
    }

    /// Iterates `(id, &value)` in ascending id order. Hand-rolled (not
    /// an adapter chain) so the hot mid-epoch overlay scans stay cheap:
    /// stale and vacant pages are skipped wholesale, and each live
    /// page's occupancy count ends the slot scan at its last entry
    /// instead of walking all [`PAGE_LEN`] slots.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            map: self,
            current: None,
            page: 0,
            slot: 0,
            left: 0,
        }
    }

    /// Drains every entry as `(id, value)`, keeping pages allocated.
    /// Dropping the iterator mid-way still empties the map.
    pub fn drain(&mut self) -> Drain<'_, T> {
        Drain {
            map: self,
            page: 0,
            slot: 0,
        }
    }

    /// Approximate heap bytes: the page table plus every allocated page
    /// (whether occupied or not — retained pages are real memory).
    pub fn memory_bytes(&self) -> usize {
        let allocated = self.pages.iter().flatten().count();
        self.pages.capacity() * std::mem::size_of::<Option<Box<Page<T>>>>()
            + allocated
                * (std::mem::size_of::<Page<T>>() + PAGE_LEN * std::mem::size_of::<Option<T>>())
    }

    /// Allocated page count (diagnostics / tests).
    pub fn page_count(&self) -> usize {
        self.pages.iter().flatten().count()
    }
}

impl<T: fmt::Debug> fmt::Debug for NodeMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Borrowing iterator over a [`NodeMap`]. See [`NodeMap::iter`].
pub struct Iter<'a, T> {
    map: &'a NodeMap<T>,
    /// The live page currently being scanned.
    current: Option<&'a Page<T>>,
    page: usize,
    slot: usize,
    /// Occupied slots of `current` not yet yielded; 0 = seek a new page.
    left: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (NodeId, &'a T);

    fn next(&mut self) -> Option<(NodeId, &'a T)> {
        loop {
            if let Some(page) = self.current {
                while self.slot < PAGE_LEN {
                    let s = self.slot;
                    self.slot += 1;
                    if let Some(v) = page.slots[s].as_ref() {
                        let id = NodeMap::<T>::join(self.page, s);
                        self.left -= 1;
                        if self.left == 0 {
                            // Last occupied slot of this page: skip its
                            // vacant tail entirely.
                            self.current = None;
                            self.page += 1;
                            self.slot = 0;
                        }
                        return Some((id, v));
                    }
                }
                self.current = None;
                self.page += 1;
                self.slot = 0;
            }
            // Seek the next allocated, current-generation, non-empty page.
            loop {
                match self.map.pages.get(self.page)?.as_deref() {
                    Some(p) if p.gen == self.map.gen && p.used > 0 => {
                        self.current = Some(p);
                        self.slot = 0;
                        self.left = p.used;
                        break;
                    }
                    _ => self.page += 1,
                }
            }
        }
    }
}

/// Draining iterator over a [`NodeMap`]. See [`NodeMap::drain`].
pub struct Drain<'a, T> {
    map: &'a mut NodeMap<T>,
    page: usize,
    slot: usize,
}

impl<T> Iterator for Drain<'_, T> {
    type Item = (NodeId, T);

    fn next(&mut self) -> Option<(NodeId, T)> {
        let gen = self.map.gen;
        while self.page < self.map.pages.len() {
            let Some(page) = self.map.pages[self.page].as_deref_mut() else {
                self.page += 1;
                continue;
            };
            if page.gen != gen || page.used == 0 {
                self.page += 1;
                self.slot = 0;
                continue;
            }
            // `used` hits zero as soon as the page's last occupied slot
            // is taken, so sparse pages don't pay for a full slot scan.
            while self.slot < PAGE_LEN && page.used > 0 {
                let slot = self.slot;
                self.slot += 1;
                if let Some(v) = page.slots[slot].take() {
                    page.used -= 1;
                    self.map.len -= 1;
                    return Some((NodeMap::<T>::join(self.page, slot), v));
                }
            }
            self.page += 1;
            self.slot = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.map.len, Some(self.map.len))
    }
}

impl<T> Drop for Drain<'_, T> {
    fn drop(&mut self) {
        while self.next().is_some() {}
    }
}

/// A dense bitset over node ids: one bit per arena slot, for the
/// membership-only scratch sets of the maintenance plans.
#[derive(Default, Clone)]
pub struct NodeBitSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeBitSet {
    /// An empty set.
    pub fn new() -> NodeBitSet {
        NodeBitSet::default()
    }

    #[inline]
    fn split(id: NodeId) -> (usize, u64) {
        debug_assert!(!id.is_null(), "null NodeId used as a dense key");
        let idx = id.index() as usize;
        (idx >> 6, 1u64 << (idx & 63))
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `id` is a member.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        let (w, bit) = Self::split(id);
        self.words.get(w).is_some_and(|word| word & bit != 0)
    }

    /// Adds `id`; returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, bit) = Self::split(id);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `id`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (w, bit) = Self::split(id);
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let present = *word & bit != 0;
        *word &= !bit;
        self.len -= present as usize;
        present
    }

    /// Clears all bits, keeping the word vector allocated.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(NodeId::from_index(((wi << 6) | bit) as u32))
            })
        })
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

impl fmt::Debug for NodeBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Per-node label dimension of a [`NodeLabelMap`]: a node carries exactly
/// one label at a time, so `first` covers steady state and `rest` (an
/// un-allocated `Vec` until needed) absorbs the rare in-epoch id reuse
/// under a different label.
struct LabelSlot<T> {
    first: (Label, T),
    rest: Vec<(Label, T)>,
}

/// A dense map keyed by `(Label, NodeId)`, node-major.
///
/// The epoch logs (`tt_ivm`'s `DeltaLog`, the label-index staging buffer)
/// key by label *and* node because an arena slot freed under one label
/// can be recycled under another before the epoch commits. Keying the
/// page structure by node keeps the hot path direct-indexed; the label
/// dimension is resolved by at most one inline comparison in steady
/// state.
pub struct NodeLabelMap<T> {
    slots: NodeMap<LabelSlot<T>>,
    len: usize,
}

impl<T> Default for NodeLabelMap<T> {
    fn default() -> Self {
        NodeLabelMap {
            slots: NodeMap::new(),
            len: 0,
        }
    }
}

/// Where a `(label, node)` key lives inside its node's [`LabelSlot`].
enum SlotPos {
    Absent,
    First,
    Rest(usize),
}

impl<T> NodeLabelMap<T> {
    /// An empty map.
    pub fn new() -> NodeLabelMap<T> {
        NodeLabelMap::default()
    }

    /// Number of `(label, node)` entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn position(slot: &LabelSlot<T>, label: Label) -> SlotPos {
        if slot.first.0 == label {
            return SlotPos::First;
        }
        match slot.rest.iter().position(|(l, _)| *l == label) {
            Some(i) => SlotPos::Rest(i),
            None => SlotPos::Absent,
        }
    }

    /// The value for `(label, id)`, if present.
    pub fn get(&self, label: Label, id: NodeId) -> Option<&T> {
        let slot = self.slots.get(id)?;
        match Self::position(slot, label) {
            SlotPos::First => Some(&slot.first.1),
            SlotPos::Rest(i) => Some(&slot.rest[i].1),
            SlotPos::Absent => None,
        }
    }

    /// True if `(label, id)` has an entry.
    pub fn contains(&self, label: Label, id: NodeId) -> bool {
        self.get(label, id).is_some()
    }

    /// The entry for `(label, id)`, inserted via `default` if absent.
    /// One page-table lookup per call — this is the staging hot path.
    pub fn get_or_insert_with(
        &mut self,
        label: Label,
        id: NodeId,
        default: impl FnOnce() -> T,
    ) -> &mut T {
        // `default` moves into the closure only if the node slot is
        // fresh; an untouched `Some` afterwards means the slot existed.
        let mut default = Some(default);
        let len = &mut self.len;
        let slot = self.slots.get_or_insert_with(id, || {
            *len += 1;
            LabelSlot {
                first: (label, (default.take().expect("fresh slot"))()),
                rest: Vec::new(),
            }
        });
        // A fresh slot carries our label in `first`, so `position` finds
        // it there and the consumed default is never needed again.
        match Self::position(slot, label) {
            SlotPos::First => &mut slot.first.1,
            SlotPos::Rest(i) => &mut slot.rest[i].1,
            SlotPos::Absent => {
                self.len += 1;
                let make = default.take().expect("existing slot left default unused");
                slot.rest.push((label, make()));
                &mut slot.rest.last_mut().expect("just pushed").1
            }
        }
    }

    /// Inserts `value` for `(label, id)`, returning the displaced value.
    pub fn insert(&mut self, label: Label, id: NodeId, value: T) -> Option<T> {
        let mut value = Some(value);
        let entry = self.get_or_insert_with(label, id, || value.take().expect("fresh key"));
        // `value` survives only if the key already existed; displace it.
        value.map(|v| std::mem::replace(entry, v))
    }

    /// Removes and returns the entry for `(label, id)`.
    pub fn remove(&mut self, label: Label, id: NodeId) -> Option<T> {
        let pos = Self::position(self.slots.get(id)?, label);
        match pos {
            SlotPos::Absent => None,
            SlotPos::Rest(i) => {
                self.len -= 1;
                let slot = self.slots.get_mut(id).expect("present");
                Some(slot.rest.swap_remove(i).1)
            }
            SlotPos::First => {
                self.len -= 1;
                let slot = self.slots.get_mut(id).expect("present");
                if let Some(promoted) = slot.rest.pop() {
                    let old = std::mem::replace(&mut slot.first, promoted);
                    Some(old.1)
                } else {
                    Some(self.slots.remove(id).expect("present").first.1)
                }
            }
        }
    }

    /// Removes every entry, keeping node pages allocated.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Iterates `((label, id), &value)`, node-major.
    pub fn iter(&self) -> impl Iterator<Item = ((Label, NodeId), &T)> + '_ {
        self.slots.iter().flat_map(|(id, slot)| {
            std::iter::once((&slot.first, id))
                .chain(slot.rest.iter().map(move |e| (e, id)))
                .map(|(&(label, ref v), id)| ((label, id), v))
        })
    }

    /// Drains every entry as `((label, id), value)`, keeping pages.
    pub fn drain(&mut self) -> impl Iterator<Item = ((Label, NodeId), T)> + '_ {
        self.len = 0;
        self.slots.drain().flat_map(|(id, slot)| {
            std::iter::once(slot.first)
                .chain(slot.rest)
                .map(move |(label, v)| ((label, id), v))
        })
    }

    /// Approximate heap bytes: pages plus any spill vectors.
    pub fn memory_bytes(&self) -> usize {
        self.slots.memory_bytes()
            + self
                .slots
                .iter()
                .map(|(_, slot)| slot.rest.capacity() * std::mem::size_of::<(Label, T)>())
                .sum::<usize>()
    }
}

impl<T: fmt::Debug> fmt::Debug for NodeLabelMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::FxHashMap;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn map_insert_get_remove_across_pages() {
        let mut m: NodeMap<i64> = NodeMap::new();
        assert!(m.is_empty());
        // Spread keys across three pages.
        for i in [0u32, 1, 255, 256, 257, 1000] {
            assert_eq!(m.insert(n(i), i as i64), None);
        }
        assert_eq!(m.len(), 6);
        assert_eq!(m.page_count(), 3);
        assert_eq!(m.get(n(256)), Some(&256));
        assert_eq!(m.get(n(2)), None);
        assert_eq!(m.insert(n(256), -1), Some(256));
        assert_eq!(m.len(), 6, "overwrite does not grow");
        assert_eq!(m.remove(n(256)), Some(-1));
        assert_eq!(m.remove(n(256)), None);
        assert_eq!(m.len(), 5);
        assert!(m.page_count() >= 3, "pages are retained after removal");
    }

    #[test]
    fn map_get_or_insert_with() {
        let mut m: NodeMap<i64> = NodeMap::new();
        *m.get_or_insert_with(n(7), || 0) += 5;
        *m.get_or_insert_with(n(7), || 100) += 1;
        assert_eq!(m.get(n(7)), Some(&6));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_iter_ascending_and_clear_keeps_pages() {
        let mut m: NodeMap<u32> = NodeMap::new();
        for i in [513u32, 5, 300] {
            m.insert(n(i), i);
        }
        let items: Vec<(NodeId, u32)> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(items, vec![(n(5), 5), (n(300), 300), (n(513), 513)]);
        let pages = m.page_count();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.page_count(), pages, "clear retains pages");
        assert_eq!(m.iter().count(), 0);
        m.insert(n(5), 9);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_drain_yields_all_and_empties() {
        let mut m: NodeMap<i64> = NodeMap::new();
        for i in 0..600u32 {
            m.insert(n(i), i as i64);
        }
        let drained: FxHashMap<NodeId, i64> = m.drain().collect();
        assert_eq!(drained.len(), 600);
        assert_eq!(drained[&n(599)], 599);
        assert!(m.is_empty());
        // Partial drain still empties on drop.
        m.insert(n(1), 1);
        m.insert(n(400), 2);
        {
            let mut d = m.drain();
            assert!(d.next().is_some());
        }
        assert!(m.is_empty(), "dropped drain clears the rest");
    }

    #[test]
    fn map_clear_is_a_stamp_bump() {
        let mut m: NodeMap<i64> = NodeMap::new();
        for i in [0u32, 300, 700] {
            m.insert(n(i), i as i64);
        }
        let pages = m.page_count();
        m.clear();
        // Stale pages read as empty through every access path.
        assert!(m.is_empty());
        assert_eq!(m.get(n(0)), None);
        assert_eq!(m.get_mut(n(300)), None);
        assert!(!m.contains_key(n(700)));
        assert_eq!(m.remove(n(0)), None);
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.drain().count(), 0);
        assert_eq!(m.page_count(), pages, "clear retains (stale) pages");
        // First write to a stale page revives it; untouched entries of
        // the old generation never resurface.
        *m.get_or_insert_with(n(1), || 10) += 1;
        assert_eq!(m.get(n(1)), Some(&11));
        assert_eq!(m.get(n(0)), None, "old-generation neighbor stays dead");
        assert_eq!(m.len(), 1);
        // Repeated clears (including clear-of-empty) stay consistent.
        m.clear();
        m.clear();
        assert!(m.is_empty());
        m.insert(n(300), 5);
        assert_eq!(m.len(), 1);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(n(300), &5)]);
    }

    #[test]
    fn iter_early_exit_is_exhaustive_per_page() {
        // Entries at both edges and the middle of one page, plus a
        // second page: the occupancy-count early exit must still yield
        // everything, in order, exactly once.
        let mut m: NodeMap<u32> = NodeMap::new();
        for i in [0u32, 128, 255, 256, 511] {
            m.insert(n(i), i);
        }
        assert_eq!(
            m.iter().map(|(k, &v)| (k.index(), v)).collect::<Vec<_>>(),
            vec![(0, 0), (128, 128), (255, 255), (256, 256), (511, 511)]
        );
        // Removing mid-page entries keeps the count honest.
        m.remove(n(128));
        m.remove(n(255));
        assert_eq!(m.iter().count(), 3);
    }

    #[test]
    fn label_map_survives_stamp_clear() {
        let (a, b) = (Label(1), Label(2));
        let mut m: NodeLabelMap<i64> = NodeLabelMap::new();
        m.insert(a, n(4), 1);
        m.insert(b, n(4), 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(a, n(4)), None);
        assert_eq!(m.insert(a, n(4), 7), None, "no ghost from the old epoch");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(a, n(4)), Some(&7));
        assert_eq!(m.get(b, n(4)), None);
    }

    #[test]
    fn map_memory_grows_per_page_not_per_arena() {
        let mut sparse: NodeMap<i64> = NodeMap::new();
        sparse.insert(n(1_000_000), 1);
        // One page of payload plus the (lazy) page table.
        let one_page = std::mem::size_of::<Option<i64>>() * PAGE_LEN;
        assert!(sparse.memory_bytes() >= one_page);
        assert!(
            sparse.memory_bytes() < 16 * one_page,
            "a single far-off key must not materialize the whole range: {}",
            sparse.memory_bytes()
        );
    }

    #[test]
    fn bitset_insert_remove_contains_iter() {
        let mut s = NodeBitSet::new();
        assert!(s.insert(n(3)));
        assert!(!s.insert(n(3)), "double insert reports not-new");
        assert!(s.insert(n(64)));
        assert!(s.insert(n(1000)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(n(64)));
        assert!(!s.contains(n(65)));
        assert!(!s.contains(n(1_000_000)), "out of range is absent");
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![n(3), n(64), n(1000)],
            "ascending order"
        );
        assert!(s.remove(n(64)));
        assert!(!s.remove(n(64)));
        assert!(!s.remove(n(1_000_000)));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(s.memory_bytes() > 0, "clear retains words");
    }

    #[test]
    fn label_map_distinguishes_labels_on_one_node() {
        let (a, b) = (Label(0), Label(3));
        let mut m: NodeLabelMap<i64> = NodeLabelMap::new();
        assert_eq!(m.insert(a, n(4), 10), None);
        assert_eq!(m.insert(b, n(4), 20), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a, n(4)), Some(&10));
        assert_eq!(m.get(b, n(4)), Some(&20));
        assert_eq!(m.insert(a, n(4), 11), Some(10));
        assert_eq!(m.len(), 2, "overwrite does not grow");
        // Removing the inline entry promotes the spilled one.
        assert_eq!(m.remove(a, n(4)), Some(11));
        assert_eq!(m.get(b, n(4)), Some(&20));
        assert_eq!(m.remove(b, n(4)), Some(20));
        assert!(m.is_empty());
        assert_eq!(m.remove(b, n(4)), None);
    }

    #[test]
    fn label_map_get_or_insert_and_drain() {
        let (a, b) = (Label(1), Label(2));
        let mut m: NodeLabelMap<i64> = NodeLabelMap::new();
        *m.get_or_insert_with(a, n(1), || 0) += 7;
        *m.get_or_insert_with(a, n(1), || 99) += 1;
        *m.get_or_insert_with(b, n(1), || 0) -= 2;
        *m.get_or_insert_with(a, n(300), || 0) += 3;
        assert_eq!(m.len(), 3);
        let mut drained: Vec<((Label, NodeId), i64)> = m.drain().collect();
        drained.sort_by_key(|&((l, id), _)| (id, l.0));
        assert_eq!(
            drained,
            vec![((a, n(1)), 8), ((b, n(1)), -2), ((a, n(300)), 3)]
        );
        assert!(m.is_empty());
        // Reusable after drain.
        m.insert(a, n(1), 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.iter().count(), 1);
    }

    #[test]
    fn label_map_memory_accounts_pages() {
        let mut m: NodeLabelMap<i64> = NodeLabelMap::new();
        assert_eq!(m.memory_bytes(), 0);
        m.insert(Label(0), n(9), 1);
        assert!(m.memory_bytes() > 0);
    }
}
