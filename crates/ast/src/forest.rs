//! A sharded forest of independent AST arenas.
//!
//! The paper's motivating deployments maintain views over *many*
//! concurrent query plans — Spark contributes ~1000-node plans in
//! bursts, Greenplum/Orca a stream of independent optimizations (§2,
//! §7) — yet a single [`Ast`] arena models exactly one tree. A
//! [`Forest`] holds a fleet of arenas, one per [`TreeId`]-tagged
//! **shard**. Each shard is its own id space starting at zero, so:
//!
//! - every shard owns a contiguous, private [`NodeId`] range — the dense
//!   pages of any per-shard structure (`NodeMap`, views, delta buffers)
//!   partition trivially, because a page can only ever hold one shard's
//!   nodes;
//! - shards stay compact no matter how many trees the forest holds (a
//!   global id space would leave far-apart shards paying page-table
//!   range for every shard before them);
//! - per-shard maintenance state (epochs, views, indexes) commits and
//!   clears independently — the isolation that lets a compiler back-end
//!   scale near-linearly across independent inputs.
//!
//! A node is therefore globally addressed by a [`GlobalNodeId`]: the
//! `(tree, node)` pair. Layers above (the `ForestEngine` in
//! `treetoaster_core`, the JITD fleet runtime) dispatch on the tree
//! component and hand the node component to per-shard structures
//! unchanged.

use crate::arena::Ast;
use crate::schema::Schema;
use crate::NodeId;
use std::fmt;
use std::sync::Arc;

/// Compact handle of one shard (tree) in a [`Forest`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeId(u32);

impl TreeId {
    /// Rebuilds a tree id from a raw shard index.
    #[inline]
    pub fn from_index(index: u32) -> TreeId {
        TreeId(index)
    }

    /// Raw shard index.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Global address of a node: which shard, and which node within it.
/// Shard-local [`NodeId`]s overlap across trees by design; this pair is
/// the unambiguous forest-level handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalNodeId {
    /// The owning shard.
    pub tree: TreeId,
    /// The node within that shard's arena.
    pub node: NodeId,
}

impl GlobalNodeId {
    /// Pairs a shard with one of its nodes.
    #[inline]
    pub fn new(tree: TreeId, node: NodeId) -> GlobalNodeId {
        GlobalNodeId { tree, node }
    }
}

/// A fleet of independent AST arenas over one shared schema.
///
/// # Example
///
/// ```
/// use tt_ast::{Forest, GlobalNodeId};
/// use tt_ast::schema::arith_schema;
/// use tt_ast::sexpr::parse_sexpr;
///
/// let mut forest = Forest::new(arith_schema());
/// let a = forest.add_tree();
/// let b = forest.add_tree();
/// let root = parse_sexpr(forest.tree_mut(a), r#"(Const val=7)"#).unwrap();
/// forest.tree_mut(a).set_root(root);
/// assert_eq!(forest.tree_count(), 2);
/// assert_eq!(forest.live_total(), 1);
/// // Shards own independent, zero-based id spaces: a bare `NodeId` is
/// // ambiguous across trees, so forest-level addresses carry the pair.
/// assert_ne!(GlobalNodeId::new(a, root), GlobalNodeId::new(b, root));
/// forest.validate().unwrap();
/// ```
pub struct Forest {
    schema: Arc<Schema>,
    trees: Vec<Ast>,
}

impl Forest {
    /// An empty forest over `schema`.
    pub fn new(schema: Arc<Schema>) -> Forest {
        Forest {
            schema,
            trees: Vec::new(),
        }
    }

    /// A forest preallocated with `n` empty trees.
    pub fn with_trees(schema: Arc<Schema>, n: usize) -> Forest {
        let mut forest = Forest::new(schema);
        for _ in 0..n {
            forest.add_tree();
        }
        forest
    }

    /// The shared schema every shard follows.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Adds a fresh empty shard, returning its id.
    pub fn add_tree(&mut self) -> TreeId {
        let id = TreeId(u32::try_from(self.trees.len()).expect("forest exhausted"));
        self.trees.push(Ast::new(self.schema.clone()));
        id
    }

    /// Adopts an existing arena as a new shard. Panics if the arena's
    /// schema is not the forest's.
    pub fn adopt_tree(&mut self, ast: Ast) -> TreeId {
        assert!(
            Arc::ptr_eq(ast.schema(), &self.schema),
            "adopted tree must share the forest schema"
        );
        let id = TreeId(u32::try_from(self.trees.len()).expect("forest exhausted"));
        self.trees.push(ast);
        id
    }

    /// Number of shards.
    #[inline]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest holds no shards.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The shard for `id`.
    #[inline]
    pub fn tree(&self, id: TreeId) -> &Ast {
        &self.trees[id.0 as usize]
    }

    /// Mutable access to the shard for `id`.
    #[inline]
    pub fn tree_mut(&mut self, id: TreeId) -> &mut Ast {
        &mut self.trees[id.0 as usize]
    }

    /// Iterates `(id, shard)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TreeId, &Ast)> + '_ {
        self.trees
            .iter()
            .enumerate()
            .map(|(i, t)| (TreeId(i as u32), t))
    }

    /// All shard ids.
    pub fn tree_ids(&self) -> impl Iterator<Item = TreeId> {
        (0..self.trees.len() as u32).map(TreeId)
    }

    /// Total live nodes across all shards.
    pub fn live_total(&self) -> usize {
        self.trees.iter().map(Ast::live_count).sum()
    }

    /// Approximate heap bytes across all shards' arenas.
    pub fn memory_bytes(&self) -> usize {
        self.trees.iter().map(Ast::memory_bytes).sum()
    }

    /// Validates every shard ([`Ast::validate`]), naming the failing tree.
    pub fn validate(&self) -> Result<(), String> {
        for (id, tree) in self.iter() {
            tree.validate().map_err(|e| format!("{id:?}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::arith_schema;
    use crate::sexpr::parse_sexpr;

    fn grow(forest: &mut Forest, text: &str) -> TreeId {
        let id = forest.add_tree();
        let ast = forest.tree_mut(id);
        let root = parse_sexpr(ast, text).unwrap();
        ast.set_root(root);
        id
    }

    #[test]
    fn shards_have_independent_id_spaces() {
        let mut forest = Forest::new(arith_schema());
        let a = grow(
            &mut forest,
            r#"(Arith op="+" (Const val=0) (Var name="x"))"#,
        );
        let b = grow(&mut forest, r#"(Var name="lonely")"#);
        assert_eq!(forest.tree_count(), 2);
        // Both shards allocate from zero: the same local NodeId names
        // different nodes in different shards.
        let n0 = NodeId::from_index(0);
        assert!(forest.tree(a).is_live(n0));
        assert!(forest.tree(b).is_live(n0));
        assert_ne!(forest.tree(a).label(n0), forest.tree(b).label(n0));
        assert_ne!(GlobalNodeId::new(a, n0), GlobalNodeId::new(b, n0));
        assert_eq!(forest.live_total(), 4);
        forest.validate().unwrap();
    }

    #[test]
    fn mutating_one_shard_leaves_others_untouched() {
        let mut forest = Forest::with_trees(arith_schema(), 3);
        let ids: Vec<TreeId> = forest.tree_ids().collect();
        let schema = forest.schema().clone();
        for &id in &ids {
            let ast = forest.tree_mut(id);
            let c = ast.alloc(
                schema.expect_label("Const"),
                vec![crate::Value::Int(id.index() as i64)],
                vec![],
            );
            ast.set_root(c);
        }
        let before: Vec<usize> = ids.iter().map(|&id| forest.tree(id).live_count()).collect();
        // Rewrite shard 1 only.
        let ast = forest.tree_mut(ids[1]);
        let v = ast.alloc(
            schema.expect_label("Var"),
            vec![crate::Value::str("z")],
            vec![],
        );
        let old = ast.root();
        ast.replace(old, v);
        ast.free_subtree(old);
        assert_eq!(forest.tree(ids[0]).live_count(), before[0]);
        assert_eq!(forest.tree(ids[2]).live_count(), before[2]);
        forest.validate().unwrap();
    }

    #[test]
    fn adopt_tree_requires_shared_schema() {
        let schema = arith_schema();
        let mut forest = Forest::new(schema.clone());
        let mut ast = Ast::new(schema);
        let root = parse_sexpr(&mut ast, r#"(Const val=7)"#).unwrap();
        ast.set_root(root);
        let id = forest.adopt_tree(ast);
        assert_eq!(forest.tree(id).live_count(), 1);
    }

    #[test]
    #[should_panic(expected = "share the forest schema")]
    fn adopt_rejects_foreign_schema() {
        let mut forest = Forest::new(arith_schema());
        forest.adopt_tree(Ast::new(arith_schema()));
    }

    #[test]
    fn memory_sums_across_shards() {
        let mut forest = Forest::new(arith_schema());
        grow(&mut forest, r#"(Const val=1)"#);
        let one = forest.memory_bytes();
        grow(&mut forest, r#"(Const val=2)"#);
        assert!(forest.memory_bytes() >= one);
        // TreeId formatting is compact.
        assert_eq!(format!("{:?}", TreeId::from_index(3)), "t3");
    }
}
