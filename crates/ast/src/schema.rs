//! Node schemas.
//!
//! Per the paper's Definition 1, nodes follow a schema
//! `S : L → 2^Σ_M × ℕ`: each label fixes the attribute set present on all
//! nodes with that label, and an upper bound on the number of children.
//!
//! Labels and attribute names are interned to dense `u16` ids so that the
//! hot paths (pattern label tests, attribute lookups) are integer compares
//! and array indexing rather than string hashing.

use crate::fxhash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An interned node label (`ℓ ∈ L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u16);

/// An interned attribute name (`x ∈ Σ_M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrName(pub u16);

/// Definition of a single label: its name, ordered attribute list, and
/// child-count bound.
#[derive(Debug, Clone)]
pub struct LabelDef {
    /// Human-readable label name.
    pub name: String,
    /// Attributes present on every node with this label, in storage order.
    pub attrs: Vec<AttrName>,
    /// Upper bound on the number of children (`c ∈ ℕ`).
    pub max_children: usize,
}

/// An immutable schema shared by an [`crate::Ast`] and every engine
/// operating on it.
#[derive(Debug, Default)]
pub struct Schema {
    labels: Vec<LabelDef>,
    label_by_name: FxHashMap<String, Label>,
    attr_names: Vec<String>,
    attr_by_name: FxHashMap<String, AttrName>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            schema: Schema::default(),
        }
    }

    /// Number of declared labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Looks up a label by name.
    pub fn label(&self, name: &str) -> Option<Label> {
        self.label_by_name.get(name).copied()
    }

    /// Looks up a label by name, panicking with context if absent.
    pub fn expect_label(&self, name: &str) -> Label {
        self.label(name)
            .unwrap_or_else(|| panic!("label {name:?} not in schema"))
    }

    /// Looks up an attribute name.
    pub fn attr(&self, name: &str) -> Option<AttrName> {
        self.attr_by_name.get(name).copied()
    }

    /// Looks up an attribute name, panicking with context if absent.
    pub fn expect_attr(&self, name: &str) -> AttrName {
        self.attr(name)
            .unwrap_or_else(|| panic!("attribute {name:?} not in schema"))
    }

    /// The definition for `label`.
    #[inline]
    pub fn def(&self, label: Label) -> &LabelDef {
        &self.labels[label.0 as usize]
    }

    /// Label's display name.
    #[inline]
    pub fn label_name(&self, label: Label) -> &str {
        &self.def(label).name
    }

    /// Attribute's display name.
    #[inline]
    pub fn attr_name(&self, attr: AttrName) -> &str {
        &self.attr_names[attr.0 as usize]
    }

    /// Position of `attr` within `label`'s attribute storage, if declared.
    #[inline]
    pub fn attr_index(&self, label: Label, attr: AttrName) -> Option<usize> {
        self.def(label).attrs.iter().position(|a| *a == attr)
    }

    /// Iterates all labels.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.labels.len()).map(|i| Label(i as u16))
    }

    fn intern_attr(&mut self, name: &str) -> AttrName {
        if let Some(&a) = self.attr_by_name.get(name) {
            return a;
        }
        let id = AttrName(u16::try_from(self.attr_names.len()).expect("too many attributes"));
        self.attr_names.push(name.to_string());
        self.attr_by_name.insert(name.to_string(), id);
        id
    }
}

/// Builder for [`Schema`].
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Declares a label with its attribute names and maximum child count.
    /// Panics if the label was already declared.
    pub fn label(mut self, name: &str, attrs: &[&str], max_children: usize) -> Self {
        assert!(
            !self.schema.label_by_name.contains_key(name),
            "label {name:?} declared twice"
        );
        let attr_ids: Vec<AttrName> = attrs.iter().map(|a| self.schema.intern_attr(a)).collect();
        {
            // Duplicate attribute names within one label would make the
            // positional storage ambiguous.
            let mut sorted = attr_ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                attr_ids.len(),
                "label {name:?} repeats an attribute"
            );
        }
        let id = Label(u16::try_from(self.schema.labels.len()).expect("too many labels"));
        self.schema.labels.push(LabelDef {
            name: name.to_string(),
            attrs: attr_ids,
            max_children,
        });
        self.schema.label_by_name.insert(name.to_string(), id);
        self
    }

    /// Finalizes the schema.
    pub fn finish(self) -> Arc<Schema> {
        Arc::new(self.schema)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for def in &self.labels {
            let attrs: Vec<&str> = def.attrs.iter().map(|a| self.attr_name(*a)).collect();
            writeln!(
                f,
                "{}({}) / {} children",
                def.name,
                attrs.join(", "),
                def.max_children
            )?;
        }
        Ok(())
    }
}

/// The arithmetic-expression schema from the paper's running example
/// (Figure 3): `Arith{op}/2`, `Const{val}/0`, `Var{name}/0`.
pub fn arith_schema() -> Arc<Schema> {
    Schema::builder()
        .label("Arith", &["op"], 2)
        .label("Const", &["val"], 0)
        .label("Var", &["name"], 0)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = arith_schema();
        let arith = s.expect_label("Arith");
        assert_eq!(s.label_name(arith), "Arith");
        assert_eq!(s.def(arith).max_children, 2);
        let op = s.expect_attr("op");
        assert_eq!(s.attr_index(arith, op), Some(0));
        let val = s.expect_attr("val");
        assert_eq!(s.attr_index(arith, val), None, "val not declared on Arith");
        assert!(s.label("Missing").is_none());
    }

    #[test]
    fn attrs_are_shared_across_labels() {
        let s = Schema::builder()
            .label("A", &["x", "y"], 0)
            .label("B", &["y", "z"], 1)
            .finish();
        let y = s.expect_attr("y");
        assert_eq!(s.attr_index(s.expect_label("A"), y), Some(1));
        assert_eq!(s.attr_index(s.expect_label("B"), y), Some(0));
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_label_rejected() {
        let _ = Schema::builder().label("A", &[], 0).label("A", &[], 0);
    }

    #[test]
    #[should_panic(expected = "repeats an attribute")]
    fn duplicate_attr_in_label_rejected() {
        let _ = Schema::builder().label("A", &["x", "x"], 0);
    }

    #[test]
    fn display_lists_labels() {
        let s = arith_schema();
        let text = s.to_string();
        assert!(text.contains("Arith(op) / 2 children"));
        assert!(text.contains("Const(val) / 0 children"));
    }

    #[test]
    fn labels_iterator_visits_all() {
        let s = arith_schema();
        assert_eq!(s.labels().count(), 3);
    }
}
