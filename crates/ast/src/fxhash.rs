//! A fast, non-cryptographic hasher for hot paths.
//!
//! View maintenance touches `NodeId`-keyed hash maps on every AST mutation;
//! the standard library's SipHash is needlessly slow for 4-byte integer
//! keys. This is the well-known Fx multiply-rotate hash (as used by rustc
//! and Firefox), implemented locally so the workspace needs no extra
//! dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("a"), hash_of("b"));
    }

    #[test]
    fn handles_unaligned_byte_tails() {
        // 9 bytes exercises the remainder path.
        assert_ne!(hash_of([1u8; 9]), hash_of([2u8; 9]));
        assert_eq!(hash_of([7u8; 9]), hash_of([7u8; 9]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
