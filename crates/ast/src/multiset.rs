//! Generalized multisets (Blizard).
//!
//! §5 of the paper maintains views as *generalized multisets* — maps from
//! elements to signed integer multiplicities, with finite support. Union
//! (⊕) sums multiplicities; difference (⊖) subtracts. Update deltas make
//! essential use of negative multiplicities (removed nodes appear with
//! multiplicity −1).

use crate::arena::NodeId;
use crate::fxhash::FxHashMap;

/// A generalized multiset over [`NodeId`]s with signed multiplicities.
///
/// Invariant: the backing map stores only non-zero multiplicities, so
/// iteration and `support_len` reflect the support exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenMultiset {
    counts: FxHashMap<NodeId, i64>,
}

impl GenMultiset {
    /// The empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifts a set of nodes to the multiset mapping each to +1.
    pub fn from_set(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut m = Self::new();
        for n in nodes {
            m.add(n, 1);
        }
        m
    }

    /// The multiplicity of `node` (0 when outside the support).
    #[inline]
    pub fn count(&self, node: NodeId) -> i64 {
        self.counts.get(&node).copied().unwrap_or(0)
    }

    /// True iff `node` has non-zero multiplicity (the paper's `x ∈ M`).
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.count(node) != 0
    }

    /// Adds `delta` to `node`'s multiplicity, keeping the support minimal.
    pub fn add(&mut self, node: NodeId, delta: i64) {
        if delta == 0 {
            return;
        }
        let entry = self.counts.entry(node).or_insert(0);
        *entry += delta;
        if *entry == 0 {
            self.counts.remove(&node);
        }
    }

    /// Size of the support (elements with non-zero multiplicity).
    pub fn support_len(&self) -> usize {
        self.counts.len()
    }

    /// True if every multiplicity is zero.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(node, multiplicity)` pairs over the support.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, i64)> + '_ {
        self.counts.iter().map(|(&n, &c)| (n, c))
    }

    /// ⊕ — pointwise sum of multiplicities.
    pub fn union(&self, other: &GenMultiset) -> GenMultiset {
        let mut out = self.clone();
        for (n, c) in other.iter() {
            out.add(n, c);
        }
        out
    }

    /// ⊖ — pointwise difference of multiplicities.
    pub fn difference(&self, other: &GenMultiset) -> GenMultiset {
        let mut out = self.clone();
        for (n, c) in other.iter() {
            out.add(n, -c);
        }
        out
    }

    /// In-place ⊕.
    pub fn union_assign(&mut self, other: &GenMultiset) {
        for (n, c) in other.iter() {
            self.add(n, c);
        }
    }

    /// In-place ⊖.
    pub fn difference_assign(&mut self, other: &GenMultiset) {
        for (n, c) in other.iter() {
            self.add(n, -c);
        }
    }

    /// Approximate heap bytes (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.counts.capacity() * (1 + std::mem::size_of::<(NodeId, i64)>())
    }
}

impl FromIterator<(NodeId, i64)> for GenMultiset {
    fn from_iter<I: IntoIterator<Item = (NodeId, i64)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (n, c) in iter {
            m.add(n, c);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn empty_has_zero_counts() {
        let m = GenMultiset::new();
        assert_eq!(m.count(n(0)), 0);
        assert!(!m.contains(n(0)));
        assert!(m.is_empty());
    }

    #[test]
    fn add_and_cancel() {
        let mut m = GenMultiset::new();
        m.add(n(1), 1);
        m.add(n(1), 1);
        assert_eq!(m.count(n(1)), 2);
        m.add(n(1), -2);
        assert_eq!(m.count(n(1)), 0);
        assert!(m.is_empty(), "support stays minimal");
    }

    #[test]
    fn negative_multiplicities_allowed() {
        let mut m = GenMultiset::new();
        m.add(n(3), -1);
        assert_eq!(m.count(n(3)), -1);
        assert!(m.contains(n(3)), "x ∈ M iff M(x) ≠ 0");
    }

    #[test]
    fn union_sums_and_difference_subtracts() {
        let a = GenMultiset::from_set([n(1), n(2)]);
        let mut b = GenMultiset::new();
        b.add(n(2), 1);
        b.add(n(3), -1);
        let u = a.union(&b);
        assert_eq!(u.count(n(1)), 1);
        assert_eq!(u.count(n(2)), 2);
        assert_eq!(u.count(n(3)), -1);
        let d = a.difference(&b);
        assert_eq!(d.count(n(1)), 1);
        assert_eq!(d.count(n(2)), 0);
        assert_eq!(d.count(n(3)), 1);
    }

    #[test]
    fn example_5_1_delta() {
        // Example 5.1's delta: Const(0) and Arith(+) gain +1, while
        // Const(2), Var(y), Arith(×) get -1. Model with distinct ids.
        let new_desc = GenMultiset::from_set([n(10), n(11)]);
        let old_desc = GenMultiset::from_set([n(20), n(21), n(22)]);
        let delta = new_desc.difference(&old_desc);
        assert_eq!(delta.count(n(10)), 1);
        assert_eq!(delta.count(n(22)), -1);
        assert_eq!(delta.support_len(), 5);
    }

    #[test]
    fn union_then_difference_roundtrips() {
        let a: GenMultiset = [(n(1), 3), (n(2), -2)].into_iter().collect();
        let b: GenMultiset = [(n(1), 1), (n(3), 5)].into_iter().collect();
        assert_eq!(a.union(&b).difference(&b), a);
    }

    #[test]
    fn in_place_variants_match() {
        let a: GenMultiset = [(n(1), 2)].into_iter().collect();
        let b: GenMultiset = [(n(1), 1), (n(2), 1)].into_iter().collect();
        let mut c = a.clone();
        c.union_assign(&b);
        assert_eq!(c, a.union(&b));
        let mut d = a.clone();
        d.difference_assign(&b);
        assert_eq!(d, a.difference(&b));
    }
}
