//! Attribute values.
//!
//! The paper leaves the attribute domain `D` abstract. The two host systems
//! we reproduce need: integers, booleans, strings (arithmetic example and
//! query-plan attributes), single key/value records and record sequences
//! (JustInTimeData `Singleton` / `Array` payloads), and small integer sets
//! (Spark-style `output` / `references` attribute sets).
//!
//! `Records` and `IntSet` payloads are `Arc`-shared: a JITD crack step can
//! hand partitioned views of an array to new nodes without copying the
//! parent's data, and generator `Reuse` semantics get cheap attribute reuse.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A key/value record, the unit of data stored in the JITD index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Record {
    /// Lookup key.
    pub key: i64,
    /// Payload (an opaque integer standing in for YCSB's field blob).
    pub value: i64,
}

impl Record {
    /// Convenience constructor.
    pub const fn new(key: i64, value: i64) -> Self {
        Self { key, value }
    }
}

/// A sorted set of small integers with set-algebra helpers.
///
/// Used for Spark-like `output` / `references` attribute sets in the
/// query-optimizer substrate; the paper's Appendix D patterns constrain
/// these with subset tests (e.g. `o2 ⊆ r1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IntSet(Vec<u32>);

impl FromIterator<u32> for IntSet {
    /// Builds a set from any iterator (deduplicates and sorts).
    fn from_iter<I: IntoIterator<Item = u32>>(items: I) -> Self {
        let mut v: Vec<u32> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Self(v)
    }
}

impl IntSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self(Vec::new())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, x: u32) -> bool {
        self.0.binary_search(&x).is_ok()
    }

    /// True if `self ⊆ other`.
    pub fn subset_of(&self, other: &IntSet) -> bool {
        // Merge-walk; both sides are sorted.
        let mut it = other.0.iter();
        'outer: for x in &self.0 {
            for y in it.by_ref() {
                match y.cmp(x) {
                    Ordering::Less => continue,
                    Ordering::Equal => continue 'outer,
                    Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Set union.
    pub fn union(&self, other: &IntSet) -> IntSet {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        v.sort_unstable();
        v.dedup();
        IntSet(v)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntSet) -> IntSet {
        IntSet(
            self.0
                .iter()
                .copied()
                .filter(|x| other.contains(*x))
                .collect(),
        )
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }
}

/// An attribute value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Absent / irrelevant value.
    #[default]
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Interned string.
    Str(Arc<str>),
    /// One key/value record (JITD `Singleton` payload).
    Rec(Record),
    /// A shared, sorted run of records (JITD `Array` payload).
    Recs(Arc<Vec<Record>>),
    /// A shared sorted integer set (query-plan attribute sets).
    Set(Arc<IntSet>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Builds a record-sequence value.
    pub fn recs(records: Vec<Record>) -> Value {
        Value::Recs(Arc::new(records))
    }

    /// Builds an integer-set value.
    pub fn set(items: impl IntoIterator<Item = u32>) -> Value {
        Value::Set(Arc::new(IntSet::from_iter(items)))
    }

    /// Integer accessor; panics with the attribute context if mismatched.
    #[inline]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int value, found {other:?}"),
        }
    }

    /// Boolean accessor.
    #[inline]
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool value, found {other:?}"),
        }
    }

    /// String accessor.
    #[inline]
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str value, found {other:?}"),
        }
    }

    /// Record accessor.
    #[inline]
    pub fn as_rec(&self) -> Record {
        match self {
            Value::Rec(r) => *r,
            other => panic!("expected Rec value, found {other:?}"),
        }
    }

    /// Record-sequence accessor.
    #[inline]
    pub fn as_recs(&self) -> &Arc<Vec<Record>> {
        match self {
            Value::Recs(r) => r,
            other => panic!("expected Recs value, found {other:?}"),
        }
    }

    /// Integer-set accessor.
    #[inline]
    pub fn as_set(&self) -> &Arc<IntSet> {
        match self {
            Value::Set(s) => s,
            other => panic!("expected Set value, found {other:?}"),
        }
    }

    /// Heap bytes attributable to this value (for memory accounting).
    /// `Arc` payloads are charged in full to each holder: the bolt-on
    /// engines copy data out of the AST, while TreeToaster shares it, and
    /// that difference is precisely what the paper's memory axis measures.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Rec(_) => 0,
            Value::Str(s) => s.len(),
            Value::Recs(r) => r.len() * std::mem::size_of::<Record>(),
            Value::Set(s) => s.len() * std::mem::size_of::<u32>(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Rec(a), Rec(b)) => a == b,
            (Recs(a), Recs(b)) => Arc::ptr_eq(a, b) || a == b,
            (Set(a), Set(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Unit => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Rec(r) => r.hash(state),
            Value::Recs(r) => r.hash(state),
            Value::Set(s) => s.hash(state),
        }
    }
}

impl Value {
    /// Ordering used by the constraint grammar's `<` atom. Same-kind
    /// scalars compare naturally; `Set` values compare by the **subset
    /// partial order** (so `a ≤ b` in a constraint means `a ⊆ b`, the
    /// `o₂ ⊆ r₁` side conditions of the paper's Appendix D). Anything
    /// else returns `None`, making the comparison false.
    pub fn partial_cmp_scalar(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Set(a), Set(b)) => {
                let ab = a.subset_of(b);
                let ba = b.subset_of(a);
                match (ab, ba) {
                    (true, true) => Some(Ordering::Equal),
                    (true, false) => Some(Ordering::Less),
                    (false, true) => Some(Ordering::Greater),
                    (false, false) => None,
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Rec(r) => write!(f, "{}:{}", r.key, r.value),
            Value::Recs(rs) => {
                write!(f, "[")?;
                for (i, r) in rs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{}", r.key, r.value)?;
                }
                write!(f, "]")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intset_dedup_and_order() {
        let s = IntSet::from_iter([3, 1, 2, 3, 1]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn intset_subset() {
        let a = IntSet::from_iter([1, 3]);
        let b = IntSet::from_iter([1, 2, 3]);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(IntSet::empty().subset_of(&a));
        assert!(a.subset_of(&a));
    }

    #[test]
    fn intset_union_intersect() {
        let a = IntSet::from_iter([1, 2]);
        let b = IntSet::from_iter([2, 3]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn value_scalar_comparisons() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).partial_cmp_scalar(&Value::Int(2)), Some(Less));
        assert_eq!(
            Value::str("a").partial_cmp_scalar(&Value::str("a")),
            Some(Equal)
        );
        assert_eq!(Value::Int(1).partial_cmp_scalar(&Value::Bool(true)), None);
        assert_eq!(Value::Unit.partial_cmp_scalar(&Value::Unit), None);
    }

    #[test]
    fn value_equality_across_arcs() {
        let a = Value::recs(vec![Record::new(1, 10)]);
        let b = Value::recs(vec![Record::new(1, 10)]);
        assert_eq!(a, b);
        assert_ne!(a, Value::recs(vec![Record::new(2, 10)]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Rec(Record::new(1, 2)).to_string(), "1:2");
        assert_eq!(
            Value::recs(vec![Record::new(1, 2), Record::new(3, 4)]).to_string(),
            "[1:2,3:4]"
        );
        assert_eq!(Value::set([2, 1]).to_string(), "{1,2}");
    }

    #[test]
    fn heap_bytes_accounting() {
        assert_eq!(Value::Int(1).heap_bytes(), 0);
        assert_eq!(Value::recs(vec![Record::new(0, 0); 4]).heap_bytes(), 4 * 16);
        assert_eq!(Value::str("abcd").heap_bytes(), 4);
    }
}
