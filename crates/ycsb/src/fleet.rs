//! Multi-tree workload family: operation streams over a fleet of plans.
//!
//! The paper's scaling experiments (Figures 14/15) model optimizers that
//! juggle *many* concurrent plans: Spark submits ~1000-node plans in
//! bursts, Greenplum/Orca streams independent optimizations. The fleet
//! workloads reproduce those arrival shapes over `T` independent trees,
//! each tree carrying its own key space and its own seeded single-tree
//! [`Workload`]:
//!
//! | workload | arrival shape                                   | base mix |
//! |----------|--------------------------------------------------|----------|
//! | G        | **burst-of-plans**: runs of consecutive ops land on one tree, then the burst moves on (round-robin) — the Spark shape | A (50/50 read/update, zipfian) |
//! | H        | **steady-churn**: every op picks a tree uniformly at random — the Orca stream shape | A (50/50 read/update, zipfian) |
//! | I        | **skewed-churn**: a hot minority of trees (20%) absorbs most of the stream (80%) — the shape where work-stealing reorganization beats one dedicated worker per shard | A (50/50 read/update, zipfian) |
//!
//! All are deterministic under a seed, like the single-tree workloads.

use crate::workload::{Op, Workload, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation addressed to one tree of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOp {
    /// Index of the addressed tree (`0..trees`).
    pub tree: usize,
    /// The operation to run against that tree.
    pub op: Op,
}

/// How operations distribute across the fleet's trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPattern {
    /// Runs of `burst_len` consecutive ops target one tree, then the
    /// burst advances round-robin — a stream of plan-sized work units.
    Burst {
        /// Ops per burst before the stream moves to the next tree.
        burst_len: usize,
    },
    /// Every op independently picks a uniformly random tree.
    SteadyChurn,
    /// A hot minority of trees absorbs most of the stream: with
    /// probability `hot_share_pct`% the op lands uniformly on one of the
    /// first `⌈trees · hot_trees_pct%⌉` trees, otherwise uniformly on
    /// the cold remainder. (Percentages keep the variant `Eq`-able and
    /// the spec exactly representable.)
    Skewed {
        /// Percentage of trees in the hot set (at least one tree).
        hot_trees_pct: u32,
        /// Percentage of operations routed to the hot set.
        hot_share_pct: u32,
    },
}

/// A fleet workload definition: tree count, arrival pattern, per-tree mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Workload mnemonic (`'G'` or `'H'`).
    pub name: char,
    /// Number of trees in the fleet.
    pub trees: usize,
    /// The single-tree mix each tree's stream follows.
    pub base: WorkloadSpec,
    /// How ops spread across trees.
    pub pattern: FleetPattern,
}

impl FleetSpec {
    /// The standard fleet workloads, parameterized by tree count.
    pub fn standard(name: char, trees: usize) -> FleetSpec {
        assert!(trees >= 1, "a fleet needs at least one tree");
        match name {
            // Burst-of-plans: the Spark shape. 32 ops ≈ one plan's worth
            // of churn before the optimizer turns to the next plan.
            'G' => FleetSpec {
                name,
                trees,
                base: WorkloadSpec::standard('A'),
                pattern: FleetPattern::Burst { burst_len: 32 },
            },
            // Steady churn: the Orca stream shape.
            'H' => FleetSpec {
                name,
                trees,
                base: WorkloadSpec::standard('A'),
                pattern: FleetPattern::SteadyChurn,
            },
            // Skewed churn: 20% of the trees take 80% of the ops — the
            // scheduling shape where a work-stealing reorganizer pool
            // beats a dedicated worker per shard (the cold shards'
            // workers idle while the hot shards' backlogs grow).
            'I' => FleetSpec {
                name,
                trees,
                base: WorkloadSpec::standard('A'),
                pattern: FleetPattern::Skewed {
                    hot_trees_pct: 20,
                    hot_share_pct: 80,
                },
            },
            _ => panic!("unknown fleet workload {name:?}; expected G, H, or I"),
        }
    }

    /// All fleet workloads at one tree count.
    pub fn fleet_set(trees: usize) -> Vec<FleetSpec> {
        "GHI"
            .chars()
            .map(|c| FleetSpec::standard(c, trees))
            .collect()
    }

    /// Size of this spec's hot set (trees for `Skewed`; 0 otherwise).
    pub fn hot_tree_count(&self) -> usize {
        match self.pattern {
            FleetPattern::Skewed { hot_trees_pct, .. } => {
                (self.trees * hot_trees_pct as usize).div_ceil(100).max(1)
            }
            _ => 0,
        }
    }
}

/// A seeded, stateful fleet workload: yields [`FleetOp`]s, one
/// single-tree [`Workload`] per tree (independent key spaces).
pub struct FleetWorkload {
    spec: FleetSpec,
    per_tree: Vec<Workload>,
    rng: StdRng,
    /// Burst cursor: `(current tree, ops left in the burst)`.
    burst: (usize, usize),
}

impl FleetWorkload {
    /// Creates a fleet over `trees` key spaces of `records_per_tree`
    /// preloaded keys each. Tree `t`'s stream is seeded `seed + t`, so
    /// a fleet run and `T` independent single-tree runs draw identical
    /// per-tree op sequences — the forest equivalence suite leans on
    /// this.
    pub fn new(spec: FleetSpec, records_per_tree: u64, seed: u64) -> FleetWorkload {
        let per_tree = (0..spec.trees)
            .map(|t| Workload::new(spec.base, records_per_tree, seed.wrapping_add(t as u64)))
            .collect();
        FleetWorkload {
            spec,
            per_tree,
            rng: StdRng::seed_from_u64(seed ^ 0x666c_6565_745f_7773), // "fleet_ws"
            burst: (0, 0),
        }
    }

    /// The spec driving this fleet.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Number of trees.
    pub fn trees(&self) -> usize {
        self.per_tree.len()
    }

    /// Draws the next (tree, op) pair.
    pub fn next_op(&mut self) -> FleetOp {
        let tree = match self.spec.pattern {
            FleetPattern::Burst { burst_len } => {
                if self.burst.1 == 0 {
                    self.burst.1 = burst_len.max(1);
                }
                let t = self.burst.0;
                self.burst.1 -= 1;
                if self.burst.1 == 0 {
                    self.burst.0 = (self.burst.0 + 1) % self.per_tree.len();
                }
                t
            }
            FleetPattern::SteadyChurn => self.rng.gen_range(0..self.per_tree.len()),
            FleetPattern::Skewed { hot_share_pct, .. } => {
                let trees = self.per_tree.len();
                let hot = self.spec.hot_tree_count().min(trees);
                let roll: u32 = self.rng.gen_range(0..100);
                if roll < hot_share_pct || hot == trees {
                    self.rng.gen_range(0..hot)
                } else {
                    self.rng.gen_range(hot..trees)
                }
            }
        };
        FleetOp {
            tree,
            op: self.per_tree[tree].next_op(),
        }
    }

    /// Draws `n` fleet operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<FleetOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_workload_clusters_by_tree() {
        let mut w = FleetWorkload::new(FleetSpec::standard('G', 4), 100, 42);
        let ops = w.take_ops(256);
        // Ops arrive in runs of exactly burst_len per tree, round-robin.
        let FleetPattern::Burst { burst_len } = w.spec().pattern else {
            panic!("G is a burst workload");
        };
        for (i, chunk) in ops.chunks(burst_len).enumerate() {
            let expect = i % 4;
            assert!(
                chunk.iter().all(|f| f.tree == expect),
                "burst {i} not clustered on tree {expect}"
            );
        }
    }

    #[test]
    fn steady_churn_visits_every_tree() {
        let mut w = FleetWorkload::new(FleetSpec::standard('H', 5), 100, 7);
        let ops = w.take_ops(500);
        for t in 0..5 {
            let hits = ops.iter().filter(|f| f.tree == t).count();
            assert!(hits > 50, "tree {t} starved: {hits} ops of 500");
        }
    }

    #[test]
    fn deterministic_under_seed_and_tree_streams_match_solo_runs() {
        let mut a = FleetWorkload::new(FleetSpec::standard('H', 3), 64, 9);
        let mut b = FleetWorkload::new(FleetSpec::standard('H', 3), 64, 9);
        assert_eq!(a.take_ops(100), b.take_ops(100));
        // Tree t's sub-stream equals an independent Workload at seed+t.
        let mut fleet = FleetWorkload::new(FleetSpec::standard('G', 2), 64, 100);
        let ops = fleet.take_ops(128);
        for t in 0..2usize {
            let mine: Vec<Op> = ops.iter().filter(|f| f.tree == t).map(|f| f.op).collect();
            let mut solo = Workload::new(WorkloadSpec::standard('A'), 64, 100 + t as u64);
            let want = solo.take_ops(mine.len());
            assert_eq!(mine, want, "tree {t} sub-stream diverged");
        }
    }

    #[test]
    fn single_tree_fleet_degenerates() {
        let mut w = FleetWorkload::new(FleetSpec::standard('G', 1), 32, 3);
        assert!(w.take_ops(64).iter().all(|f| f.tree == 0));
        assert_eq!(w.trees(), 1);
        assert_eq!(FleetSpec::fleet_set(4).len(), 3);
    }

    #[test]
    fn skewed_workload_concentrates_on_hot_minority() {
        let spec = FleetSpec::standard('I', 10);
        assert_eq!(spec.hot_tree_count(), 2, "20% of 10 trees");
        let mut w = FleetWorkload::new(spec, 100, 13);
        let ops = w.take_ops(4000);
        let hot_hits = ops.iter().filter(|f| f.tree < 2).count();
        let share = hot_hits as f64 / ops.len() as f64;
        assert!(
            (share - 0.8).abs() < 0.05,
            "hot set got {share:.2} of the stream, expected ~0.80"
        );
        // Cold trees still see traffic (the dedicated-worker baseline
        // must have something to do on every shard).
        for t in 2..10 {
            assert!(ops.iter().any(|f| f.tree == t), "cold tree {t} starved");
        }
    }

    #[test]
    fn skewed_single_tree_and_tiny_fleets_degenerate() {
        // One tree: everything is hot.
        let mut w = FleetWorkload::new(FleetSpec::standard('I', 1), 32, 5);
        assert!(w.take_ops(64).iter().all(|f| f.tree == 0));
        // Two trees: hot set rounds up to one tree, cold set is tree 1.
        let spec = FleetSpec::standard('I', 2);
        assert_eq!(spec.hot_tree_count(), 1);
        let mut w = FleetWorkload::new(spec, 32, 5);
        let ops = w.take_ops(1000);
        let hot = ops.iter().filter(|f| f.tree == 0).count();
        assert!(hot > 700, "tree 0 should dominate, got {hot}/1000");
        assert!(hot < 1000, "tree 1 must not starve entirely");
        // Non-skewed specs report an empty hot set.
        assert_eq!(FleetSpec::standard('G', 8).hot_tree_count(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown fleet workload")]
    fn unknown_fleet_workload_rejected() {
        let _ = FleetSpec::standard('Z', 2);
    }
}
