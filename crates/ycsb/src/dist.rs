//! YCSB request distributions.
//!
//! The zipfian generator follows Gray et al.'s "Quickly generating
//! billion-record synthetic databases" (the same construction the YCSB
//! reference implementation uses), with the zeta constant precomputed for
//! the item count. `ScrambledZipfian` spreads the popular head across the
//! keyspace with an FNV-style hash; `Latest` favors recently inserted
//! items.

use rand::Rng;

/// The standard YCSB zipfian skew constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Draws item indices from `0..n` according to some popularity law.
pub trait RequestDistribution {
    /// Next item index in `[0, item_count)`.
    fn next_index(&mut self, rng: &mut impl Rng) -> u64;
    /// Informs the distribution that the item space grew to `n` items
    /// (used by insert-heavy workloads / `Latest`).
    fn grow_to(&mut self, n: u64);
    /// Current item-space size.
    fn item_count(&self) -> u64;
}

/// Uniform over `0..n`.
#[derive(Debug, Clone)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Uniform over `0..n` (n ≥ 1).
    pub fn new(n: u64) -> Uniform {
        assert!(n >= 1);
        Uniform { n }
    }
}

impl RequestDistribution for Uniform {
    fn next_index(&mut self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(0..self.n)
    }

    fn grow_to(&mut self, n: u64) {
        self.n = self.n.max(n);
    }

    fn item_count(&self) -> u64 {
        self.n
    }
}

/// Gray et al.'s zipfian generator over `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Zipfian over `0..n` with the standard constant 0.99.
    pub fn new(n: u64) -> Zipfian {
        Self::with_theta(n, ZIPFIAN_CONSTANT)
    }

    /// Zipfian with an explicit skew `theta ∈ (0, 1)`.
    pub fn with_theta(n: u64, theta: f64) -> Zipfian {
        assert!(n >= 1);
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let mut z = Zipfian {
            items: n,
            theta,
            zeta_n,
            zeta2,
            alpha: 0.0,
            eta: 0.0,
        };
        z.refresh();
        z
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // O(n) precompute; benches use n ≤ a few million, done once.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Incremental zeta extension when the item space grows.
    fn extend_zeta(&mut self, new_n: u64) {
        for i in (self.items + 1)..=new_n {
            self.zeta_n += 1.0 / (i as f64).powf(self.theta);
        }
        self.items = new_n;
        self.refresh();
    }

    fn refresh(&mut self) {
        self.alpha = 1.0 / (1.0 - self.theta);
        self.eta = (1.0 - (2.0 / self.items as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2 / self.zeta_n);
    }
}

impl RequestDistribution for Zipfian {
    fn next_index(&mut self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.items - 1)
    }

    fn grow_to(&mut self, n: u64) {
        if n > self.items {
            self.extend_zeta(n);
        }
    }

    fn item_count(&self) -> u64 {
        self.items
    }
}

/// Zipfian popularity scattered over the keyspace by an FNV-1a hash
/// (YCSB's `ScrambledZipfianGenerator`), so "hot" items are not
/// contiguous.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Scrambled zipfian over `0..n`.
    pub fn new(n: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(n),
        }
    }
}

fn fnv1a(mut x: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = OFFSET;
    for _ in 0..8 {
        hash ^= x & 0xff;
        hash = hash.wrapping_mul(PRIME);
        x >>= 8;
    }
    hash
}

impl RequestDistribution for ScrambledZipfian {
    fn next_index(&mut self, rng: &mut impl Rng) -> u64 {
        let rank = self.inner.next_index(rng);
        fnv1a(rank) % self.inner.item_count()
    }

    fn grow_to(&mut self, n: u64) {
        self.inner.grow_to(n);
    }

    fn item_count(&self) -> u64 {
        self.inner.item_count()
    }
}

/// YCSB's "latest" distribution: zipfian over recency — index `n−1` (the
/// newest item) is the most popular. Used by workload D.
#[derive(Debug, Clone)]
pub struct Latest {
    inner: Zipfian,
}

impl Latest {
    /// Latest-skewed over `0..n`.
    pub fn new(n: u64) -> Latest {
        Latest {
            inner: Zipfian::new(n),
        }
    }
}

impl RequestDistribution for Latest {
    fn next_index(&mut self, rng: &mut impl Rng) -> u64 {
        let n = self.inner.item_count();
        let rank = self.inner.next_index(rng);
        n - 1 - rank
    }

    fn grow_to(&mut self, n: u64) {
        self.inner.grow_to(n);
    }

    fn item_count(&self) -> u64 {
        self.inner.item_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(dist: &mut impl RequestDistribution, n: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n).map(|_| dist.next_index(&mut rng)).collect()
    }

    #[test]
    fn uniform_stays_in_range_and_covers() {
        let mut d = Uniform::new(10);
        let samples = draw(&mut d, 2000);
        assert!(samples.iter().all(|&x| x < 10));
        for v in 0..10 {
            assert!(samples.contains(&v), "value {v} never drawn");
        }
    }

    #[test]
    fn zipfian_head_is_heavy() {
        let mut d = Zipfian::new(1000);
        let samples = draw(&mut d, 20_000);
        assert!(samples.iter().all(|&x| x < 1000));
        let head = samples.iter().filter(|&&x| x == 0).count() as f64;
        let mid = samples.iter().filter(|&&x| x == 500).count() as f64;
        assert!(
            head > 20.0 * (mid + 1.0),
            "rank 0 ({head}) must dominate rank 500 ({mid})"
        );
    }

    #[test]
    fn zipfian_frequency_ratio_approximates_law() {
        // P(0)/P(1) ≈ 2^θ ≈ 1.99 for θ=0.99.
        let mut d = Zipfian::new(100);
        let samples = draw(&mut d, 200_000);
        let c0 = samples.iter().filter(|&&x| x == 0).count() as f64;
        let c1 = samples.iter().filter(|&&x| x == 1).count() as f64;
        let ratio = c0 / c1;
        assert!((1.5..2.6).contains(&ratio), "ratio {ratio} out of range");
    }

    #[test]
    fn zipfian_grow_extends_support() {
        let mut d = Zipfian::new(100);
        d.grow_to(200);
        assert_eq!(d.item_count(), 200);
        let samples = draw(&mut d, 50_000);
        assert!(samples.iter().all(|&x| x < 200));
        assert!(samples.iter().any(|&x| x >= 100), "new range reachable");
    }

    #[test]
    fn scrambled_zipfian_spreads_head() {
        let mut d = ScrambledZipfian::new(1000);
        let samples = draw(&mut d, 10_000);
        assert!(samples.iter().all(|&x| x < 1000));
        // The most frequent item is almost surely not index 0 once
        // scrambled; at minimum, frequencies concentrate on few values.
        let mut counts = std::collections::HashMap::new();
        for &s in &samples {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > samples.len() / 100, "still skewed after scrambling");
    }

    #[test]
    fn latest_prefers_newest() {
        let mut d = Latest::new(1000);
        let samples = draw(&mut d, 20_000);
        let newest = samples.iter().filter(|&&x| x == 999).count();
        let oldest = samples.iter().filter(|&&x| x == 0).count();
        assert!(newest > 10 * (oldest + 1));
        d.grow_to(2000);
        let samples = draw(&mut d, 20_000);
        let newest = samples.iter().filter(|&&x| x == 1999).count();
        assert!(newest > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d1 = Zipfian::new(500);
        let mut d2 = Zipfian::new(500);
        assert_eq!(draw(&mut d1, 100), draw(&mut d2, 100));
    }

    #[test]
    #[should_panic]
    fn zero_items_rejected() {
        let _ = Uniform::new(0);
    }
}
