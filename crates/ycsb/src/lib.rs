//! YCSB core-workload generator (Cooper et al. \[14\]).
//!
//! §7.2 of the paper: "To vary the distribution of optimization
//! opportunities we used the six baseline YCSB benchmark workloads as
//! input to JustInTimeData. Each workload exercises a different set of
//! node operations, resulting in ASTs composed of different node
//! structures, patterns, and the applicability of different rewrite
//! rules."
//!
//! The six core workloads:
//!
//! | workload | mix                               | request distribution |
//! |----------|-----------------------------------|----------------------|
//! | A        | 50% read / 50% update             | zipfian              |
//! | B        | 95% read / 5% update              | zipfian              |
//! | C        | 100% read                         | zipfian              |
//! | D        | 95% read / 5% insert (read latest)| latest               |
//! | E        | 95% scan / 5% insert              | zipfian (+uniform len)|
//! | F        | 50% read / 50% read-modify-write  | zipfian              |
//!
//! All randomness flows from a seeded [`rand::rngs::StdRng`] so runs are
//! reproducible; benches print their seeds.
//!
//! The [`fleet`] module extends the family to multi-tree deployments:
//! workloads **G** (burst-of-plans, the Spark arrival shape) and **H**
//! (steady-churn, the Orca stream shape) address a fleet of independent
//! trees, one seeded single-tree stream per tree.

pub mod dist;
pub mod fleet;
pub mod workload;

pub use dist::{Latest, RequestDistribution, ScrambledZipfian, Uniform, Zipfian};
pub use fleet::{FleetOp, FleetPattern, FleetSpec, FleetWorkload};
pub use workload::{Op, Workload, WorkloadSpec};
