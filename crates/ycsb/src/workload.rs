//! The six YCSB core workloads as operation streams.

use crate::dist::{Latest, RequestDistribution, ScrambledZipfian, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One key/value operation issued by the workload driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read of `key`.
    Read { key: i64 },
    /// Overwrite `key` with `value`.
    Update { key: i64, value: i64 },
    /// Insert a fresh key.
    Insert { key: i64, value: i64 },
    /// Range scan of `len` records starting at `key`.
    Scan { key: i64, len: usize },
    /// Read `key` then write back a modified value.
    ReadModifyWrite { key: i64, value: i64 },
}

impl Op {
    /// Short mnemonic for logs/tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Read { .. } => "read",
            Op::Update { .. } => "update",
            Op::Insert { .. } => "insert",
            Op::Scan { .. } => "scan",
            Op::ReadModifyWrite { .. } => "rmw",
        }
    }
}

/// Operation-mix proportions (must sum to 1.0) plus the request
/// distribution choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload mnemonic (`'A'`–`'F'`).
    pub name: char,
    /// Read proportion.
    pub read: f64,
    /// Update proportion.
    pub update: f64,
    /// Insert proportion.
    pub insert: f64,
    /// Scan proportion.
    pub scan: f64,
    /// Read-modify-write proportion.
    pub rmw: f64,
    /// Request distribution for existing keys.
    pub request: RequestKind,
}

/// Which popularity law drives key selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Scrambled zipfian (workloads A, B, C, E, F).
    Zipfian,
    /// Recency-skewed (workload D).
    Latest,
    /// Uniform (for ablations).
    Uniform,
}

impl WorkloadSpec {
    /// The standard YCSB core workload definitions.
    pub fn standard(name: char) -> WorkloadSpec {
        match name {
            'A' => WorkloadSpec {
                name,
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                request: RequestKind::Zipfian,
            },
            'B' => WorkloadSpec {
                name,
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                request: RequestKind::Zipfian,
            },
            'C' => WorkloadSpec {
                name,
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                request: RequestKind::Zipfian,
            },
            'D' => WorkloadSpec {
                name,
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                scan: 0.0,
                rmw: 0.0,
                request: RequestKind::Latest,
            },
            'E' => WorkloadSpec {
                name,
                read: 0.0,
                update: 0.0,
                insert: 0.05,
                scan: 0.95,
                rmw: 0.0,
                request: RequestKind::Zipfian,
            },
            'F' => WorkloadSpec {
                name,
                read: 0.5,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.5,
                request: RequestKind::Zipfian,
            },
            _ => panic!("unknown YCSB workload {name:?}; expected A-F"),
        }
    }

    /// All six core workloads.
    pub fn all() -> Vec<WorkloadSpec> {
        "ABCDEF".chars().map(WorkloadSpec::standard).collect()
    }

    /// The five workloads the paper's figures report (E is omitted there;
    /// our benches follow the figures and keep E available separately).
    pub fn paper_set() -> Vec<WorkloadSpec> {
        "ABCDF".chars().map(WorkloadSpec::standard).collect()
    }
}

enum Dist {
    Zipfian(ScrambledZipfian),
    Latest(Latest),
    Uniform(Uniform),
}

impl Dist {
    fn next_index(&mut self, rng: &mut StdRng) -> u64 {
        match self {
            Dist::Zipfian(d) => d.next_index(rng),
            Dist::Latest(d) => d.next_index(rng),
            Dist::Uniform(d) => d.next_index(rng),
        }
    }

    fn grow_to(&mut self, n: u64) {
        match self {
            Dist::Zipfian(d) => d.grow_to(n),
            Dist::Latest(d) => d.grow_to(n),
            Dist::Uniform(d) => d.grow_to(n),
        }
    }
}

/// A seeded, stateful workload: yields [`Op`]s and tracks the growing key
/// space (inserts extend it, and `Latest` re-skews toward new keys).
pub struct Workload {
    spec: WorkloadSpec,
    rng: StdRng,
    dist: Dist,
    scan_len: Uniform,
    key_count: u64,
}

impl Workload {
    /// Creates a workload over `record_count` preloaded keys.
    pub fn new(spec: WorkloadSpec, record_count: u64, seed: u64) -> Workload {
        assert!(record_count >= 1);
        let total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "op mix must sum to 1.0, got {total}"
        );
        let dist = match spec.request {
            RequestKind::Zipfian => Dist::Zipfian(ScrambledZipfian::new(record_count)),
            RequestKind::Latest => Dist::Latest(Latest::new(record_count)),
            RequestKind::Uniform => Dist::Uniform(Uniform::new(record_count)),
        };
        Workload {
            spec,
            rng: StdRng::seed_from_u64(seed),
            dist,
            scan_len: Uniform::new(100),
            key_count: record_count,
        }
    }

    /// The spec driving this workload.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Keys inserted so far (preload + dynamic inserts).
    pub fn key_count(&self) -> u64 {
        self.key_count
    }

    /// The keys to preload before running (0..record_count, as ordinal
    /// keys; the JITD driver maps them to records).
    pub fn preload_keys(&self) -> impl Iterator<Item = i64> {
        0..self.key_count as i64
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let x: f64 = self.rng.gen();
        let spec = self.spec;
        let value = self.rng.gen_range(0..1_000_000);
        if x < spec.read {
            Op::Read {
                key: self.pick_key(),
            }
        } else if x < spec.read + spec.update {
            Op::Update {
                key: self.pick_key(),
                value,
            }
        } else if x < spec.read + spec.update + spec.insert {
            let key = self.key_count as i64;
            self.key_count += 1;
            self.dist.grow_to(self.key_count);
            Op::Insert { key, value }
        } else if x < spec.read + spec.update + spec.insert + spec.scan {
            let len = self.scan_len.next_index(&mut self.rng) as usize + 1;
            Op::Scan {
                key: self.pick_key(),
                len,
            }
        } else {
            Op::ReadModifyWrite {
                key: self.pick_key(),
                value,
            }
        }
    }

    /// Draws `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }

    fn pick_key(&mut self) -> i64 {
        self.dist.next_index(&mut self.rng) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_of(ops: &[Op]) -> std::collections::HashMap<&'static str, usize> {
        let mut m = std::collections::HashMap::new();
        for op in ops {
            *m.entry(op.kind()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn workload_a_mix() {
        let mut w = Workload::new(WorkloadSpec::standard('A'), 1000, 42);
        let mix = mix_of(&w.take_ops(10_000));
        let reads = mix["read"] as f64;
        let updates = mix["update"] as f64;
        assert!((reads / 10_000.0 - 0.5).abs() < 0.03);
        assert!((updates / 10_000.0 - 0.5).abs() < 0.03);
        assert!(!mix.contains_key("insert"));
    }

    #[test]
    fn workload_c_is_read_only() {
        let mut w = Workload::new(WorkloadSpec::standard('C'), 1000, 42);
        let mix = mix_of(&w.take_ops(5000));
        assert_eq!(mix.len(), 1);
        assert_eq!(mix["read"], 5000);
    }

    #[test]
    fn workload_d_inserts_extend_keyspace() {
        let mut w = Workload::new(WorkloadSpec::standard('D'), 1000, 42);
        let ops = w.take_ops(10_000);
        let inserts: Vec<i64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Insert { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        assert!(!inserts.is_empty());
        // Inserted keys are fresh and sequential from the preload count.
        assert_eq!(inserts[0], 1000);
        assert!(inserts.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(w.key_count(), 1000 + inserts.len() as u64);
    }

    #[test]
    fn workload_e_scans_dominate() {
        let mut w = Workload::new(WorkloadSpec::standard('E'), 1000, 42);
        let ops = w.take_ops(5000);
        let mix = mix_of(&ops);
        assert!(mix["scan"] > 4500);
        // Scan lengths in 1..=100.
        for op in &ops {
            if let Op::Scan { len, .. } = op {
                assert!((1..=100).contains(len));
            }
        }
    }

    #[test]
    fn workload_f_has_rmw() {
        let mut w = Workload::new(WorkloadSpec::standard('F'), 1000, 42);
        let mix = mix_of(&w.take_ops(5000));
        assert!(mix["rmw"] > 2000);
        assert!(mix["read"] > 2000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Workload::new(WorkloadSpec::standard('A'), 1000, 7);
        let mut b = Workload::new(WorkloadSpec::standard('A'), 1000, 7);
        assert_eq!(a.take_ops(100), b.take_ops(100));
        let mut c = Workload::new(WorkloadSpec::standard('A'), 1000, 8);
        assert_ne!(a.take_ops(100), c.take_ops(100));
    }

    #[test]
    fn keys_stay_in_range() {
        let mut w = Workload::new(WorkloadSpec::standard('B'), 500, 42);
        for op in w.take_ops(5000) {
            let key = match op {
                Op::Read { key }
                | Op::Update { key, .. }
                | Op::Insert { key, .. }
                | Op::Scan { key, .. }
                | Op::ReadModifyWrite { key, .. } => key,
            };
            assert!((0..500 + 5000).contains(&key));
        }
    }

    #[test]
    fn paper_set_excludes_e() {
        let names: Vec<char> = WorkloadSpec::paper_set().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!['A', 'B', 'C', 'D', 'F']);
        assert_eq!(WorkloadSpec::all().len(), 6);
    }

    #[test]
    #[should_panic(expected = "unknown YCSB workload")]
    fn unknown_workload_rejected() {
        let _ = WorkloadSpec::standard('Z');
    }
}
