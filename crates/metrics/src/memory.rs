//! Memory accounting.
//!
//! The paper reports "memory pages allocated" as read from the Linux
//! `/proc` interface (§7.2, Figures 11 and 13). Our primary measurement is
//! *per-structure byte accounting* — every search strategy reports the live
//! bytes of its views, indexes, and shadow state — converted to 4 KiB pages,
//! which isolates exactly the overhead the paper's figures compare. The
//! `/proc/self/statm` probe is retained for whole-process cross-checks.

/// Bytes per page assumed by [`bytes_to_pages`] (standard 4 KiB).
pub const PAGE_BYTES: usize = 4096;

/// Converts a byte count to pages, rounding up (a partially used page is
/// still an allocated page).
#[inline]
pub fn bytes_to_pages(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_BYTES)
}

/// Reads resident pages for this process from `/proc/self/statm`.
///
/// Returns `None` on platforms without procfs or if parsing fails. The
/// second whitespace-separated field of `statm` is the resident set size in
/// pages.
pub fn statm_resident_pages() -> Option<u64> {
    let content = std::fs::read_to_string("/proc/self/statm").ok()?;
    content.split_whitespace().nth(1)?.parse().ok()
}

/// Rough live-byte estimators for standard containers, used by the
/// strategies' `memory_bytes()` accounting. These deliberately estimate the
/// *backing allocation*, not the stack size of the handle.
pub mod estimate {
    /// Bytes held by a `Vec<T>`'s heap buffer.
    #[inline]
    pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
        v.capacity() * std::mem::size_of::<T>()
    }

    /// Approximate bytes held by a hash map with `cap` capacity buckets of
    /// `(K, V)` entries. Hashbrown stores one control byte per bucket plus
    /// the entry itself; we charge 1 + size_of::<(K,V)>() per bucket.
    #[inline]
    pub fn hashmap_bytes<K, V>(capacity: usize) -> usize {
        capacity * (1 + std::mem::size_of::<(K, V)>())
    }

    /// Approximate bytes for a hash set of `K`.
    #[inline]
    pub fn hashset_bytes<K>(capacity: usize) -> usize {
        capacity * (1 + std::mem::size_of::<K>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_zero_pages() {
        assert_eq!(bytes_to_pages(0), 0);
    }

    #[test]
    fn partial_pages_round_up() {
        assert_eq!(bytes_to_pages(1), 1);
        assert_eq!(bytes_to_pages(PAGE_BYTES), 1);
        assert_eq!(bytes_to_pages(PAGE_BYTES + 1), 2);
        assert_eq!(bytes_to_pages(10 * PAGE_BYTES), 10);
    }

    #[test]
    fn statm_probe_works_on_linux() {
        // On Linux (the CI/bench platform) the probe must succeed and report
        // a nonzero resident set.
        if cfg!(target_os = "linux") {
            let pages = statm_resident_pages().expect("statm readable");
            assert!(pages > 0);
        }
    }

    #[test]
    fn vec_estimate_tracks_capacity() {
        let v: Vec<u64> = Vec::with_capacity(16);
        assert_eq!(estimate::vec_bytes(&v), 16 * 8);
    }
}
