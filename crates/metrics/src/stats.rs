//! Descriptive statistics for benchmark samples.
//!
//! The paper presents per-rule latencies as boxplots (Figures 9, 10) and
//! per-workload aggregates as bar charts with error structure (Figure 12).
//! [`Summary`] captures everything those plots need: count, mean, standard
//! deviation, and the five-number summary (min, q1, median, q3, max) plus
//! p95.

/// Five-number summary plus mean/stddev/p95 over a set of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample set. Returns `None` for an empty input.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            q1: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.50),
            q3: percentile(&sorted, 0.75),
            p95: percentile(&sorted, 0.95),
            max: sorted[n - 1],
        })
    }

    /// Summarizes integer samples (e.g. nanosecond latencies).
    pub fn of_u64(samples: &[u64]) -> Option<Self> {
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::of(&as_f64)
    }
}

/// Linear-interpolation percentile over a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = q * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Incremental sample collector that avoids holding callers to a fixed
/// sample layout; finalize with [`SummaryBuilder::finish`].
#[derive(Debug, Default, Clone)]
pub struct SummaryBuilder {
    samples: Vec<f64>,
}

impl SummaryBuilder {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector pre-sized for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn push(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    /// Records one integer sample.
    #[inline]
    pub fn push_u64(&mut self, sample: u64) {
        self.samples.push(sample as f64);
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples collected so far.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another collector's samples into this one.
    pub fn extend_from(&mut self, other: &SummaryBuilder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Produces the summary (`None` if no samples were recorded).
    pub fn finish(&self) -> Option<Summary> {
        Summary::of(&self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(SummaryBuilder::new().finish().is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_quartiles() {
        // 1..=5 has median 3, q1 2, q3 4 under linear interpolation.
        let s = Summary::of(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn p95_interpolates() {
        let samples: Vec<f64> = (0..=100).map(|x| x as f64).collect();
        let s = Summary::of(&samples).unwrap();
        assert!((s.p95 - 95.0).abs() < 1e-9);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn builder_matches_direct() {
        let mut b = SummaryBuilder::with_capacity(3);
        b.push_u64(1);
        b.push_u64(2);
        b.push_u64(3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.finish(), Summary::of(&[1.0, 2.0, 3.0]));
    }
}
