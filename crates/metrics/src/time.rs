//! Monotonic timing utilities.
//!
//! The paper reports "CPU ticks" (rdtsc). We use [`std::time::Instant`]
//! nanoseconds instead: it is monotonic, portable, and — since every figure
//! in the paper compares *relative* latencies between search strategies —
//! the substitution does not affect any conclusion (DESIGN.md §3).

use std::time::Instant;

/// Returns a monotonic timestamp in nanoseconds since an arbitrary epoch.
///
/// Only differences between two calls are meaningful.
#[inline]
pub fn now_ns() -> u64 {
    // A process-wide epoch keeps the returned values small enough to
    // subtract without overflow concerns for any realistic run length.
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// A resumable stopwatch accumulating elapsed nanoseconds across intervals.
///
/// Used by the instrumented optimizers to attribute time to phases
/// (search / effective rewrite / ineffective rewrite / fixpoint comparison)
/// the way the paper's Figure 1 breakdown does.
#[derive(Debug, Default, Clone)]
pub struct Stopwatch {
    total_ns: u64,
    started_at: Option<u64>,
    intervals: u64,
}

impl Stopwatch {
    /// Creates a stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or restarts) an interval. Panics if already running.
    #[inline]
    pub fn start(&mut self) {
        assert!(self.started_at.is_none(), "stopwatch already running");
        self.started_at = Some(now_ns());
    }

    /// Ends the current interval, adding it to the total. Panics if stopped.
    #[inline]
    pub fn stop(&mut self) {
        let started = self.started_at.take().expect("stopwatch not running");
        self.total_ns += now_ns().saturating_sub(started);
        self.intervals += 1;
    }

    /// Times a closure as one interval and returns its result.
    #[inline]
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.start();
        let out = f();
        self.stop();
        out
    }

    /// Total accumulated nanoseconds across all completed intervals.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Number of completed intervals.
    #[inline]
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Mean nanoseconds per completed interval (0 if none).
    pub fn mean_ns(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.intervals as f64
        }
    }

    /// Resets the stopwatch to its initial state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_accumulates_intervals() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::hint::black_box(1 + 1));
        sw.time(|| std::hint::black_box(2 + 2));
        assert_eq!(sw.intervals(), 2);
        // Elapsed time is non-negative and the mean is defined.
        assert!(sw.mean_ns() >= 0.0);
    }

    #[test]
    fn stopwatch_reset_clears_state() {
        let mut sw = Stopwatch::new();
        sw.time(|| ());
        sw.reset();
        assert_eq!(sw.total_ns(), 0);
        assert_eq!(sw.intervals(), 0);
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn stopwatch_double_start_panics() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn stopwatch_stop_without_start_panics() {
        let mut sw = Stopwatch::new();
        sw.stop();
    }
}
