//! Minimal JSON tree, writer, and parser.
//!
//! The bench pipeline emits machine-readable `BENCH_*.json` trajectories
//! and CI validates them; both sides live here so the format has exactly
//! one definition and no external dependency (the build environment is
//! offline). The writer pretty-prints deterministically (object key
//! order is preserved, two-space indent); the parser accepts standard
//! JSON. Non-finite numbers have no JSON representation and render as
//! `null`.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) if !x.is_finite() => out.push_str("null"),
            Json::Num(x) => {
                // Integral values print without a fraction; everything
                // else uses Rust's shortest round-trip form.
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut at = 0usize;
        let value = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing content at byte {at}"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*at..].starts_with(token.as_bytes()) {
        *at += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {at}", at = *at))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, at, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, at, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, at, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, at).map(Json::Str),
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, at)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {at}", at = *at)),
                }
            }
        }
        Some(b'{') => {
            *at += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, at);
                let key = parse_string(bytes, at)?;
                skip_ws(bytes, at);
                expect(bytes, at, ":")?;
                let value = parse_value(bytes, at)?;
                pairs.push((key, value));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {at}", at = *at)),
                }
            }
        }
        Some(_) => parse_number(bytes, at),
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    if bytes.get(*at) != Some(&b'"') {
        return Err(format!("expected string at byte {at}", at = *at));
    }
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*at + 1..*at + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}", at = *at)),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let start = *at;
                *at += 1;
                while *at < bytes.len() && bytes[*at] & 0xC0 == 0x80 {
                    *at += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*at]).expect("valid utf8"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    let start = *at;
    while *at < bytes.len() && matches!(bytes[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *at += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*at]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let doc = Json::obj([
            ("name", Json::Str("treetoaster".into())),
            ("quick", Json::Bool(true)),
            ("ns", Json::Num(1234.5)),
            ("count", Json::Num(42.0)),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x\"y".into())]),
            ),
            ("empty_obj", Json::Obj(Vec::new())),
            ("empty_arr", Json::Arr(Vec::new())),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn parse_standard_json() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null}, "s": "hAi"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hAi"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_lookup_misses_cleanly() {
        let v = Json::obj([("a", Json::Num(1.0))]);
        assert!(v.get("b").is_none());
        assert!(Json::Null.get("a").is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_arr().is_none());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let doc = Json::Str("héllo ☃ “quoted”".into());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }
}
