//! Measurement substrate for the TreeToaster reproduction.
//!
//! The paper (§7.2) measures three axes: (i) time spent finding a pattern
//! match, (ii) time spent maintaining support structures, and (iii) memory
//! allocated. This crate provides the plumbing shared by every experiment:
//!
//! - [`time`]: monotonic nanosecond timers (the paper reports CPU ticks; we
//!   report `Instant` nanoseconds — see DESIGN.md §3 for the substitution).
//! - [`stats`]: descriptive statistics (mean, quantiles, boxplot summaries).
//! - [`memory`]: byte→page conversion and a `/proc/self/statm` probe
//!   mirroring the paper's Linux `/proc` measurements.
//! - [`table`]: aligned-table and CSV output so each benchmark prints the
//!   same rows/series the corresponding paper figure plots.
//! - [`json`]: a dependency-free JSON tree/writer/parser backing the
//!   machine-readable `BENCH_*.json` trajectories and their CI checker.

pub mod json;
pub mod memory;
pub mod stats;
pub mod table;
pub mod time;

pub use json::Json;
pub use memory::{bytes_to_pages, statm_resident_pages, PAGE_BYTES};
pub use stats::{Summary, SummaryBuilder};
pub use table::{Csv, Table};
pub use time::{now_ns, Stopwatch};
