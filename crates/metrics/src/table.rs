//! Aligned-table and CSV output.
//!
//! Each figure harness prints a human-readable aligned table (the same
//! rows/series the paper's figure plots) and writes a CSV alongside it so
//! results can be replotted. CSVs default to `target/figures/`.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A simple right-padded text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        };
        emit(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// CSV writer with the same header/row discipline as [`Table`].
#[derive(Debug, Clone)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a CSV buffer with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Serializes to CSV text (RFC-4180 quoting for cells containing
    /// commas, quotes, or newlines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Writes the CSV under the standard figure output directory
    /// (`<workspace>/target/figures/<name>.csv`), creating it if needed.
    /// Returns the written path.
    pub fn write_to_figures_dir(&self, name: &str) -> io::Result<PathBuf> {
        let dir = figures_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Writes the CSV to an explicit path.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

/// Directory where figure CSVs land: `$TT_FIGURES_DIR`, else
/// `<workspace>/target/figures`. The workspace root is resolved from this
/// crate's manifest directory because `cargo bench` runs bench binaries
/// with the *package* directory as CWD, not the workspace root.
pub fn figures_dir() -> PathBuf {
    std::env::var_os("TT_FIGURES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/figures"))
        })
}

fn quote(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float with a sensible fixed precision for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_rule() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" starts at the same offset in every line.
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off..off + 1], "1");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut c = Csv::new(["k", "v"]);
        c.row(["plain", "has,comma"]);
        c.row(["quote\"inside", "line\nbreak"]);
        let s = c.render();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"quote\"\"inside\""));
        assert!(s.contains("\"line\nbreak\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("tt_metrics_test");
        let path = dir.join("out.csv");
        let mut c = Csv::new(["x"]);
        c.row(["1"]);
        c.write_to(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting_tiers() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1.2345), "1.234");
    }
}
