//! The TCP front end: one listener, one thread per connection, a
//! shared stop flag, and a clean drain on the way out.
//!
//! Connections speak the binary frame protocol by default. A
//! connection whose first byte is `(` is switched to the s-expression
//! debug mode: newline-delimited [`Request::parse_sexpr`] in,
//! [`Response::to_sexpr`] lines out — `printf '(open records=8 seed=1)' | nc`
//! is a complete debug client.

use crate::daemon::{Daemon, DrainReport};
use crate::protocol::{read_frame, write_frame, ErrorCode, Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running server: the listener plus the shared shutdown flag.
pub struct Server {
    listener: TcpListener,
    daemon: Arc<Daemon>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, daemon: Arc<Daemon>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            daemon,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (for clients when the port was ephemeral).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return: set it from another
    /// thread or a signal handler.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Accept loop. Returns once the stop flag is set (by a signal
    /// handler or a client's `(stop)`), after joining every connection
    /// thread and draining the daemon — the returned report is the
    /// "clean drain" receipt.
    pub fn run(self) -> io::Result<DrainReport> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let daemon = self.daemon.clone();
                    let stop = self.stop.clone();
                    conns.push(std::thread::spawn(move || {
                        // Connection errors only tear down that client.
                        let _ = serve_connection(stream, &daemon, &stop);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished connection threads so a long-lived server
            // does not accumulate handles.
            conns.retain(|h| !h.is_finished());
        }
        for handle in conns {
            let _ = handle.join();
        }
        Ok(self.daemon.drain())
    }
}

/// Serves one connection until EOF, error, or server stop. Read
/// timeouts let the thread notice the stop flag between requests.
fn serve_connection(stream: TcpStream, daemon: &Daemon, stop: &AtomicBool) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut peek = [0u8; 1];
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match stream.peek(&mut peek) {
            Ok(0) => return Ok(()),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if peek[0] == b'(' {
        serve_sexpr(stream, daemon, stop)
    } else {
        serve_binary(stream, daemon, stop)
    }
}

fn serve_binary(mut stream: TcpStream, daemon: &Daemon, stop: &AtomicBool) -> io::Result<()> {
    loop {
        let payload = loop {
            if stop.load(Ordering::Acquire) {
                return Ok(());
            }
            match read_frame(&mut stream) {
                Ok(Some(payload)) => break payload,
                Ok(None) => return Ok(()),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        };
        let response = match Request::decode(&payload) {
            Ok(req) => {
                let resp = daemon.handle(&req);
                if matches!(req, Request::Stop) {
                    write_frame(&mut stream, &resp.encode())?;
                    stop.store(true, Ordering::Release);
                    return Ok(());
                }
                resp
            }
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
            },
        };
        write_frame(&mut stream, &response.encode())?;
    }
}

fn serve_sexpr(stream: TcpStream, daemon: &Daemon, stop: &AtomicBool) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        loop {
            if stop.load(Ordering::Acquire) {
                return Ok(());
            }
            match reader.read_line(&mut line) {
                Ok(0) if line.trim().is_empty() => return Ok(()),
                Ok(_) if line.trim().is_empty() => break, // blank line
                Ok(_) if line.ends_with('\n') || line.trim().ends_with(')') => break,
                Ok(_) => {} // partial line before timeout: keep reading
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let response = match Request::parse_sexpr(text) {
            Ok(req) => {
                let resp = daemon.handle(&req);
                if matches!(req, Request::Stop) {
                    writeln!(writer, "{}", resp.to_sexpr())?;
                    stop.store(true, Ordering::Release);
                    return Ok(());
                }
                resp
            }
            Err(msg) => Response::Error {
                code: ErrorCode::Malformed,
                message: msg,
            },
        };
        writeln!(writer, "{}", response.to_sexpr())?;
    }
}
