//! `tt-serve` — the plan-serving daemon.
//!
//! ```text
//! TT_SERVE_ADDR=127.0.0.1:7543 TT_SESSIONS=64 TT_WORKERS=2 tt-serve
//! ```
//!
//! Configuration comes from the typed [`FleetConfig::from_env`] knobs
//! (`TT_SESSIONS`, `TT_WORKERS`, `TT_HEAT_THRESHOLD`,
//! `TT_CRACK_THRESHOLD`, …) plus `TT_SERVE_ADDR` for the bind address.
//! SIGTERM/SIGINT (or a client's `stop` request) trigger a clean
//! drain: every open session is quiesced and every in-flight commit
//! lands before the process exits.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use treetoaster_core::FleetConfig;
use tt_jitd::StrategyKind;
use tt_service::{Daemon, Server};

/// The stop flag the signal handler flips; the server polls it.
static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

// Raw signal hookup: std already links libc, so declaring `signal`
// directly avoids a dependency the vendored tree does not carry.
// Storing to an atomic is async-signal-safe.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    if let Some(stop) = STOP.get() {
        stop.store(true, Ordering::Release);
    }
}

fn main() -> std::io::Result<()> {
    let addr = std::env::var("TT_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7543".to_string());
    let config = FleetConfig::from_env();
    let daemon = Arc::new(Daemon::new(StrategyKind::TreeToaster, config));
    let server = Server::bind(&addr, daemon)?;
    let local = server.local_addr()?;
    STOP.set(server.stop_flag()).expect("stop flag set once");
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
    println!(
        "tt-serve: listening on {local} ({} session slots, {} workers)",
        config.sessions, config.workers
    );
    let report = server.run()?;
    println!(
        "tt-serve: drained clean ({} sessions closed, {} commits landed)",
        report.sessions_closed, report.commits_landed
    );
    Ok(())
}
