//! `tt-serve`: the plan-serving daemon over the JITD fleet.
//!
//! TreeToaster's pitch is optimizer maintenance cheap enough to run
//! *inside* a live session; this crate is the serving shape of that
//! claim. A long-running daemon owns a sharded [`tt_jitd::AsyncJitd`]
//! fleet; each tenant session owns one shard (its own tree, strategy,
//! and epochs) while every tenant shares one work-stealing reorganizer
//! pool and one background committer, so a tenant's writes stage and
//! seal in O(1) and the applies run off every op path.
//!
//! - [`protocol`] — the length-prefixed binary frame codec (plus the
//!   s-expression debug syntax).
//! - [`daemon`] — sessions, admission control, per-tenant backpressure,
//!   and quiescent close over the shared fleet.
//! - [`server`] — the TCP accept loop with stop-flag shutdown and a
//!   clean final drain.
//! - [`client`] — the typed client library (`examples/serve_demo.rs`
//!   drives it).
//!
//! See `docs/service.md` for the protocol and lifecycle reference.

pub mod client;
pub mod daemon;
pub mod protocol;
pub mod server;

pub use client::{Client, ServiceError};
pub use daemon::{Daemon, DrainReport};
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, SessionSnapshot, MAX_FRAME,
};
pub use server::Server;
