//! A typed client over the binary frame protocol.
//!
//! One [`Client`] is one session-capable connection; the methods mirror
//! the [`Request`] vocabulary and surface server-side failures as
//! [`ServiceError::Server`].

use crate::protocol::{read_frame, write_frame, ErrorCode, Request, Response, SessionSnapshot};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, codec, or a server-reported error.
#[derive(Debug)]
pub enum ServiceError {
    /// Socket / framing I/O failure.
    Io(io::Error),
    /// The server's bytes did not decode, or the response type did not
    /// match the request.
    Protocol(String),
    /// The server answered with an error frame.
    Server { code: ErrorCode, message: String },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "transport error: {e}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

/// A connected `tt-serve` client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServiceError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ServiceError::Protocol("server closed the connection mid-call".into())
        })?;
        let resp = Response::decode(&payload).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        if let Response::Error { code, message } = resp {
            return Err(ServiceError::Server { code, message });
        }
        Ok(resp)
    }

    /// Opens a session preloaded with `records` keys.
    pub fn open(&mut self, records: u64, seed: u64) -> Result<u32, ServiceError> {
        match self.call(&Request::Open { records, seed })? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected("opened", &other)),
        }
    }

    /// Stages a write into the session's open epoch.
    pub fn replace(&mut self, session: u32, key: i64, value: i64) -> Result<(), ServiceError> {
        match self.call(&Request::Replace {
            session,
            key,
            value,
        })? {
            Response::Replaced => Ok(()),
            other => Err(unexpected("replaced", &other)),
        }
    }

    /// Point lookup.
    pub fn find(&mut self, session: u32, key: i64) -> Result<Option<i64>, ServiceError> {
        match self.call(&Request::Find { session, key })? {
            Response::Found { value } => Ok(value),
            other => Err(unexpected("found", &other)),
        }
    }

    /// Runs up to `rounds` reorganization rounds; returns rules fired.
    pub fn tick(&mut self, session: u32, rounds: u32) -> Result<u64, ServiceError> {
        match self.call(&Request::Tick { session, rounds })? {
            Response::Ticked { rewrites } => Ok(rewrites),
            other => Err(unexpected("ticked", &other)),
        }
    }

    /// Fetches the session's maintenance counters.
    pub fn snapshot(&mut self, session: u32) -> Result<SessionSnapshot, ServiceError> {
        match self.call(&Request::Snapshot { session })? {
            Response::Snapshotted(snap) => Ok(snap),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Drains and releases the session; returns its final rewrite count.
    pub fn close(&mut self, session: u32) -> Result<u64, ServiceError> {
        match self.call(&Request::Close { session })? {
            Response::Closed { rewrites } => Ok(rewrites),
            other => Err(unexpected("closed", &other)),
        }
    }

    /// Asks the daemon to drain everything and shut down.
    pub fn stop(&mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Stop)? {
            Response::Stopping => Ok(()),
            other => Err(unexpected("stopping", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServiceError {
    ServiceError::Protocol(format!("expected {wanted}, got {got:?}"))
}
