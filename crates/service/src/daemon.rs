//! The session daemon: a multi-tenant deployment of [`AsyncJitd`].
//!
//! Every session owns one shard of a shared fleet — its own tree, its
//! own strategy instance, its own maintenance epochs — while all
//! sessions share one work-stealing reorganizer pool and one background
//! committer ([`CommitMode::Async`]): a tenant's `replace` only stages
//! a delta and occasionally *seals* an epoch (O(1)); the apply runs on
//! the committer thread, off every tenant's op path.
//!
//! Three policies sit in front of the fleet:
//!
//! - **Admission control** — the fleet is sized at construction
//!   ([`FleetConfig::sessions`]); an `open` beyond capacity is refused
//!   with [`ErrorCode::Busy`] instead of degrading every tenant.
//! - **Per-tenant backpressure** — each session's open epoch is bounded
//!   at [`Daemon::MAX_EPOCH_OPS`] staged ops; crossing the bound seals
//!   the epoch. The strategies allow one sealed epoch in flight per
//!   shard, so a tenant that outruns the committer pays its *own*
//!   backlog (the next seal applies the stale epoch inline on that
//!   tenant's thread) — it cannot queue unbounded work or stall anyone
//!   else.
//! - **Quiescence on close** — `close` lands the open epoch, drains the
//!   tree's reorganization backlog to a fixpoint, applies any sealed
//!   epoch, then recycles the slot as a fresh empty tree.

use crate::protocol::{ErrorCode, Request, Response, SessionSnapshot};
use std::sync::Mutex;
use treetoaster_core::FleetConfig;
use tt_ast::Record;
use tt_jitd::{AsyncJitd, CommitMode, Jitd, RuleConfig, StealConfig, StrategyKind, WorkerMode};
use tt_ycsb::Op;

/// Per-slot session state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Free,
    Open {
        /// Ops staged into the current epoch (backpressure counter).
        ops_in_epoch: u32,
    },
}

/// The session table: slot states plus a free list, one lock for the
/// bookkeeping only — tree operations run under the per-shard locks.
struct SessionTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

/// Counters from a full daemon drain (shutdown path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Sessions that were still open and got drained.
    pub sessions_closed: usize,
    /// Sealed epochs landed by the final commit sweep.
    pub commits_landed: u64,
}

/// The plan-serving daemon. All methods take `&self`; wrap it in an
/// [`std::sync::Arc`] and call [`Daemon::handle`] from as many
/// connection threads as you like.
pub struct Daemon {
    pool: AsyncJitd,
    sessions: Mutex<SessionTable>,
    kind: StrategyKind,
    rules: RuleConfig,
}

impl Daemon {
    /// Per-tenant backpressure bound: ops staged per epoch before the
    /// daemon seals it to the committer.
    pub const MAX_EPOCH_OPS: u32 = 64;

    /// Builds a daemon: `config.sessions` empty session shards, a
    /// stealing pool of `config.workers` threads gated at
    /// `config.heat_threshold`, and the asynchronous commit pipeline.
    pub fn new(kind: StrategyKind, config: FleetConfig) -> Daemon {
        let sessions = config.sessions.max(1);
        let rules = RuleConfig {
            crack_threshold: config.engine.crack_threshold,
        };
        let pool = AsyncJitd::spawn_parts_with(
            kind,
            rules,
            vec![Vec::new(); sessions],
            WorkerMode::Stealing(StealConfig {
                workers: config.workers.max(1),
                heat_threshold: config.heat_threshold,
            }),
            CommitMode::Async,
        );
        Daemon {
            pool,
            sessions: Mutex::new(SessionTable {
                slots: vec![Slot::Free; sessions],
                free: (0..sessions as u32).rev().collect(),
            }),
            kind,
            rules,
        }
    }

    /// Session capacity (the admission bound).
    pub fn capacity(&self) -> usize {
        self.sessions.lock().unwrap().slots.len()
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        let table = self.sessions.lock().unwrap();
        table.slots.len() - table.free.len()
    }

    /// Serves one request. Safe to call concurrently from any number of
    /// threads; requests for different sessions only meet at the brief
    /// session-table lock.
    pub fn handle(&self, req: &Request) -> Response {
        match *req {
            Request::Open { records, seed } => self.open(records, seed),
            Request::Replace {
                session,
                key,
                value,
            } => self.replace(session, key, value),
            Request::Find { session, key } => self.find(session, key),
            Request::Tick { session, rounds } => self.tick(session, rounds),
            Request::Snapshot { session } => self.snapshot(session),
            Request::Close { session } => self.close(session),
            Request::Stop => Response::Stopping,
        }
    }

    /// Validates that `session` is an open slot; runs `f` if so.
    fn with_open(&self, session: u32, f: impl FnOnce() -> Response) -> Response {
        let ok = {
            let table = self.sessions.lock().unwrap();
            matches!(table.slots.get(session as usize), Some(Slot::Open { .. }))
        };
        if ok {
            f()
        } else {
            Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("session {session} is not open"),
            }
        }
    }

    fn open(&self, records: u64, seed: u64) -> Response {
        // Reserve the slot under the table lock; preload outside it so
        // a large open never blocks other tenants' bookkeeping.
        let slot = {
            let mut table = self.sessions.lock().unwrap();
            match table.free.pop() {
                Some(slot) => {
                    table.slots[slot as usize] = Slot::Open { ops_in_epoch: 0 };
                    slot
                }
                None => {
                    return Response::Error {
                        code: ErrorCode::Busy,
                        message: format!("all {} session slots are open", table.slots.len()),
                    }
                }
            }
        };
        let shard = slot as usize;
        // Preload by *loading*, not by singleton grafts: `load` builds
        // one big Array the crack rule can bite on, exactly like the
        // bench drivers; grafting N singletons onto an empty tree
        // produces a shape the paper's five rules never match.
        let preload: Vec<Record> = (0..records as i64)
            .map(|k| Record::new(k, k.wrapping_mul(7) ^ seed as i64))
            .collect();
        let (kind, rules) = (self.kind, self.rules);
        self.pool.with_shard(shard, |j| {
            debug_assert_eq!(
                j.index().scan(i64::MIN, 1).len(),
                0,
                "recycled slot not empty"
            );
            *j = Jitd::new(kind, rules, preload);
        });
        // Stage all later writes in epochs: open the first one now.
        self.pool.begin_batch_on(shard);
        Response::Opened { session: slot }
    }

    fn replace(&self, session: u32, key: i64, value: i64) -> Response {
        // Bump the backpressure counter under the table lock and decide
        // whether this op closes the epoch; the tree work runs after,
        // under the shard lock only.
        let seal = {
            let mut table = self.sessions.lock().unwrap();
            match table.slots.get_mut(session as usize) {
                Some(Slot::Open { ops_in_epoch }) => {
                    *ops_in_epoch += 1;
                    let seal = *ops_in_epoch >= Self::MAX_EPOCH_OPS;
                    if seal {
                        *ops_in_epoch = 0;
                    }
                    seal
                }
                _ => {
                    return Response::Error {
                        code: ErrorCode::UnknownSession,
                        message: format!("session {session} is not open"),
                    }
                }
            }
        };
        let shard = session as usize;
        self.pool.execute_on(shard, &Op::Update { key, value });
        if seal {
            // Seal to the committer (O(1) under async commit) and open
            // the next epoch. If the previous seal has not landed yet,
            // the strategy's one-in-flight rule applies it here — on
            // this tenant's thread, which is the backpressure.
            self.pool.submit_commit_on(shard);
            self.pool.begin_batch_on(shard);
        }
        Response::Replaced
    }

    fn find(&self, session: u32, key: i64) -> Response {
        self.with_open(session, || {
            let value = self
                .pool
                .with_shard(session as usize, |j| j.index().get(key));
            Response::Found { value }
        })
    }

    fn tick(&self, session: u32, rounds: u32) -> Response {
        self.with_open(session, || {
            let rewrites = self.pool.with_shard(session as usize, |j| {
                let mut fired = 0u64;
                for _ in 0..rounds {
                    let n = j.reorganize_round() as u64;
                    if n == 0 {
                        break;
                    }
                    fired += n;
                }
                fired
            });
            Response::Ticked { rewrites }
        })
    }

    fn snapshot(&self, session: u32) -> Response {
        self.with_open(session, || {
            let snap = self.pool.with_shard(session as usize, |j| {
                let (staged, canceled) = j.batch_cancellation().unwrap_or((0, 0));
                SessionSnapshot {
                    rewrites: j.stats.steps,
                    memory_bytes: j.strategy_memory_bytes() as u64,
                    staged,
                    canceled,
                    pending_matches: j.has_pending_matches(),
                }
            });
            Response::Snapshotted(snap)
        })
    }

    fn close(&self, session: u32) -> Response {
        // Free the slot only after the drain, so a racing open cannot
        // be handed a tree that is still being recycled.
        let claimed = {
            let mut table = self.sessions.lock().unwrap();
            match table.slots.get_mut(session as usize) {
                Some(state @ Slot::Open { .. }) => {
                    // Mark closed-in-progress by keeping it out of the
                    // free list but no longer Open (later requests see
                    // UnknownSession immediately).
                    *state = Slot::Free;
                    true
                }
                _ => false,
            }
        };
        if !claimed {
            return Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("session {session} is not open"),
            };
        }
        let rewrites = self.drain_shard(session as usize);
        self.sessions.lock().unwrap().free.push(session);
        Response::Closed { rewrites }
    }

    /// Quiesces one shard and recycles it as a fresh empty tree.
    /// Returns the rewrites the session absorbed over its lifetime.
    fn drain_shard(&self, shard: usize) -> u64 {
        let (kind, rules) = (self.kind, self.rules);
        self.pool.with_shard(shard, |j| {
            // Land the open epoch (this also applies any sealed one:
            // epochs land in submission order), drain the rewrite
            // backlog to a fixpoint, then sweep once more in case the
            // committer sealed behind our back.
            j.commit_batch();
            j.reorganize_until_quiet(u64::MAX);
            j.apply_submitted();
            let rewrites = j.stats.steps;
            *j = Jitd::new(kind, rules, Vec::new());
            rewrites
        })
    }

    /// Drains every open session and lands every in-flight commit; the
    /// shutdown path behind SIGTERM / [`Request::Stop`].
    pub fn drain(&self) -> DrainReport {
        let open: Vec<u32> = {
            let table = self.sessions.lock().unwrap();
            (0..table.slots.len() as u32)
                .filter(|&s| matches!(table.slots[s as usize], Slot::Open { .. }))
                .collect()
        };
        let mut report = DrainReport::default();
        for session in open {
            if let Response::Closed { .. } = self.close(session) {
                report.sessions_closed += 1;
            }
        }
        report.commits_landed = self.pool.drain_commits();
        report
    }

    /// Direct fleet access for benches and tests (e.g. quiescence
    /// probes); sessions map 1:1 onto shards.
    pub fn pool(&self) -> &AsyncJitd {
        &self.pool
    }
}
