//! The `tt-serve` wire protocol: length-prefixed binary frames with an
//! s-expression debug mode.
//!
//! Every frame on the wire is `[u32 LE length][payload]`, where the
//! payload is `[u8 tag][little-endian fields]` and `length` counts only
//! the payload bytes. Frames are capped at [`MAX_FRAME`] payload bytes;
//! a peer announcing a longer frame is cut off before any allocation.
//! Decoding is strict: short payloads are [`FrameError::Truncated`],
//! unknown tags are [`FrameError::BadTag`], and any bytes left over
//! after the typed fields are [`FrameError::TrailingBytes`] — a frame
//! either parses exactly or is rejected.
//!
//! The debug mode carries the same requests as newline-delimited
//! s-expressions (`(open records=64 seed=7)`); the server sniffs the
//! first byte of a connection — `(` switches that connection to text
//! mode. See [`Request::parse_sexpr`] / [`Response::to_sexpr`].

use std::io::{self, Read, Write};

/// Maximum frame payload size in bytes. The protocol's ops are all a
/// few dozen bytes; the cap exists so a corrupt or hostile length
/// prefix cannot make the server allocate gigabytes.
pub const MAX_FRAME: usize = 64 * 1024;

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The payload ended before the typed fields did.
    Truncated,
    /// The announced frame length exceeds [`MAX_FRAME`].
    Oversized,
    /// The leading tag byte names no known message.
    BadTag(u8),
    /// Bytes remained after the last typed field.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated mid-field"),
            FrameError::Oversized => write!(f, "frame exceeds {MAX_FRAME}-byte cap"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after frame fields"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Server-reported failure classes (the `code` byte of an error frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the open: every session slot is taken.
    Busy,
    /// The request named a session that is not open.
    UnknownSession,
    /// The request frame did not decode.
    Malformed,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::UnknownSession => 2,
            ErrorCode::Malformed => 3,
        }
    }

    fn from_byte(b: u8) -> Result<ErrorCode, FrameError> {
        match b {
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::UnknownSession),
            3 => Ok(ErrorCode::Malformed),
            other => Err(FrameError::BadTag(other)),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::Malformed => "malformed",
        }
    }
}

/// A client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Open a session preloaded with `records` keys generated from
    /// `seed`. Answered by [`Response::Opened`] or a `Busy` error.
    Open { records: u64, seed: u64 },
    /// Stage a write into the session's open maintenance epoch.
    Replace { session: u32, key: i64, value: i64 },
    /// Point lookup in the session's tree.
    Find { session: u32, key: i64 },
    /// Run up to `rounds` reorganization rounds on the session's tree.
    Tick { session: u32, rounds: u32 },
    /// Report the session's maintenance counters.
    Snapshot { session: u32 },
    /// Drain and release the session (quiesce, land every epoch, free
    /// the slot).
    Close { session: u32 },
    /// Ask the daemon to drain every session and shut down.
    Stop,
}

const TAG_OPEN: u8 = 0x01;
const TAG_REPLACE: u8 = 0x02;
const TAG_FIND: u8 = 0x03;
const TAG_TICK: u8 = 0x04;
const TAG_SNAPSHOT: u8 = 0x05;
const TAG_CLOSE: u8 = 0x06;
const TAG_STOP: u8 = 0x07;

const TAG_OPENED: u8 = 0x81;
const TAG_REPLACED: u8 = 0x82;
const TAG_FOUND: u8 = 0x83;
const TAG_TICKED: u8 = 0x84;
const TAG_SNAPSHOTTED: u8 = 0x85;
const TAG_CLOSED: u8 = 0x86;
const TAG_STOPPING: u8 = 0x87;
const TAG_ERROR: u8 = 0xFF;

/// One session's maintenance counters, as reported by
/// [`Request::Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionSnapshot {
    /// Rewrites the session's tree has absorbed so far.
    pub rewrites: u64,
    /// Strategy structure memory, bytes.
    pub memory_bytes: u64,
    /// View deltas staged in the session's open epoch.
    pub staged: u64,
    /// Deltas that canceled in-buffer before touching a view.
    pub canceled: u64,
    /// Whether reorganization work is still pending on the tree.
    pub pending_matches: bool,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session granted; `session` routes every later request.
    Opened { session: u32 },
    /// Write staged.
    Replaced,
    /// Lookup result (`None` = key absent or tombstoned).
    Found { value: Option<i64> },
    /// Reorganization ran; `rewrites` rules fired.
    Ticked { rewrites: u64 },
    /// Counters for one session.
    Snapshotted(SessionSnapshot),
    /// Session drained and released; `rewrites` is the session's final
    /// rewrite count.
    Closed { rewrites: u64 },
    /// The daemon is shutting down.
    Stopping,
    /// The request failed.
    Error { code: ErrorCode, message: String },
}

/// Little-endian field reader with strict end-of-frame accounting.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.bytes.len() < n {
            return Err(FrameError::Truncated);
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

impl Request {
    /// Serializes the request payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match *self {
            Request::Open { records, seed } => {
                out.push(TAG_OPEN);
                out.extend_from_slice(&records.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            Request::Replace {
                session,
                key,
                value,
            } => {
                out.push(TAG_REPLACE);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            Request::Find { session, key } => {
                out.push(TAG_FIND);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::Tick { session, rounds } => {
                out.push(TAG_TICK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&rounds.to_le_bytes());
            }
            Request::Snapshot { session } => {
                out.push(TAG_SNAPSHOT);
                out.extend_from_slice(&session.to_le_bytes());
            }
            Request::Close { session } => {
                out.push(TAG_CLOSE);
                out.extend_from_slice(&session.to_le_bytes());
            }
            Request::Stop => out.push(TAG_STOP),
        }
        out
    }

    /// Decodes a request payload (strict: exact length required).
    pub fn decode(payload: &[u8]) -> Result<Request, FrameError> {
        if payload.len() > MAX_FRAME {
            return Err(FrameError::Oversized);
        }
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            TAG_OPEN => Request::Open {
                records: c.u64()?,
                seed: c.u64()?,
            },
            TAG_REPLACE => Request::Replace {
                session: c.u32()?,
                key: c.i64()?,
                value: c.i64()?,
            },
            TAG_FIND => Request::Find {
                session: c.u32()?,
                key: c.i64()?,
            },
            TAG_TICK => Request::Tick {
                session: c.u32()?,
                rounds: c.u32()?,
            },
            TAG_SNAPSHOT => Request::Snapshot { session: c.u32()? },
            TAG_CLOSE => Request::Close { session: c.u32()? },
            TAG_STOP => Request::Stop,
            other => return Err(FrameError::BadTag(other)),
        };
        c.finish()?;
        Ok(req)
    }

    /// Renders the request in the s-expression debug syntax.
    pub fn to_sexpr(&self) -> String {
        match *self {
            Request::Open { records, seed } => {
                format!("(open records={records} seed={seed})")
            }
            Request::Replace {
                session,
                key,
                value,
            } => format!("(replace session={session} key={key} value={value})"),
            Request::Find { session, key } => format!("(find session={session} key={key})"),
            Request::Tick { session, rounds } => {
                format!("(tick session={session} rounds={rounds})")
            }
            Request::Snapshot { session } => format!("(snapshot session={session})"),
            Request::Close { session } => format!("(close session={session})"),
            Request::Stop => "(stop)".to_string(),
        }
    }

    /// Parses the s-expression debug syntax: `(verb key=value …)`.
    /// Fields may appear in any order; unknown verbs, unknown fields,
    /// missing fields, and malformed integers are all rejected.
    pub fn parse_sexpr(text: &str) -> Result<Request, String> {
        let inner = text
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| "expected (verb field=value ...)".to_string())?;
        let mut words = inner.split_whitespace();
        let verb = words
            .next()
            .ok_or_else(|| "empty s-expression".to_string())?;
        let mut fields: Vec<(&str, &str)> = Vec::new();
        for word in words {
            let (k, v) = word
                .split_once('=')
                .ok_or_else(|| format!("field `{word}` is not key=value"))?;
            fields.push((k, v));
        }
        let get = |name: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("({verb} …) needs `{name}=`"))
        };
        let int = |name: &str| -> Result<i64, String> {
            get(name)?
                .parse()
                .map_err(|_| format!("`{name}` is not an integer"))
        };
        let uint = |name: &str| -> Result<u64, String> {
            get(name)?
                .parse()
                .map_err(|_| format!("`{name}` is not an unsigned integer"))
        };
        let known: &[&str] = match verb {
            "open" => &["records", "seed"],
            "replace" => &["session", "key", "value"],
            "find" => &["session", "key"],
            "tick" => &["session", "rounds"],
            "snapshot" | "close" => &["session"],
            "stop" => &[],
            other => return Err(format!("unknown verb `{other}`")),
        };
        if let Some((k, _)) = fields.iter().find(|(k, _)| !known.contains(k)) {
            return Err(format!("({verb} …) does not take `{k}=`"));
        }
        Ok(match verb {
            "open" => Request::Open {
                records: uint("records")?,
                seed: uint("seed")?,
            },
            "replace" => Request::Replace {
                session: uint("session")? as u32,
                key: int("key")?,
                value: int("value")?,
            },
            "find" => Request::Find {
                session: uint("session")? as u32,
                key: int("key")?,
            },
            "tick" => Request::Tick {
                session: uint("session")? as u32,
                rounds: uint("rounds")? as u32,
            },
            "snapshot" => Request::Snapshot {
                session: uint("session")? as u32,
            },
            "close" => Request::Close {
                session: uint("session")? as u32,
            },
            "stop" => Request::Stop,
            _ => unreachable!("verb validated above"),
        })
    }
}

impl Response {
    /// Serializes the response payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            Response::Opened { session } => {
                out.push(TAG_OPENED);
                out.extend_from_slice(&session.to_le_bytes());
            }
            Response::Replaced => out.push(TAG_REPLACED),
            Response::Found { value } => {
                out.push(TAG_FOUND);
                out.push(u8::from(value.is_some()));
                out.extend_from_slice(&value.unwrap_or(0).to_le_bytes());
            }
            Response::Ticked { rewrites } => {
                out.push(TAG_TICKED);
                out.extend_from_slice(&rewrites.to_le_bytes());
            }
            Response::Snapshotted(s) => {
                out.push(TAG_SNAPSHOTTED);
                out.extend_from_slice(&s.rewrites.to_le_bytes());
                out.extend_from_slice(&s.memory_bytes.to_le_bytes());
                out.extend_from_slice(&s.staged.to_le_bytes());
                out.extend_from_slice(&s.canceled.to_le_bytes());
                out.push(u8::from(s.pending_matches));
            }
            Response::Closed { rewrites } => {
                out.push(TAG_CLOSED);
                out.extend_from_slice(&rewrites.to_le_bytes());
            }
            Response::Stopping => out.push(TAG_STOPPING),
            Response::Error { code, message } => {
                out.push(TAG_ERROR);
                out.push(code.to_byte());
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&msg[..len]);
            }
        }
        out
    }

    /// Decodes a response payload (strict: exact length required).
    pub fn decode(payload: &[u8]) -> Result<Response, FrameError> {
        if payload.len() > MAX_FRAME {
            return Err(FrameError::Oversized);
        }
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            TAG_OPENED => Response::Opened { session: c.u32()? },
            TAG_REPLACED => Response::Replaced,
            TAG_FOUND => {
                let present = c.u8()? != 0;
                let value = c.i64()?;
                Response::Found {
                    value: present.then_some(value),
                }
            }
            TAG_TICKED => Response::Ticked { rewrites: c.u64()? },
            TAG_SNAPSHOTTED => Response::Snapshotted(SessionSnapshot {
                rewrites: c.u64()?,
                memory_bytes: c.u64()?,
                staged: c.u64()?,
                canceled: c.u64()?,
                pending_matches: c.u8()? != 0,
            }),
            TAG_CLOSED => Response::Closed { rewrites: c.u64()? },
            TAG_STOPPING => Response::Stopping,
            TAG_ERROR => {
                let code = ErrorCode::from_byte(c.u8()?)?;
                let len = u16::from_le_bytes(c.take(2)?.try_into().unwrap()) as usize;
                let message = String::from_utf8_lossy(c.take(len)?).into_owned();
                Response::Error { code, message }
            }
            other => return Err(FrameError::BadTag(other)),
        };
        c.finish()?;
        Ok(resp)
    }

    /// Renders the response in the s-expression debug syntax.
    pub fn to_sexpr(&self) -> String {
        match self {
            Response::Opened { session } => format!("(opened session={session})"),
            Response::Replaced => "(replaced)".to_string(),
            Response::Found { value: Some(v) } => format!("(found value={v})"),
            Response::Found { value: None } => "(found)".to_string(),
            Response::Ticked { rewrites } => format!("(ticked rewrites={rewrites})"),
            Response::Snapshotted(s) => format!(
                "(snapshot rewrites={} memory-bytes={} staged={} canceled={} pending={})",
                s.rewrites, s.memory_bytes, s.staged, s.canceled, s.pending_matches
            ),
            Response::Closed { rewrites } => format!("(closed rewrites={rewrites})"),
            Response::Stopping => "(stopping)".to_string(),
            Response::Error { code, message } => {
                format!("(error code={} message=\"{message}\")", code.name())
            }
        }
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized.to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean end of
/// stream (EOF on the length-prefix boundary); EOF mid-frame and an
/// oversized announcement are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    FrameError::Truncated.to_string(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized.to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}
