//! Wire-codec contract: every frame round-trips exactly; every
//! truncated, oversized, mistagged, or padded frame is rejected.

use proptest::prelude::*;
use tt_service::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, SessionSnapshot, MAX_FRAME,
};

/// All request shapes from one draw of raw field values.
fn requests(session: u32, key: i64, value: i64, a: u64, b: u64, rounds: u32) -> Vec<Request> {
    vec![
        Request::Open {
            records: a,
            seed: b,
        },
        Request::Replace {
            session,
            key,
            value,
        },
        Request::Find { session, key },
        Request::Tick { session, rounds },
        Request::Snapshot { session },
        Request::Close { session },
        Request::Stop,
    ]
}

/// All response shapes from one draw of raw field values.
fn responses(session: u32, value: i64, n: u64, m: u64, flag: bool, msg_seed: u64) -> Vec<Response> {
    let message: String = (0..(msg_seed % 64))
        .map(|i| char::from(b'a' + ((msg_seed.wrapping_add(i)) % 26) as u8))
        .collect();
    vec![
        Response::Opened { session },
        Response::Replaced,
        Response::Found { value: Some(value) },
        Response::Found { value: None },
        Response::Ticked { rewrites: n },
        Response::Snapshotted(SessionSnapshot {
            rewrites: n,
            memory_bytes: m,
            staged: n ^ m,
            canceled: n.wrapping_add(m),
            pending_matches: flag,
        }),
        Response::Closed { rewrites: m },
        Response::Stopping,
        Response::Error {
            code: ErrorCode::Busy,
            message: message.clone(),
        },
        Response::Error {
            code: ErrorCode::UnknownSession,
            message,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn requests_roundtrip(
        session in any::<u32>(),
        key in any::<i64>(),
        value in any::<i64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        rounds in any::<u32>(),
    ) {
        for req in requests(session, key, value, a, b, rounds) {
            let bytes = req.encode();
            prop_assert_eq!(Request::decode(&bytes), Ok(req));
        }
    }

    #[test]
    fn responses_roundtrip(
        session in any::<u32>(),
        value in any::<i64>(),
        n in any::<u64>(),
        m in any::<u64>(),
        flag in any::<bool>(),
        msg_seed in any::<u64>(),
    ) {
        for resp in responses(session, value, n, m, flag, msg_seed) {
            let bytes = resp.encode();
            prop_assert_eq!(Response::decode(&bytes), Ok(resp));
        }
    }

    #[test]
    fn sexpr_debug_mode_roundtrips(
        session in any::<u32>(),
        key in any::<i64>(),
        value in any::<i64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        rounds in any::<u32>(),
    ) {
        for req in requests(session, key, value, a, b, rounds) {
            let text = req.to_sexpr();
            prop_assert_eq!(Request::parse_sexpr(&text), Ok(req));
        }
    }

    #[test]
    fn truncated_frames_rejected(
        session in any::<u32>(),
        key in any::<i64>(),
        value in any::<i64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        rounds in any::<u32>(),
    ) {
        // Every strict prefix of a valid frame must fail — as Truncated
        // once the tag is known, or (empty) as Truncated on the tag read.
        for req in requests(session, key, value, a, b, rounds) {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                prop_assert_eq!(
                    Request::decode(&bytes[..cut]),
                    Err(FrameError::Truncated),
                    "prefix of {:?} must not parse", req
                );
            }
        }
    }

    #[test]
    fn padded_frames_rejected(
        session in any::<u32>(),
        key in any::<i64>(),
        value in any::<i64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        rounds in any::<u32>(),
        pad in any::<u8>(),
    ) {
        for req in requests(session, key, value, a, b, rounds) {
            let mut bytes = req.encode();
            bytes.push(pad);
            prop_assert_eq!(Request::decode(&bytes), Err(FrameError::TrailingBytes));
        }
    }
}

#[test]
fn bad_tags_rejected() {
    // 0x00 and anything past the response range is no request…
    for tag in [0x00u8, 0x08, 0x40, 0x80, 0xFE] {
        assert_eq!(Request::decode(&[tag]), Err(FrameError::BadTag(tag)));
    }
    // …and request tags are not responses.
    for tag in [0x00u8, 0x01, 0x07, 0x88] {
        assert_eq!(Response::decode(&[tag]), Err(FrameError::BadTag(tag)));
    }
}

#[test]
fn oversized_payloads_rejected_by_codec_and_framing() {
    let huge = vec![0u8; MAX_FRAME + 1];
    assert_eq!(Request::decode(&huge), Err(FrameError::Oversized));
    assert_eq!(Response::decode(&huge), Err(FrameError::Oversized));

    let mut sink = Vec::new();
    assert!(write_frame(&mut sink, &huge).is_err());

    // A hostile length prefix is refused before any allocation.
    let mut wire = Vec::new();
    wire.extend_from_slice(&(u32::MAX).to_le_bytes());
    wire.extend_from_slice(&[0u8; 16]);
    let err = read_frame(&mut wire.as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn frame_layer_roundtrips_and_detects_mid_frame_eof() {
    let req = Request::Replace {
        session: 3,
        key: -9,
        value: 81,
    };
    let mut wire = Vec::new();
    write_frame(&mut wire, &req.encode()).unwrap();
    let mut reader = wire.as_slice();
    let payload = read_frame(&mut reader).unwrap().expect("one frame");
    assert_eq!(Request::decode(&payload), Ok(req));
    assert_eq!(read_frame(&mut reader).unwrap(), None, "clean EOF");

    // EOF inside the length prefix or payload is an error, not None.
    for cut in 1..wire.len() {
        assert!(
            read_frame(&mut &wire[..cut]).is_err(),
            "cut at {cut} must not read cleanly"
        );
    }
}

#[test]
fn sexpr_rejects_malformed_text() {
    for bad in [
        "open records=1 seed=2",           // missing parens
        "(fly session=1)",                 // unknown verb
        "(open records=1)",                // missing field
        "(open records=1 seed=x)",         // non-integer
        "(open records=1 seed=2 extra=3)", // unknown field
        "(find session=1 key)",            // not key=value
        "()",                              // empty
    ] {
        assert!(
            Request::parse_sexpr(bad).is_err(),
            "`{bad}` must be rejected"
        );
    }
}
