//! Daemon and server smoke tests.
//!
//! The headline test is structural independence: N sessions driven by N
//! concurrent threads with identical op sequences must end in identical
//! states — each session is one shard with its own tree, strategy, and
//! epochs, so tenants cannot observe each other. The daemon runs its
//! pool *cold* here (`heat_threshold = u64::MAX` parks the stealing
//! workers), so reorganization fires only at the deterministic `tick`
//! points every thread issues identically; crack pivots depend on tick
//! counts, which makes a hot pool's extra rounds nondeterministic.

use std::sync::Arc;
use treetoaster_core::{EngineConfig, FleetConfig};
use tt_jitd::StrategyKind;
use tt_service::protocol::{ErrorCode, Request, Response, SessionSnapshot};
use tt_service::{Client, Daemon, Server, ServiceError};

/// A cold-pool daemon config: deterministic reorganization.
fn cold_fleet(sessions: usize) -> FleetConfig {
    FleetConfig::default()
        .engine(EngineConfig::default().crack_threshold(16))
        .sessions(sessions)
        .workers(1)
        .heat_threshold(u64::MAX)
}

/// Drives one session through a fixed op script and returns its final
/// observable state: every key's value plus the session's counters.
fn drive_session(daemon: &Daemon, session: u32) -> (Vec<Option<i64>>, SessionSnapshot) {
    for j in 0..40i64 {
        let r = daemon.handle(&Request::Replace {
            session,
            key: j % 48,
            value: j * 11,
        });
        assert_eq!(r, Response::Replaced);
        if j % 8 == 7 {
            let r = daemon.handle(&Request::Tick { session, rounds: 3 });
            assert!(matches!(r, Response::Ticked { .. }));
        }
    }
    let values: Vec<Option<i64>> = (0..48i64)
        .map(|key| match daemon.handle(&Request::Find { session, key }) {
            Response::Found { value } => value,
            other => panic!("find answered {other:?}"),
        })
        .collect();
    match daemon.handle(&Request::Snapshot { session }) {
        Response::Snapshotted(snap) => (values, snap),
        other => panic!("snapshot answered {other:?}"),
    }
}

#[test]
fn n_concurrent_sessions_equal_n_independent_engines() {
    const N: usize = 8;
    let daemon = Arc::new(Daemon::new(StrategyKind::TreeToaster, cold_fleet(N)));

    // Open N sessions with identical preloads…
    let sessions: Vec<u32> = (0..N)
        .map(|_| {
            match daemon.handle(&Request::Open {
                records: 48,
                seed: 7,
            }) {
                Response::Opened { session } => session,
                other => panic!("open answered {other:?}"),
            }
        })
        .collect();

    // …drive them from N threads at once with the same script…
    let results: Vec<(Vec<Option<i64>>, SessionSnapshot)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|&s| {
                let daemon = daemon.clone();
                scope.spawn(move || drive_session(&daemon, s))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // …and every session must be structurally identical to the others:
    // same lookups, same rewrite count, same staged/canceled counters,
    // same strategy memory. Concurrency must not leak between shards.
    let (values0, snap0) = &results[0];
    assert!(values0.iter().all(Option::is_some), "preloaded keys found");
    assert!(snap0.rewrites > 0, "ticks must have reorganized");
    for (i, (values, snap)) in results.iter().enumerate() {
        assert_eq!(values, values0, "session {i} lookups diverged");
        assert_eq!(snap, snap0, "session {i} counters diverged");
    }

    // A serially driven fresh daemon agrees too: concurrency changed
    // nothing against the single-tenant baseline.
    let solo = Daemon::new(StrategyKind::TreeToaster, cold_fleet(1));
    let s = match solo.handle(&Request::Open {
        records: 48,
        seed: 7,
    }) {
        Response::Opened { session } => session,
        other => panic!("open answered {other:?}"),
    };
    let (solo_values, solo_snap) = drive_session(&solo, s);
    assert_eq!(&solo_values, values0);
    assert_eq!(&solo_snap, snap0);
}

#[test]
fn admission_control_refuses_then_recycles() {
    let daemon = Daemon::new(StrategyKind::TreeToaster, cold_fleet(2));
    let a = daemon.handle(&Request::Open {
        records: 8,
        seed: 1,
    });
    let b = daemon.handle(&Request::Open {
        records: 8,
        seed: 1,
    });
    let (a, b) = match (a, b) {
        (Response::Opened { session: a }, Response::Opened { session: b }) => (a, b),
        other => panic!("opens answered {other:?}"),
    };
    assert_eq!(daemon.open_sessions(), 2);

    // Full: the third tenant is refused, not degraded.
    match daemon.handle(&Request::Open {
        records: 8,
        seed: 1,
    }) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("over-admission answered {other:?}"),
    }

    // Close drains and recycles: the slot serves a fresh empty tree.
    assert!(matches!(
        daemon.handle(&Request::Close { session: a }),
        Response::Closed { .. }
    ));
    let c = match daemon.handle(&Request::Open {
        records: 4,
        seed: 2,
    }) {
        Response::Opened { session } => session,
        other => panic!("reopen answered {other:?}"),
    };
    assert_eq!(c, a, "freed slot is reused");
    match daemon.handle(&Request::Find { session: c, key: 7 }) {
        Response::Found { value } => assert_eq!(value, None, "recycled tree is fresh"),
        other => panic!("find answered {other:?}"),
    }

    // Requests against closed or never-opened sessions are rejected.
    assert!(matches!(
        daemon.handle(&Request::Find {
            session: 99,
            key: 0
        }),
        Response::Error {
            code: ErrorCode::UnknownSession,
            ..
        }
    ));
    let _ = b;
}

#[test]
fn backpressure_seals_epochs_and_close_lands_everything() {
    // Hot path: enough writes to cross the per-epoch bound several
    // times, so seals reach the background committer while the op
    // stream keeps running.
    let daemon = Daemon::new(StrategyKind::TreeToaster, cold_fleet(1));
    let s = match daemon.handle(&Request::Open {
        records: 32,
        seed: 3,
    }) {
        Response::Opened { session } => session,
        other => panic!("open answered {other:?}"),
    };
    let writes = Daemon::MAX_EPOCH_OPS * 3 + 5;
    for j in 0..writes as i64 {
        assert_eq!(
            daemon.handle(&Request::Replace {
                session: s,
                key: j % 32,
                value: j,
            }),
            Response::Replaced
        );
    }
    // The last value written to key 0 wins (largest j ≡ 0 mod 32),
    // wherever the epoch seals fell.
    let expected = (writes as i64 - 1) / 32 * 32;
    match daemon.handle(&Request::Find { session: s, key: 0 }) {
        Response::Found { value } => assert_eq!(value, Some(expected)),
        other => panic!("find answered {other:?}"),
    }
    match daemon.handle(&Request::Close { session: s }) {
        Response::Closed { .. } => {}
        other => panic!("close answered {other:?}"),
    }
    assert!(
        !daemon.pool().commits_pending(),
        "close must land every sealed epoch"
    );
    assert_eq!(daemon.open_sessions(), 0);
}

#[test]
fn tcp_server_serves_concurrent_clients_and_drains_on_stop() {
    let daemon = Arc::new(Daemon::new(StrategyKind::TreeToaster, cold_fleet(8)));
    let server = Server::bind("127.0.0.1:0", daemon).unwrap();
    let addr = server.local_addr().unwrap();
    let running = std::thread::spawn(move || server.run().unwrap());

    // Four clients work their own sessions concurrently.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // 48 > crack_threshold, so ticks produce real rewrites
                // and the strategy holds supplemental view memory.
                let s = client.open(48, i as u64).unwrap();
                for j in 0..20i64 {
                    client.replace(s, j % 16, j * 3).unwrap();
                }
                client.tick(s, 4).unwrap();
                // Key 3 was last written at j = 19 with value j * 3.
                assert_eq!(client.find(s, 3).unwrap(), Some(57));
                let snap = client.snapshot(s).unwrap();
                assert!(snap.memory_bytes > 0);
                s
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // One left-open session plus a stop: the drain closes it cleanly.
    let mut closer = Client::connect(addr).unwrap();
    let extra = closer.open(4, 9).unwrap();
    assert!(closer.find(extra, 1).unwrap().is_some());
    closer.stop().unwrap();
    let report = running.join().unwrap();
    assert!(
        report.sessions_closed >= 1,
        "drain must close the sessions left open"
    );
}

#[test]
fn sexpr_debug_mode_over_tcp() {
    use std::io::{BufRead, BufReader, Write};
    let daemon = Arc::new(Daemon::new(StrategyKind::TreeToaster, cold_fleet(2)));
    let server = Server::bind("127.0.0.1:0", daemon).unwrap();
    let addr = server.local_addr().unwrap();
    let running = std::thread::spawn(move || server.run().unwrap());

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    writeln!(writer, "(open records=4 seed=1)").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "(opened session=0)");

    line.clear();
    writeln!(writer, "(replace session=0 key=2 value=5)").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "(replaced)");

    line.clear();
    writeln!(writer, "(find session=0 key=2)").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "(found value=5)");

    line.clear();
    writeln!(writer, "(oops)").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("error"),
        "bad verb must answer an error: {line}"
    );

    line.clear();
    writeln!(writer, "(stop)").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "(stopping)");
    running.join().unwrap();
}

#[test]
fn client_surfaces_server_errors() {
    let daemon = Arc::new(Daemon::new(StrategyKind::TreeToaster, cold_fleet(1)));
    let server = Server::bind("127.0.0.1:0", daemon).unwrap();
    let addr = server.local_addr().unwrap();
    let running = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    match client.find(42, 1) {
        Err(ServiceError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected a server error, got {other:?}"),
    }
    client.stop().unwrap();
    running.join().unwrap();
}
