//! A single relation `R_ℓ(id, x₁…x_k, child₁…child_c)`.

use tt_ast::{Label, NodeId, NodeMap};

/// One row: the relational image of one AST node (re-exported from
/// `tt-ast`, where it doubles as the removed-node snapshot type).
pub use tt_ast::NodeRow;

/// A relation: rows keyed by node id, with a reverse index per child
/// column mapping `child id → parent row id`. Because every AST node has
/// exactly one parent, each reverse-index key maps to at most one row —
/// the "implicit foreign key" the paper notes in §3.2.
///
/// Rows and reverse indexes sit on the dense storage layer
/// (`tt_ast::dense::NodeMap`): every per-event maintenance touch — the
/// bolt-on engines replay one insert and one index store per changed
/// node — is a direct page-indexed store, not a hash probe. This was the
/// last hashed hot-path structure; the shadow copy now pays the same
/// per-touch cost as the views and epoch buffers it feeds.
#[derive(Debug)]
pub struct Table {
    label: Label,
    rows: NodeMap<NodeRow>,
    /// `child_index[k][child_id] = parent_row_id`.
    child_index: Vec<NodeMap<NodeId>>,
    /// Running sum of the stored rows' payload heap bytes, maintained on
    /// insert/remove (rows are immutable while stored). Keeps
    /// [`Table::memory_bytes`] O(allocated pages) instead of walking
    /// every row — the memory axis is sampled on the epoch hot path.
    payload_bytes: usize,
}

impl Table {
    /// An empty relation for `label` with `max_children` child columns.
    pub fn new(label: Label, max_children: usize) -> Table {
        Table {
            label,
            rows: NodeMap::new(),
            child_index: (0..max_children).map(|_| NodeMap::new()).collect(),
            payload_bytes: 0,
        }
    }

    /// The relation's label.
    pub fn label(&self) -> Label {
        self.label
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Point lookup by node id.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&NodeRow> {
        self.rows.get(id)
    }

    /// Reverse lookup: the row whose `child_k` column equals `child`.
    #[inline]
    pub fn parent_of(&self, column: usize, child: NodeId) -> Option<&NodeRow> {
        let parent = *self.child_index.get(column)?.get(child)?;
        self.rows.get(parent)
    }

    /// Inserts a row (panics on duplicate id — node ids are unique).
    pub fn insert(&mut self, row: NodeRow) {
        for (k, &c) in row.children.iter().enumerate() {
            let prev = self.child_index[k].insert(c, row.id);
            debug_assert!(prev.is_none(), "child {c:?} indexed twice in column {k}");
        }
        let id = row.id;
        self.payload_bytes += row.heap_bytes();
        let prev = self.rows.insert(id, row);
        assert!(prev.is_none(), "duplicate row id");
    }

    /// Removes and returns the row for `id`.
    pub fn remove(&mut self, id: NodeId) -> Option<NodeRow> {
        let row = self.rows.remove(id)?;
        self.payload_bytes -= row.heap_bytes();
        for (k, &c) in row.children.iter().enumerate() {
            self.child_index[k].remove(c);
        }
        Some(row)
    }

    /// Iterates all rows (ascending id order).
    pub fn iter(&self) -> impl Iterator<Item = &NodeRow> {
        self.rows.iter().map(|(_, row)| row)
    }

    /// Approximate heap bytes (row pages, payloads, reverse-index pages —
    /// allocated pages charged in full, as everywhere on the dense
    /// layer). O(allocated pages): payload bytes come from the running
    /// counter, not a row walk.
    pub fn memory_bytes(&self) -> usize {
        self.rows.memory_bytes()
            + self.payload_bytes
            + self
                .child_index
                .iter()
                .map(NodeMap::memory_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_ast::schema::arith_schema;
    use tt_ast::{Ast, Value};

    fn row(id: u32, children: &[u32]) -> NodeRow {
        NodeRow {
            id: NodeId::from_index(id),
            attrs: vec![Value::Int(id as i64)],
            children: children.iter().map(|&c| NodeId::from_index(c)).collect(),
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let schema = arith_schema();
        let arith = schema.expect_label("Arith");
        let mut t = Table::new(arith, 2);
        t.insert(row(1, &[2, 3]));
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(NodeId::from_index(1)).unwrap().attrs[0],
            Value::Int(1)
        );
        assert!(t.get(NodeId::from_index(9)).is_none());
        let removed = t.remove(NodeId::from_index(1)).unwrap();
        assert_eq!(removed.children.len(), 2);
        assert!(t.is_empty());
        assert!(t.remove(NodeId::from_index(1)).is_none());
    }

    #[test]
    fn reverse_index_finds_parent() {
        let schema = arith_schema();
        let arith = schema.expect_label("Arith");
        let mut t = Table::new(arith, 2);
        t.insert(row(1, &[2, 3]));
        t.insert(row(4, &[5, 6]));
        let p = t.parent_of(0, NodeId::from_index(5)).unwrap();
        assert_eq!(p.id, NodeId::from_index(4));
        assert!(
            t.parent_of(1, NodeId::from_index(5)).is_none(),
            "wrong column"
        );
        t.remove(NodeId::from_index(4));
        assert!(
            t.parent_of(0, NodeId::from_index(5)).is_none(),
            "index cleaned up"
        );
    }

    #[test]
    fn snapshot_from_ast() {
        let schema = arith_schema();
        let mut ast = Ast::new(schema.clone());
        let c = ast.alloc(schema.expect_label("Const"), vec![Value::Int(7)], vec![]);
        let v = ast.alloc(schema.expect_label("Var"), vec![Value::str("x")], vec![]);
        let a = ast.alloc(
            schema.expect_label("Arith"),
            vec![Value::str("+")],
            vec![c, v],
        );
        let r = NodeRow::of(&ast, a);
        assert_eq!(r.id, a);
        assert_eq!(r.children, vec![c, v]);
        assert_eq!(r.attrs, vec![Value::str("+")]);
    }

    #[test]
    #[should_panic(expected = "duplicate row id")]
    fn duplicate_id_rejected() {
        let schema = arith_schema();
        let mut t = Table::new(schema.expect_label("Const"), 0);
        t.insert(row(1, &[]));
        t.insert(row(1, &[]));
    }

    #[test]
    fn memory_grows_with_rows() {
        let schema = arith_schema();
        let mut t = Table::new(schema.expect_label("Arith"), 2);
        let before = t.memory_bytes();
        for i in 0..100 {
            t.insert(row(i, &[1000 + i, 2000 + i]));
        }
        assert!(t.memory_bytes() > before);
    }
}
