//! Relational encoding of ASTs and an SPJ query substrate.
//!
//! §3 of the paper maps the AST onto relations: for each label/schema pair
//! `ℓ → ⟨{x₁…x_k}, c⟩` a relation `R_ℓ(id, x₁…x_k, child₁…child_c)`, with
//! one row per AST node. The bolt-on IVM engines (classic cascading IVM
//! and the DBToaster-style engine in `tt-ivm`) operate entirely on this
//! image — which is precisely why they carry a **shadow copy** of the AST
//! and the memory overhead the paper measures.
//!
//! Contents:
//! - [`table`] — one relation: rows keyed by node id plus reverse indexes
//!   on every child column (`child value → parent row`).
//! - [`database`] — the full relational image of an AST, updated by
//!   node-granularity insert/remove deltas (the instrumented compiler's
//!   `insert()` / `remove()` events of §7.2).
//! - [`eval`] — from-scratch evaluation of a reduced
//!   [`SqlQuery`](tt_pattern::SqlQuery), used to initialize materialized
//!   views and as the ground truth in tests.

pub mod database;
pub mod eval;
pub mod table;

pub use database::{Database, NodeDelta, Projection};
pub use eval::{evaluate, JoinRow, RowAttrs};
pub use table::{NodeRow, Table};
