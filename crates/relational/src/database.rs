//! The full relational image of an AST.

use crate::table::{NodeRow, Table};
use std::sync::Arc;
use tt_ast::{Ast, Label, NodeId, Schema};

/// A node-granularity change, as produced by the instrumented compiler
/// (§7.2: allocations become `insert()`, garbage collection `remove()`).
#[derive(Debug, Clone)]
pub enum NodeDelta {
    /// A node was created with this image.
    Insert(Label, NodeRow),
    /// A node with this image was destroyed. Carries the full row because
    /// the consumer (a bolt-on view structure) may no longer be able to
    /// read the node from the AST.
    Remove(Label, NodeRow),
}

impl NodeDelta {
    /// The delta's multiplicity: +1 for insert, −1 for remove.
    pub fn sign(&self) -> i64 {
        match self {
            NodeDelta::Insert(..) => 1,
            NodeDelta::Remove(..) => -1,
        }
    }

    /// The affected label.
    pub fn label(&self) -> Label {
        match self {
            NodeDelta::Insert(l, _) | NodeDelta::Remove(l, _) => *l,
        }
    }

    /// The affected row.
    pub fn row(&self) -> &NodeRow {
        match self {
            NodeDelta::Insert(_, r) | NodeDelta::Remove(_, r) => r,
        }
    }
}

/// Per-label attribute projection for the shadow copy: §3.2's
/// "unnecessary fields are projected away". Attributes not referenced by
/// any registered query's constraints are blanked to `Unit` on insert,
/// so the shadow copy's memory reflects only what view maintenance needs.
#[derive(Debug, Clone)]
pub struct Projection {
    /// `keep[label][attr_index]`.
    keep: Vec<Vec<bool>>,
}

impl Projection {
    /// Keep everything (used when any query carries an opaque host
    /// predicate, whose attribute needs cannot be inspected).
    pub fn keep_all(schema: &Schema) -> Projection {
        Projection {
            keep: schema
                .labels()
                .map(|l| vec![true; schema.def(l).attrs.len()])
                .collect(),
        }
    }

    /// Keep exactly the attributes referenced by the queries' filters.
    /// Falls back to [`Projection::keep_all`] if any filter contains a
    /// host predicate.
    pub fn for_queries(schema: &Schema, queries: &[&tt_pattern::SqlQuery]) -> Projection {
        let mut keep: Vec<Vec<bool>> = schema
            .labels()
            .map(|l| vec![false; schema.def(l).attrs.len()])
            .collect();
        for q in queries {
            for (_, constraint) in &q.filters {
                if constraint.has_host_pred() {
                    return Projection::keep_all(schema);
                }
                let mut refs = Vec::new();
                constraint.attr_refs(&mut refs);
                for (var, attr) in refs {
                    let label = q.atom(var).label;
                    if let Some(idx) = schema.attr_index(label, attr) {
                        keep[label.0 as usize][idx] = true;
                    }
                }
            }
        }
        Projection { keep }
    }

    /// Blanks projected-away attributes in place.
    pub fn apply(&self, label: Label, row: &mut NodeRow) {
        for (idx, keep) in self.keep[label.0 as usize].iter().enumerate() {
            if !keep {
                row.attrs[idx] = tt_ast::Value::Unit;
            }
        }
    }
}

/// One [`Table`] per schema label — the bolt-on engines' shadow copy.
#[derive(Debug)]
pub struct Database {
    schema: Arc<Schema>,
    tables: Vec<Table>,
    projection: Option<Projection>,
}

impl Database {
    /// An empty database over `schema` (no projection: full copies).
    pub fn new(schema: Arc<Schema>) -> Database {
        let tables = schema
            .labels()
            .map(|l| Table::new(l, schema.def(l).max_children))
            .collect();
        Database {
            schema,
            tables,
            projection: None,
        }
    }

    /// An empty database that projects every inserted row.
    pub fn with_projection(schema: Arc<Schema>, projection: Projection) -> Database {
        let mut db = Database::new(schema);
        db.projection = Some(projection);
        db
    }

    /// The projection in force, if any.
    pub fn projection(&self) -> Option<&Projection> {
        self.projection.as_ref()
    }

    /// Loads the relational image of every node reachable from `root`.
    pub fn from_ast(ast: &Ast, root: NodeId) -> Database {
        let mut db = Database::new(ast.schema().clone());
        if !root.is_null() {
            for n in ast.descendants(root) {
                db.insert(ast.label(n), NodeRow::of(ast, n));
            }
        }
        db
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The relation for `label`.
    #[inline]
    pub fn table(&self, label: Label) -> &Table {
        &self.tables[label.0 as usize]
    }

    /// Inserts a node image (applying the projection, if any).
    pub fn insert(&mut self, label: Label, mut row: NodeRow) {
        if let Some(p) = &self.projection {
            p.apply(label, &mut row);
        }
        self.tables[label.0 as usize].insert(row);
    }

    /// Removes a node image, returning it if present.
    pub fn remove(&mut self, label: Label, id: NodeId) -> Option<NodeRow> {
        self.tables[label.0 as usize].remove(id)
    }

    /// Applies one delta.
    pub fn apply(&mut self, delta: &NodeDelta) {
        match delta {
            NodeDelta::Insert(label, row) => self.insert(*label, row.clone()),
            NodeDelta::Remove(label, row) => {
                let removed = self.remove(*label, row.id);
                debug_assert!(removed.is_some(), "removing unknown node {:?}", row.id);
            }
        }
    }

    /// Total rows across all relations.
    pub fn len(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// True if every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a row by id across all relations (`O(labels)`).
    pub fn find_row(&self, id: NodeId) -> Option<(Label, &NodeRow)> {
        self.tables
            .iter()
            .find_map(|t| t.get(id).map(|r| (t.label(), r)))
    }

    /// Approximate heap bytes across relations and their indexes.
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(Table::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_ast::Value;

    fn fig3() -> (Ast, NodeId) {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(
            &mut ast,
            r#"(Arith op="+" (Arith op="*" (Const val=2) (Var name="y")) (Var name="x"))"#,
        )
        .unwrap();
        ast.set_root(id);
        (ast, id)
    }

    #[test]
    fn from_ast_loads_every_node() {
        let (ast, root) = fig3();
        let db = Database::from_ast(&ast, root);
        let schema = ast.schema();
        assert_eq!(db.len(), 5);
        assert_eq!(db.table(schema.expect_label("Arith")).len(), 2);
        assert_eq!(db.table(schema.expect_label("Const")).len(), 1);
        assert_eq!(db.table(schema.expect_label("Var")).len(), 2);
    }

    #[test]
    fn apply_roundtrip() {
        let (ast, root) = fig3();
        let mut db = Database::from_ast(&ast, root);
        let schema = ast.schema().clone();
        let constant = schema.expect_label("Const");
        let row = NodeRow {
            id: NodeId::from_index(100),
            attrs: vec![Value::Int(0)],
            children: vec![],
        };
        db.apply(&NodeDelta::Insert(constant, row.clone()));
        assert_eq!(db.table(constant).len(), 2);
        db.apply(&NodeDelta::Remove(constant, row));
        assert_eq!(db.table(constant).len(), 1);
    }

    #[test]
    fn find_row_scans_labels() {
        let (ast, root) = fig3();
        let db = Database::from_ast(&ast, root);
        let (label, row) = db.find_row(root).unwrap();
        assert_eq!(label, ast.schema().expect_label("Arith"));
        assert_eq!(row.children.len(), 2);
        assert!(db.find_row(NodeId::from_index(999)).is_none());
    }

    #[test]
    fn delta_accessors() {
        let schema = arith_schema();
        let constant = schema.expect_label("Const");
        let row = NodeRow {
            id: NodeId::from_index(5),
            attrs: vec![Value::Int(1)],
            children: vec![],
        };
        let ins = NodeDelta::Insert(constant, row.clone());
        let rem = NodeDelta::Remove(constant, row);
        assert_eq!(ins.sign(), 1);
        assert_eq!(rem.sign(), -1);
        assert_eq!(ins.label(), constant);
        assert_eq!(ins.row().id, NodeId::from_index(5));
    }

    #[test]
    fn empty_database() {
        let db = Database::new(arith_schema());
        assert!(db.is_empty());
        let db2 = Database::from_ast(&Ast::new(arith_schema()), NodeId::NULL);
        assert!(db2.is_empty());
    }

    #[test]
    fn projection_blanks_unreferenced_attrs() {
        use tt_pattern::dsl as p;
        use tt_pattern::{Pattern, SqlQuery};
        let schema = arith_schema();
        // A query referencing only Const.val: Arith.op and Var.name are
        // projected away; Const.val is kept.
        let pattern = Pattern::compile(
            &schema,
            p::node(
                "Arith",
                "a",
                [
                    p::node("Const", "b", [], p::eq(p::attr("b", "val"), p::int(0))),
                    p::node("Var", "c", [], p::tru()),
                ],
                p::tru(),
            ),
        );
        let query = SqlQuery::from_pattern(&pattern);
        let projection = Projection::for_queries(&schema, &[&query]);
        let mut db = Database::with_projection(schema.clone(), projection);
        db.insert(
            schema.expect_label("Arith"),
            NodeRow {
                id: NodeId::from_index(1),
                attrs: vec![Value::str("+")],
                children: vec![NodeId::from_index(2), NodeId::from_index(3)],
            },
        );
        db.insert(
            schema.expect_label("Const"),
            NodeRow {
                id: NodeId::from_index(2),
                attrs: vec![Value::Int(0)],
                children: vec![],
            },
        );
        db.insert(
            schema.expect_label("Var"),
            NodeRow {
                id: NodeId::from_index(3),
                attrs: vec![Value::str("x")],
                children: vec![],
            },
        );
        let arith_row = db
            .table(schema.expect_label("Arith"))
            .get(NodeId::from_index(1))
            .unwrap();
        assert_eq!(arith_row.attrs[0], Value::Unit, "op projected away");
        let const_row = db
            .table(schema.expect_label("Const"))
            .get(NodeId::from_index(2))
            .unwrap();
        assert_eq!(const_row.attrs[0], Value::Int(0), "val kept for the filter");
        let var_row = db
            .table(schema.expect_label("Var"))
            .get(NodeId::from_index(3))
            .unwrap();
        assert_eq!(var_row.attrs[0], Value::Unit, "name projected away");
        // Children always survive (they are the join columns).
        assert_eq!(arith_row.children.len(), 2);
    }

    #[test]
    fn projection_keep_all_on_host_predicates() {
        use tt_pattern::dsl as p;
        use tt_pattern::{HostPred, Pattern, SqlQuery};
        let schema = arith_schema();
        let pattern = Pattern::compile(
            &schema,
            p::node("Const", "b", [], p::host(HostPred::new("opaque", |_| true))),
        );
        let query = SqlQuery::from_pattern(&pattern);
        let projection = Projection::for_queries(&schema, &[&query]);
        // Opaque predicate → every attribute everywhere is kept.
        let mut row = NodeRow {
            id: NodeId::from_index(9),
            attrs: vec![Value::str("+")],
            children: vec![],
        };
        projection.apply(schema.expect_label("Arith"), &mut row);
        assert_eq!(row.attrs[0], Value::str("+"));
    }

    #[test]
    fn projected_evaluation_still_matches() {
        // Filters only read kept attributes, so evaluation over the
        // projected image equals evaluation over the full image.
        use tt_ast::sexpr::parse_sexpr;
        use tt_pattern::dsl as p;
        use tt_pattern::{Pattern, SqlQuery};
        let schema = arith_schema();
        let mut ast = Ast::new(schema.clone());
        let root = parse_sexpr(&mut ast, r#"(Arith op="+" (Const val=0) (Var name="x"))"#).unwrap();
        ast.set_root(root);
        let pattern = Pattern::compile(
            &schema,
            p::node(
                "Arith",
                "a",
                [
                    p::node("Const", "b", [], p::eq(p::attr("b", "val"), p::int(0))),
                    p::node("Var", "c", [], p::tru()),
                ],
                p::eq(p::attr("a", "op"), p::str_("+")),
            ),
        );
        let query = SqlQuery::from_pattern(&pattern);
        let projection = Projection::for_queries(&schema, &[&query]);
        let mut projected = Database::with_projection(schema.clone(), projection);
        for n in ast.descendants(root) {
            projected.insert(ast.label(n), NodeRow::of(&ast, n));
        }
        let full = Database::from_ast(&ast, root);
        assert_eq!(
            crate::eval::evaluate(&projected, &query),
            crate::eval::evaluate(&full, &query)
        );
    }
}
