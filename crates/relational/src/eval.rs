//! From-scratch evaluation of reduced pattern queries.
//!
//! Because pattern joins are tree-shaped — every non-root atom joins to an
//! earlier atom through a parent/child edge (the pattern is reduced in
//! preorder) — evaluation is a scan of the root atom's relation followed
//! by O(1) id lookups per child atom. This function initializes
//! materialized views and serves as the correctness oracle in tests; the
//! incremental engines in `tt-ivm` keep the same result up to date.

use crate::database::Database;
use tt_ast::{AttrName, NodeId, Value};
use tt_pattern::{AttrSource, SqlQuery, VarId};

/// One join result: the node bound to each variable, indexed by `VarId`.
pub type JoinRow = Box<[NodeId]>;

/// [`AttrSource`] resolving `i.x` against the database's shadow tuples —
/// the relational-side counterpart of `tt_pattern::eval::TreeAttrs`.
pub struct RowAttrs<'a> {
    /// The shadow database.
    pub db: &'a Database,
    /// The query whose atoms type the row.
    pub query: &'a SqlQuery,
    /// Variable bindings (dense by `VarId`).
    pub row: &'a [NodeId],
}

impl AttrSource for RowAttrs<'_> {
    fn attr_of(&self, var: VarId, attr: AttrName) -> Value {
        let atom = self.query.atom(var);
        let id = self.row[var.0 as usize];
        let node_row = self
            .db
            .table(atom.label)
            .get(id)
            .unwrap_or_else(|| panic!("dangling row {id:?} bound to v{}", var.0));
        let idx = self
            .db
            .schema()
            .attr_index(atom.label, attr)
            .unwrap_or_else(|| panic!("label has no attribute for filter"));
        node_row.attrs[idx].clone()
    }
}

/// Evaluates `query` against `db`, returning all join rows that satisfy
/// the joins, arity requirements, and filters. Rows are indexed by
/// `VarId` over the pattern's full variable space; named-wildcard slots
/// stay `NULL` (no relation backs them).
pub fn evaluate(db: &Database, query: &SqlQuery) -> Vec<JoinRow> {
    let root_atom = &query.atoms[0];
    let root_var = root_atom.var.0 as usize;
    let mut out = Vec::new();
    for root_row in db.table(root_atom.label).iter() {
        if root_row.children.len() != root_atom.arity {
            continue;
        }
        let mut row: Vec<NodeId> = vec![NodeId::NULL; query.var_space];
        row[root_var] = root_row.id;
        if extend(db, query, 1, &mut row) && filters_pass(db, query, &row) {
            out.push(row.clone().into_boxed_slice());
        }
    }
    out
}

/// Binds atoms `idx..` by following the (unique) join edge from an
/// already-bound parent atom. Returns false if any lookup fails.
fn extend(db: &Database, query: &SqlQuery, idx: usize, row: &mut [NodeId]) -> bool {
    if idx == query.width() {
        return true;
    }
    let atom = &query.atoms[idx];
    let join = query
        .joins
        .iter()
        .find(|j| j.child == atom.var)
        .expect("non-root atom must have a parent join");
    let parent_id = row[join.parent.0 as usize];
    debug_assert!(
        !parent_id.is_null(),
        "parent bound before child in preorder"
    );
    let parent_label = query.atom(join.parent).label;
    let Some(parent_row) = db.table(parent_label).get(parent_id) else {
        return false;
    };
    let Some(&child_id) = parent_row.children.get(join.child_index) else {
        return false;
    };
    let Some(child_row) = db.table(atom.label).get(child_id) else {
        return false; // child exists but has a different label
    };
    if child_row.children.len() != atom.arity {
        return false;
    }
    row[atom.var.0 as usize] = child_id;
    extend(db, query, idx + 1, row)
}

/// Evaluates every filter fragment against the bound row.
pub fn filters_pass(db: &Database, query: &SqlQuery, row: &[NodeId]) -> bool {
    let src = RowAttrs { db, query, row };
    query.filters.iter().all(|(_, c)| c.eval(&src))
}

/// Looks up a single candidate row rooted at `root_id` (used by engines to
/// re-check a specific node instead of scanning). Returns the full binding
/// if the subtree rooted there matches.
pub fn probe_root(db: &Database, query: &SqlQuery, root_id: NodeId) -> Option<JoinRow> {
    let root_atom = &query.atoms[0];
    let root_row = db.table(root_atom.label).get(root_id)?;
    if root_row.children.len() != root_atom.arity {
        return None;
    }
    let mut row: Vec<NodeId> = vec![NodeId::NULL; query.var_space];
    row[root_atom.var.0 as usize] = root_id;
    if extend(db, query, 1, &mut row) && filters_pass(db, query, &row) {
        Some(row.into_boxed_slice())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_ast::Ast;
    use tt_pattern::dsl::*;
    use tt_pattern::Pattern;

    fn add_zero_query() -> (Pattern, SqlQuery) {
        let schema = arith_schema();
        let p = Pattern::compile(
            &schema,
            node(
                "Arith",
                "a",
                [
                    node("Const", "b", [], eq(attr("b", "val"), int(0))),
                    node("Var", "c", [], tru()),
                ],
                eq(attr("a", "op"), str_("+")),
            ),
        );
        let q = SqlQuery::from_pattern(&p);
        (p, q)
    }

    fn load(text: &str) -> (Ast, NodeId, Database) {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        let db = Database::from_ast(&ast, id);
        (ast, id, db)
    }

    #[test]
    fn matches_tree_semantics_on_fig3_variant() {
        let (ast, root, db) = load(r#"(Arith op="+" (Const val=0) (Var name="x"))"#);
        let (p, q) = add_zero_query();
        let rows = evaluate(&db, &q);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], root);
        // Agreement with the tree matcher.
        let tree_matches = tt_pattern::match_set(&ast, root, &p);
        assert_eq!(tree_matches, vec![root]);
    }

    #[test]
    fn filter_rejects_nonzero() {
        let (_, _, db) = load(r#"(Arith op="+" (Const val=5) (Var name="x"))"#);
        let (_, q) = add_zero_query();
        assert!(evaluate(&db, &q).is_empty());
    }

    #[test]
    fn nested_matches_found_anywhere() {
        let (ast, root, db) =
            load(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="a")) (Var name="b"))"#);
        let (p, q) = add_zero_query();
        let rows = evaluate(&db, &q);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], ast.children(root)[0]);
        assert_eq!(
            tt_pattern::match_set(&ast, root, &p),
            vec![ast.children(root)[0]]
        );
    }

    #[test]
    fn probe_root_agrees_with_evaluate() {
        let (ast, root, db) = load(r#"(Arith op="+" (Const val=0) (Var name="x"))"#);
        let (_, q) = add_zero_query();
        assert!(probe_root(&db, &q, root).is_some());
        assert!(probe_root(&db, &q, ast.children(root)[0]).is_none());
    }

    #[test]
    fn wrong_child_label_rejected() {
        let (_, _, db) = load(r#"(Arith op="+" (Var name="z") (Var name="x"))"#);
        let (_, q) = add_zero_query();
        assert!(evaluate(&db, &q).is_empty());
    }

    #[test]
    fn single_atom_query_scans_label() {
        let schema = arith_schema();
        let p = Pattern::compile(&schema, node("Var", "v", [], tru()));
        let q = SqlQuery::from_pattern(&p);
        let (_, _, db) = load(r#"(Arith op="+" (Var name="a") (Var name="b"))"#);
        assert_eq!(evaluate(&db, &q).len(), 2);
    }

    #[test]
    fn row_attrs_resolves_against_shadow_tuples() {
        let (_, root, db) = load(r#"(Arith op="+" (Const val=0) (Var name="x"))"#);
        let (p, q) = add_zero_query();
        let rows = evaluate(&db, &q);
        let src = RowAttrs {
            db: &db,
            query: &q,
            row: &rows[0],
        };
        let op = db.schema().expect_attr("op");
        assert_eq!(src.attr_of(p.var("a").unwrap(), op).as_str(), "+");
        let _ = root;
    }
}
