//! DBToaster-style higher-order IVM (Koch et al. \[24\]; the evaluation's
//! **DBT**).
//!
//! "With DBToaster, Koch et al. proposed instead materializing all
//! possible query plans" (§3.1). For a tree-shaped pattern join this
//! means one materialized map `M_S` for **every connected sub-join `S`**
//! of the pattern: the singletons (a filtered shadow copy of each base
//! relation), every intermediate, and the full view. A single-tuple delta
//! at atom `j` is then answered without touching base relations: join the
//! tuple with the already-materialized maps of the connected components
//! of `S ∖ {j}`, for every `S ∋ j`.
//!
//! The paper's running example materializes exactly two extra views
//! (`{Arith,Const}` and `{Arith,Var}`) beyond the bases and the full
//! join — and the count "grows combinatorially with the join width",
//! which is the memory overhead Figures 11/13 show.

use crate::common::{self, ViewCore};
use std::sync::Arc;
use treetoaster_core::{EpochOps, MatchCore, ReplaceCtx, RuleId, RuleSet};
use tt_ast::{Ast, FxHashMap, Label, NodeId, NodeRow};
use tt_pattern::{Bindings, SqlQuery, VarId};
use tt_relational::{Database, NodeDelta};

/// How a materialized subset computes its key for one boundary edge.
#[derive(Debug, Clone, Copy)]
enum BoundaryKind {
    /// Subset holds the edge's parent atom: key is that row's child
    /// pointer (a shadow-database lookup at insert time).
    HoldsParent {
        parent_var: VarId,
        child_index: usize,
    },
    /// Subset holds the edge's child atom: key is the bound child id.
    HoldsChild { child_var: VarId },
}

#[derive(Debug, Clone, Copy)]
struct BoundaryEdge {
    join_index: usize,
    kind: BoundaryKind,
}

/// How the delta tuple probes one component of `S ∖ {j}`.
#[derive(Debug, Clone, Copy)]
enum KeyFrom {
    /// Component holds the parent side; probe with `t.id`.
    TupleId,
    /// Component holds the child side; probe with `t.children[k]`.
    TupleChild { child_index: usize },
}

#[derive(Debug, Clone, Copy)]
struct ComponentLink {
    subset_index: usize,
    join_index: usize,
    key_from: KeyFrom,
}

/// Update plan for a delta arriving at one member atom of a subset.
#[derive(Debug, Clone)]
struct MemberPlan {
    components: Vec<ComponentLink>,
    /// Filters first enforceable when this member joins its components.
    filters: Vec<usize>,
}

#[derive(Debug, Default)]
struct RowMeta {
    mult: i64,
    /// `(join_index, key)` pairs captured at insert time so deletions
    /// need no lookups.
    keys: Vec<(usize, NodeId)>,
}

/// Rows of a materialized map grouped by one boundary-edge key.
type RowsByKey = FxHashMap<NodeId, Vec<Box<[NodeId]>>>;

/// Signed row deltas destined for one materialized subset.
type RowDeltas = Vec<(Box<[NodeId]>, i64)>;

/// One materialized map `M_S`.
struct SubsetState {
    /// Sorted atom indices.
    atoms: Vec<usize>,
    rows: FxHashMap<Box<[NodeId]>, RowMeta>,
    /// Per boundary edge: key → rows.
    indexes: FxHashMap<usize, RowsByKey>,
    boundary: Vec<BoundaryEdge>,
    /// Aligned with `atoms`.
    member_plans: Vec<MemberPlan>,
}

impl SubsetState {
    fn add_row(&mut self, db: &Database, query: &SqlQuery, row: &[NodeId], delta: i64) {
        if delta == 0 {
            return;
        }
        let entry = self.rows.entry(row.into()).or_default();
        if entry.mult == 0 && entry.keys.is_empty() {
            // Fresh row: capture boundary keys now.
            entry.keys = self
                .boundary
                .iter()
                .map(|b| {
                    let key = match b.kind {
                        BoundaryKind::HoldsChild { child_var } => row[child_var.0 as usize],
                        BoundaryKind::HoldsParent {
                            parent_var,
                            child_index,
                        } => {
                            let parent_id = row[parent_var.0 as usize];
                            let label = query.atom(parent_var).label;
                            db.table(label)
                                .get(parent_id)
                                .and_then(|r| r.children.get(child_index).copied())
                                .unwrap_or(NodeId::NULL)
                        }
                    };
                    (b.join_index, key)
                })
                .collect();
        }
        let old_positive = entry.mult > 0;
        entry.mult += delta;
        let new_positive = entry.mult > 0;
        let keys = entry.keys.clone();
        if entry.mult == 0 {
            self.rows.remove(row);
        }
        match (old_positive, new_positive) {
            (false, true) => {
                for (join_index, key) in keys {
                    if !key.is_null() {
                        self.indexes
                            .entry(join_index)
                            .or_default()
                            .entry(key)
                            .or_default()
                            .push(row.into());
                    }
                }
            }
            (true, false) => {
                for (join_index, key) in keys {
                    if key.is_null() {
                        continue;
                    }
                    let by_key = self.indexes.get_mut(&join_index).expect("index exists");
                    let bucket = by_key.get_mut(&key).expect("bucket exists");
                    let at = bucket
                        .iter()
                        .position(|r| r.as_ref() == row)
                        .expect("indexed row present");
                    bucket.swap_remove(at);
                    if bucket.is_empty() {
                        by_key.remove(&key);
                    }
                }
            }
            _ => {}
        }
    }

    fn probe(&self, join_index: usize, key: NodeId) -> &[Box<[NodeId]>] {
        self.indexes
            .get(&join_index)
            .and_then(|m| m.get(&key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn mult_of(&self, row: &[NodeId]) -> i64 {
        self.rows.get(row).map(|m| m.mult).unwrap_or(0)
    }

    fn memory_bytes(&self) -> usize {
        let width = self.rows.keys().next().map_or(0, |k| k.len()) * std::mem::size_of::<NodeId>();
        let rows = self.rows.capacity()
            * (1 + std::mem::size_of::<(Box<[NodeId]>, RowMeta)>()
                + width
                + self.boundary.len() * std::mem::size_of::<(usize, NodeId)>());
        let idx: usize = self
            .indexes
            .values()
            .flat_map(|m| m.values())
            .map(|v| v.capacity() * (std::mem::size_of::<Box<[NodeId]>>() + width))
            .sum();
        rows + idx
    }
}

/// Per-pattern DBToaster state.
struct DbtQuery {
    query: SqlQuery,
    subsets: Vec<SubsetState>,
    full_index: usize,
    view: ViewCore,
}

impl DbtQuery {
    fn new(query: SqlQuery) -> DbtQuery {
        let k = query.width();
        let atom_of_var: FxHashMap<VarId, usize> = query
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.var, i))
            .collect();
        // Join-tree adjacency between atom indices.
        let edges: Vec<(usize, usize)> = query
            .joins
            .iter()
            .map(|j| (atom_of_var[&j.parent], atom_of_var[&j.child]))
            .collect();
        let connected = |mask: u32| -> bool {
            let start = (0..k).find(|i| mask & (1 << i) != 0).unwrap();
            let mut seen = 1u32 << start;
            let mut frontier = vec![start];
            while let Some(a) = frontier.pop() {
                for (ji, &(p, c)) in edges.iter().enumerate() {
                    let _ = ji;
                    for (u, v) in [(p, c), (c, p)] {
                        if u == a && mask & (1 << v) != 0 && seen & (1 << v) == 0 {
                            seen |= 1 << v;
                            frontier.push(v);
                        }
                    }
                }
            }
            seen == mask
        };
        let mut masks: Vec<u32> = (1u32..(1 << k)).filter(|&m| connected(m)).collect();
        masks.sort_by_key(|m| m.count_ones());
        let index_of_mask: FxHashMap<u32, usize> =
            masks.iter().enumerate().map(|(i, &m)| (m, i)).collect();

        let atom_vars: Vec<VarId> = query.atoms.iter().map(|a| a.var).collect();
        let filter_var_sets: Vec<Vec<usize>> = query
            .filters
            .iter()
            .map(|(_, c)| {
                common::filter_vars(c, &atom_vars)
                    .into_iter()
                    .map(|v| atom_of_var[&v])
                    .collect()
            })
            .collect();
        let vars_in = |mask: u32, vars: &[usize]| vars.iter().all(|&a| mask & (1 << a) != 0);

        let subsets: Vec<SubsetState> = masks
            .iter()
            .map(|&mask| {
                let atoms: Vec<usize> = (0..k).filter(|i| mask & (1 << i) != 0).collect();
                let boundary: Vec<BoundaryEdge> = edges
                    .iter()
                    .enumerate()
                    .filter_map(|(ji, &(p, c))| {
                        let p_in = mask & (1 << p) != 0;
                        let c_in = mask & (1 << c) != 0;
                        match (p_in, c_in) {
                            (true, false) => Some(BoundaryEdge {
                                join_index: ji,
                                kind: BoundaryKind::HoldsParent {
                                    parent_var: query.joins[ji].parent,
                                    child_index: query.joins[ji].child_index,
                                },
                            }),
                            (false, true) => Some(BoundaryEdge {
                                join_index: ji,
                                kind: BoundaryKind::HoldsChild {
                                    child_var: query.joins[ji].child,
                                },
                            }),
                            _ => None,
                        }
                    })
                    .collect();
                let member_plans: Vec<MemberPlan> = atoms
                    .iter()
                    .map(|&j| {
                        let rem = mask & !(1 << j);
                        // Connected components of rem.
                        let mut comp_masks: Vec<u32> = Vec::new();
                        let mut left = rem;
                        while left != 0 {
                            let start = left.trailing_zeros() as usize;
                            let mut seen = 1u32 << start;
                            let mut frontier = vec![start];
                            while let Some(a) = frontier.pop() {
                                for &(p, c) in &edges {
                                    for (u, v) in [(p, c), (c, p)] {
                                        if u == a && rem & (1 << v) != 0 && seen & (1 << v) == 0 {
                                            seen |= 1 << v;
                                            frontier.push(v);
                                        }
                                    }
                                }
                            }
                            comp_masks.push(seen);
                            left &= !seen;
                        }
                        let components: Vec<ComponentLink> = comp_masks
                            .iter()
                            .map(|&cm| {
                                // The unique edge connecting j to this component.
                                let (ji, &(p, c)) = edges
                                    .iter()
                                    .enumerate()
                                    .find(|(_, &(p, c))| {
                                        (p == j && cm & (1 << c) != 0)
                                            || (c == j && cm & (1 << p) != 0)
                                    })
                                    .expect("component attaches to j");
                                let key_from = if c == j {
                                    // Component holds the parent side.
                                    KeyFrom::TupleId
                                } else {
                                    debug_assert_eq!(p, j);
                                    KeyFrom::TupleChild {
                                        child_index: query.joins[ji].child_index,
                                    }
                                };
                                ComponentLink {
                                    subset_index: index_of_mask[&cm],
                                    join_index: ji,
                                    key_from,
                                }
                            })
                            .collect();
                        let filters: Vec<usize> = filter_var_sets
                            .iter()
                            .enumerate()
                            .filter(|(_, vars)| {
                                vars_in(mask, vars)
                                    && !comp_masks.iter().any(|&cm| vars_in(cm, vars))
                            })
                            .map(|(fi, _)| fi)
                            .collect();
                        MemberPlan {
                            components,
                            filters,
                        }
                    })
                    .collect();
                SubsetState {
                    atoms,
                    rows: FxHashMap::default(),
                    indexes: FxHashMap::default(),
                    boundary,
                    member_plans,
                }
            })
            .collect();

        let full_index = index_of_mask[&((1u32 << k) - 1)];
        let root_var = query.root_var();
        DbtQuery {
            query,
            subsets,
            full_index,
            view: ViewCore::new(root_var),
        }
    }

    fn atoms_for(&self, label: Label) -> Vec<usize> {
        self.query
            .atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.label == label)
            .map(|(i, _)| i)
            .collect()
    }

    /// Processes one tuple delta at atom `j`: for every materialized
    /// `M_S` with `j ∈ S`, join `t` against the components of `S ∖ {j}`.
    fn process(&mut self, db: &Database, t: &NodeRow, j: usize, sign: i64) {
        if !common::arity_ok(&self.query, j, t) {
            return;
        }
        let var_j = self.query.atoms[j].var.0 as usize;
        // Compute all subset deltas first (components never contain j, so
        // no subset read here is mutated in this step).
        let mut deltas: Vec<(usize, RowDeltas)> = Vec::new();
        for (si, subset) in self.subsets.iter().enumerate() {
            let Some(pos) = subset.atoms.iter().position(|&a| a == j) else {
                continue;
            };
            let plan = &subset.member_plans[pos];
            let mut base = vec![NodeId::NULL; self.query.var_space];
            base[var_j] = t.id;
            let mut partials: Vec<(Box<[NodeId]>, i64)> = vec![(base.into_boxed_slice(), 1)];
            for link in &plan.components {
                let key = match link.key_from {
                    KeyFrom::TupleId => t.id,
                    KeyFrom::TupleChild { child_index } => match t.children.get(child_index) {
                        Some(&c) => c,
                        None => {
                            partials.clear();
                            break;
                        }
                    },
                };
                let comp = &self.subsets[link.subset_index];
                let comp_rows = comp.probe(link.join_index, key);
                let mut merged = Vec::with_capacity(partials.len() * comp_rows.len());
                for (row, mult) in &partials {
                    for crow in comp_rows {
                        let cmult = comp.mult_of(crow);
                        let mut out = row.clone();
                        for (slot, &v) in out.iter_mut().zip(crow.iter()) {
                            if !v.is_null() {
                                *slot = v;
                            }
                        }
                        merged.push((out, mult * cmult));
                    }
                }
                partials = merged;
                if partials.is_empty() {
                    break;
                }
            }
            partials.retain(|(row, _)| common::eval_filters(db, &self.query, row, &plan.filters));
            if !partials.is_empty() {
                deltas.push((si, partials));
            }
        }
        for (si, rows) in deltas {
            for (row, mult) in rows {
                self.subsets[si].add_row(db, &self.query, &row, sign * mult);
                if si == self.full_index {
                    self.view.add(&row, sign * mult);
                }
            }
        }
    }

    fn clear(&mut self) {
        for s in &mut self.subsets {
            s.rows.clear();
            s.indexes.clear();
        }
        self.view.clear();
    }

    fn memory_bytes(&self) -> usize {
        self.subsets
            .iter()
            .map(SubsetState::memory_bytes)
            .sum::<usize>()
            + self.view.memory_bytes()
    }
}

/// The **DBT** bolt-on strategy.
pub struct DbtIvm {
    rules: Arc<RuleSet>,
    db: Database,
    queries: Vec<DbtQuery>,
    /// Epoch-scoped coalescing of the node event stream (see
    /// [`crate::batch::DeltaLog`]); reads inside an open epoch flush it.
    log: crate::batch::DeltaLog,
    /// Net delta stream of an epoch sealed by `submit_commit`, awaiting
    /// its background committer (see [`crate::classic::ClassicIvm`] for
    /// the replay-order contract).
    sealed: Vec<NodeDelta>,
}

impl DbtIvm {
    /// Builds the strategy; call [`MatchCore::rebuild`] after loading.
    pub fn new(rules: Arc<RuleSet>, ast: &Ast) -> DbtIvm {
        let queries: Vec<DbtQuery> = rules
            .iter()
            .map(|(_, r)| DbtQuery::new(SqlQuery::from_pattern(&r.pattern)))
            .collect();
        let db = Self::fresh_db(ast, &queries);
        DbtIvm {
            rules,
            db,
            queries,
            log: crate::batch::DeltaLog::new(),
            sealed: Vec::new(),
        }
    }

    /// A projected shadow database (§3.2).
    fn fresh_db(ast: &Ast, queries: &[DbtQuery]) -> Database {
        let refs: Vec<&SqlQuery> = queries.iter().map(|q| &q.query).collect();
        let projection = tt_relational::Projection::for_queries(ast.schema(), &refs);
        Database::with_projection(ast.schema().clone(), projection)
    }

    fn apply_delta(&mut self, delta: &NodeDelta) {
        match delta {
            NodeDelta::Remove(label, row) => {
                for q in &mut self.queries {
                    for j in q.atoms_for(*label) {
                        q.process(&self.db, row, j, -1);
                    }
                }
                self.db.remove(*label, row.id);
            }
            NodeDelta::Insert(label, row) => {
                self.db.insert(*label, row.clone());
                for q in &mut self.queries {
                    for j in q.atoms_for(*label).into_iter().rev() {
                        q.process(&self.db, row, j, 1);
                    }
                }
            }
        }
    }

    /// Replays everything staged in the open epoch through the normal
    /// sequential path — net deltas only, opposing pairs already gone.
    /// A sealed epoch awaiting its committer replays first, preserving
    /// epoch order.
    fn flush_pending(&mut self) {
        self.apply_submitted();
        for delta in self.log.take_pending() {
            self.apply_delta(&delta);
        }
    }

    /// Number of materialized maps for rule `rule` (the paper counts 2
    /// extra beyond bases + view for the running example).
    pub fn materialized_map_count(&self, rule: RuleId) -> usize {
        self.queries[rule].subsets.len()
    }

    /// Test oracle: the full-set map must equal a from-scratch evaluation.
    pub fn check_views_correct(&self) -> Result<(), String> {
        for (id, q) in self.queries.iter().enumerate() {
            let expected = tt_relational::evaluate(&self.db, &q.query);
            let full = &q.subsets[q.full_index];
            if expected.len() != full.rows.len() {
                return Err(format!(
                    "dbt view {} has {} rows, expected {}",
                    id,
                    full.rows.len(),
                    expected.len()
                ));
            }
            for row in &expected {
                if full.mult_of(row) != 1 {
                    return Err(format!("dbt view {id} wrong multiplicity for {row:?}"));
                }
            }
            if q.view.len() != expected.len() {
                return Err(format!("dbt ViewCore out of sync for {id}"));
            }
        }
        Ok(())
    }

    /// The rule set this engine serves.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }
}

impl MatchCore for DbtIvm {
    fn name(&self) -> &'static str {
        "DBT"
    }

    fn rebuild(&mut self, ast: &Ast) {
        self.db = Self::fresh_db(ast, &self.queries);
        for q in &mut self.queries {
            q.clear();
        }
        self.log.clear();
        self.sealed.clear();
        if ast.root().is_null() {
            return;
        }
        for n in ast.descendants(ast.root()) {
            let label = ast.label(n);
            let row = NodeRow::of(ast, n);
            self.apply_delta(&NodeDelta::Insert(label, row));
        }
    }

    fn find_one(&mut self, _ast: &Ast, rule: RuleId) -> Option<NodeId> {
        self.flush_pending();
        self.queries[rule].view.any_root()
    }

    fn before_replace(&mut self, _: &Ast, _: NodeId, _: Option<(RuleId, &Bindings)>) {}

    fn after_replace(&mut self, ast: &Ast, ctx: &ReplaceCtx<'_>) {
        if !self.log.is_open() {
            // Out-of-epoch events apply directly, so a sealed epoch
            // still awaiting its committer must replay first to keep
            // the event stream in submission order.
            self.apply_submitted();
        }
        for delta in common::deltas_of_ctx(ast, ctx) {
            if let Some(delta) = self.log.absorb(delta) {
                self.apply_delta(&delta);
            }
        }
    }

    fn on_graft(&mut self, ast: &Ast, created: &[NodeId]) {
        if !self.log.is_open() {
            // Same ordering rule as `after_replace`.
            self.apply_submitted();
        }
        for &n in created {
            let delta = NodeDelta::Insert(ast.label(n), NodeRow::of(ast, n));
            if let Some(delta) = self.log.absorb(delta) {
                self.apply_delta(&delta);
            }
        }
    }

    fn check_consistent(&self, ast: &Ast) -> Result<(), String> {
        if !self.log.is_empty() {
            return Err("dbt engine has staged deltas in an open batch".into());
        }
        if !self.sealed.is_empty() {
            return Err("dbt engine has a sealed epoch awaiting its committer".into());
        }
        common::check_shadow_db(&self.db, ast)?;
        self.check_views_correct()
    }

    fn memory_bytes(&self) -> usize {
        self.db.memory_bytes()
            + self
                .queries
                .iter()
                .map(DbtQuery::memory_bytes)
                .sum::<usize>()
            + self.log.memory_bytes()
            + self.sealed.capacity() * std::mem::size_of::<NodeDelta>()
            + self
                .sealed
                .iter()
                .map(|d| d.row().heap_bytes())
                .sum::<usize>()
    }

    fn match_heat(&self) -> usize {
        // Materialized match-view sizes; the unflushed delta log and any
        // sealed-but-unapplied epoch are work the views haven't absorbed
        // yet, so they count as heat too.
        self.queries.iter().map(|q| q.view.len()).sum::<usize>()
            + self.log.len()
            + self.sealed.len()
    }
}

impl EpochOps for DbtIvm {
    fn begin_batch(&mut self) {
        self.log.begin();
    }

    fn commit_batch(&mut self) {
        self.flush_pending();
        self.log.end();
    }

    fn submit_commit(&mut self) -> bool {
        let pending = self.log.take_pending();
        self.log.end();
        if pending.is_empty() {
            return false;
        }
        self.sealed.extend(pending);
        true
    }

    fn apply_submitted(&mut self) -> bool {
        if self.sealed.is_empty() {
            return false;
        }
        let sealed = std::mem::take(&mut self.sealed);
        for delta in &sealed {
            self.apply_delta(delta);
        }
        true
    }

    fn has_submitted(&self) -> bool {
        !self.sealed.is_empty()
    }

    fn batch_cancellation(&self) -> Option<(u64, u64)> {
        Some(self.log.epoch_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treetoaster_core::generator::reuse;
    use treetoaster_core::{ReplaceCtx, RewriteRule, RuleFired};
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    fn rules() -> Arc<RuleSet> {
        let s = arith_schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        );
        Arc::new(RuleSet::from_rules(vec![RewriteRule::new(
            "AddZero",
            &s,
            pattern,
            reuse("C"),
        )]))
    }

    fn tree(text: &str) -> Ast {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        ast
    }

    fn fire(engine: &mut DbtIvm, ast: &mut Ast, rid: usize, site: NodeId) {
        let rules = engine.rules().clone();
        let rule = rules.get(rid);
        let bindings = match_node(ast, site, &rule.pattern).unwrap();
        engine.before_replace(ast, site, Some((rid, &bindings)));
        let applied = rule.apply(ast, site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: rid,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        engine.after_replace(ast, &ctx);
    }

    #[test]
    fn running_example_materializes_six_maps() {
        // Atoms {A,B,C} with edges A−B, A−C: connected subsets are
        // {A},{B},{C},{AB},{AC},{ABC} — the two "additional view queries"
        // the paper counts are {AB} and {AC}.
        let ast = tree(r#"(Const val=1)"#);
        let engine = DbtIvm::new(rules(), &ast);
        assert_eq!(engine.materialized_map_count(0), 6);
    }

    #[test]
    fn rebuild_and_view_correct() {
        let ast = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let mut engine = DbtIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        engine.check_views_correct().unwrap();
        assert!(engine.queries[0].view.any_root().is_some());
    }

    #[test]
    fn rewrite_drains_view_and_maps() {
        let mut ast =
            tree(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#);
        let mut engine = DbtIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        engine.check_views_correct().unwrap();
        assert!(engine.find_one(&ast, 0).is_none());
        ast.validate().unwrap();
    }

    #[test]
    fn cascading_rewrite_exposes_parent_match() {
        let s = arith_schema();
        let mul_one = {
            let pattern = Pattern::compile(
                &s,
                p::node(
                    "Arith",
                    "M",
                    [
                        p::node("Const", "K", [], p::eq(p::attr("K", "val"), p::int(1))),
                        p::node("Var", "V", [], p::tru()),
                    ],
                    p::eq(p::attr("M", "op"), p::str_("*")),
                ),
            );
            RewriteRule::new("MulOne", &s, pattern, reuse("V"))
        };
        let add_zero_rule = rules().get(0).clone();
        let rules = Arc::new(RuleSet::from_rules(vec![add_zero_rule, mul_one]));
        let mut ast =
            tree(r#"(Arith op="+" (Const val=0) (Arith op="*" (Const val=1) (Var name="y")))"#);
        let mut engine = DbtIvm::new(rules, &ast);
        engine.rebuild(&ast);
        assert!(engine.find_one(&ast, 0).is_none());
        let site = engine.find_one(&ast, 1).unwrap();
        fire(&mut engine, &mut ast, 1, site);
        engine.check_views_correct().unwrap();
        let site = engine.find_one(&ast, 0).expect("parent became a match");
        fire(&mut engine, &mut ast, 0, site);
        engine.check_views_correct().unwrap();
        assert_eq!(
            tt_ast::sexpr::to_sexpr(&ast, ast.root()),
            r#"(Var name="y")"#
        );
    }

    #[test]
    fn self_join_pattern_counts_correctly() {
        let s = arith_schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Arith", "B", [p::any(), p::any()], p::tru()),
                    p::any(),
                ],
                p::tru(),
            ),
        );
        let rule = RewriteRule::new(
            "Nested",
            &s,
            pattern,
            treetoaster_core::generator::gen(
                "Const",
                [(
                    "val",
                    treetoaster_core::generator::aconst(tt_ast::Value::Int(0)),
                )],
                [],
            ),
        );
        let rules = Arc::new(RuleSet::from_rules(vec![rule]));
        let ast = tree(
            r#"(Arith op="*" (Arith op="+" (Arith op="*" (Const val=2) (Var name="y")) (Var name="x")) (Var name="z"))"#,
        );
        let mut engine = DbtIvm::new(rules, &ast);
        engine.rebuild(&ast);
        engine.check_views_correct().unwrap();
        assert_eq!(engine.queries[0].view.len(), 2);
    }

    #[test]
    fn batched_epoch_coalesces_and_commits_correctly() {
        let mut ast = tree(
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="a")) (Arith op="+" (Const val=0) (Var name="b")))"#,
        );
        let rules = rules();
        let mut engine = DbtIvm::new(rules.clone(), &ast);
        engine.rebuild(&ast);
        engine.begin_batch();
        for _ in 0..2 {
            let (site, _) =
                tt_pattern::find_first(&ast, ast.root(), &rules.get(0).pattern).unwrap();
            fire(&mut engine, &mut ast, 0, site);
        }
        engine.commit_batch();
        assert!(
            engine.log.coalesced() >= 2,
            "overlapping parent updates must cancel"
        );
        engine.check_consistent(&ast).unwrap();
        assert!(engine.find_one(&ast, 0).is_none());
        ast.validate().unwrap();
    }

    #[test]
    fn dbt_uses_more_memory_than_classic_shape() {
        // Not a strict benchmark, but the combinatorial materialization
        // must cost at least as much as the shadow db alone.
        let ast = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let mut engine = DbtIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        assert!(engine.memory_bytes() > engine.db.memory_bytes());
    }
}
