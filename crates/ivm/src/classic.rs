//! Classic cascading IVM (Ross et al. \[35\]; the evaluation's **Classic**,
//! i.e. DBToaster with `--depth=1`).
//!
//! For each pattern query, one left-deep join plan over the atoms in
//! pattern preorder, with **every prefix join materialized**: for the
//! running example `(Arith ⋈ Const) ⋈ Var`, both `P₁ = σ(Arith)` and
//! `P₂ = P₁ ⋈ Const` are kept, so a tuple inserted into `Var` only needs
//! the cheap join `P₂ ⋈ t` (Example 3.3). The flip side — the paper's
//! point — is that "updates are now (slightly) more expensive as multiple
//! views may need to be updated", and updates to relations *early* in the
//! plan cascade through every suffix level.
//!
//! Deltas arrive at node granularity. For a tuple whose label aliases
//! several atoms (self-joins such as `Project(Project(…))`), atoms are
//! processed ascending for deletions and descending for insertions; each
//! step then sees exactly the telescoped database state it needs
//! (`Q(R−t) − Q(R)` decomposed one occurrence at a time).

use crate::common::{self, ViewCore};
use std::sync::Arc;
use treetoaster_core::{EpochOps, MatchCore, ReplaceCtx, RuleId, RuleSet};
use tt_ast::{Ast, FxHashMap, NodeId, NodeRow};
use tt_pattern::{Bindings, SqlQuery, VarId};
use tt_relational::{Database, NodeDelta};

/// A materialized prefix join `P_i` (atoms `0..=i` of the plan).
#[derive(Debug, Default)]
struct PrefixTable {
    /// Partial row (full variable space, unbound = NULL) → (multiplicity,
    /// the join key the *next* atom must equal, or NULL if inextensible).
    rows: FxHashMap<Box<[NodeId]>, (i64, NodeId)>,
    /// next-join-key → rows, for `ΔP = P ⋈ t` probes.
    by_next_key: FxHashMap<NodeId, Vec<Box<[NodeId]>>>,
}

impl PrefixTable {
    fn add(&mut self, row: &[NodeId], next_key: NodeId, delta: i64) {
        let entry = self.rows.entry(row.into()).or_insert((0, next_key));
        let old_positive = entry.0 > 0;
        entry.0 += delta;
        let stored_key = entry.1;
        let new_positive = entry.0 > 0;
        if entry.0 == 0 {
            self.rows.remove(row);
        }
        match (old_positive, new_positive) {
            (false, true) if !stored_key.is_null() => {
                self.by_next_key
                    .entry(stored_key)
                    .or_default()
                    .push(row.into());
            }
            (true, false) if !stored_key.is_null() => {
                let bucket = self
                    .by_next_key
                    .get_mut(&stored_key)
                    .expect("indexed row missing bucket");
                let at = bucket
                    .iter()
                    .position(|r| r.as_ref() == row)
                    .expect("indexed row missing");
                bucket.swap_remove(at);
                if bucket.is_empty() {
                    self.by_next_key.remove(&stored_key);
                }
            }
            _ => {}
        }
    }

    fn probe(&self, key: NodeId) -> impl Iterator<Item = &Box<[NodeId]>> {
        self.by_next_key.get(&key).into_iter().flatten()
    }

    fn memory_bytes(&self) -> usize {
        let width = self.rows.keys().next().map_or(0, |k| k.len()) * std::mem::size_of::<NodeId>();
        self.rows.capacity() * (1 + std::mem::size_of::<(Box<[NodeId]>, (i64, NodeId))>() + width)
            + self
                .by_next_key
                .values()
                .map(|v| v.capacity() * (std::mem::size_of::<Box<[NodeId]>>() + width))
                .sum::<usize>()
    }
}

/// Per-pattern state: the plan, its filter schedule, the prefixes, and
/// the top view.
struct ClassicQuery {
    query: SqlQuery,
    /// For atom `i ≥ 1`: `(parent var, child index)` of its join edge.
    parent_edges: Vec<(VarId, usize)>,
    /// For level `i`: filter indices that first become evaluable there.
    filter_levels: Vec<Vec<usize>>,
    /// Prefixes `P_0 … P_{k−2}` (the last level is the view itself).
    prefixes: Vec<PrefixTable>,
    view: ViewCore,
}

impl ClassicQuery {
    fn new(query: SqlQuery) -> ClassicQuery {
        let k = query.width();
        let parent_edges: Vec<(VarId, usize)> = query.atoms[1..]
            .iter()
            .map(|atom| {
                let join = query
                    .joins
                    .iter()
                    .find(|j| j.child == atom.var)
                    .expect("non-root atom joins a parent");
                (join.parent, join.child_index)
            })
            .collect();
        // Schedule each filter at the earliest level where its variables
        // are all bound.
        let atom_vars: Vec<VarId> = query.atoms.iter().map(|a| a.var).collect();
        let mut filter_levels: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (fi, (_, constraint)) in query.filters.iter().enumerate() {
            let vars = common::filter_vars(constraint, &atom_vars);
            let level = vars
                .iter()
                .map(|v| {
                    atom_vars
                        .iter()
                        .position(|a| a == v)
                        .expect("filter var is an atom")
                })
                .max()
                .unwrap_or(0);
            filter_levels[level].push(fi);
        }
        let root_var = query.root_var();
        ClassicQuery {
            query,
            parent_edges,
            filter_levels,
            prefixes: (0..k.saturating_sub(1))
                .map(|_| PrefixTable::default())
                .collect(),
            view: ViewCore::new(root_var),
        }
    }

    /// Atom indices aliasing `label`.
    fn atoms_for(&self, label: tt_ast::Label) -> Vec<usize> {
        self.query
            .atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.label == label)
            .map(|(i, _)| i)
            .collect()
    }

    /// The join key the next atom after level `i` must equal, for `row`.
    fn next_key(&self, db: &Database, level: usize, row: &[NodeId]) -> NodeId {
        if level + 1 >= self.query.width() {
            return NodeId::NULL;
        }
        let (parent_var, child_index) = self.parent_edges[level];
        let parent_id = row[parent_var.0 as usize];
        let parent_label = self.query.atom(parent_var).label;
        let Some(parent_row) = db.table(parent_label).get(parent_id) else {
            return NodeId::NULL;
        };
        parent_row
            .children
            .get(child_index)
            .copied()
            .unwrap_or(NodeId::NULL)
    }

    /// Applies a delta row at `level`, updating the prefix (or the view
    /// at the last level).
    fn apply_level(&mut self, db: &Database, level: usize, row: &[NodeId], sign: i64) {
        if level + 1 == self.query.width() {
            self.view.add(row, sign);
        } else {
            let key = self.next_key(db, level, row);
            self.prefixes[level].add(row, key, sign);
        }
    }

    /// Processes one tuple delta arriving at atom `j`.
    fn process(&mut self, db: &Database, t: &NodeRow, j: usize, sign: i64) {
        let k = self.query.width();
        if !common::arity_ok(&self.query, j, t) {
            return;
        }
        let var_j = self.query.atoms[j].var.0 as usize;
        // Level-j delta rows.
        let mut delta: Vec<Box<[NodeId]>> = Vec::new();
        if j == 0 {
            let mut row = vec![NodeId::NULL; self.query.var_space];
            row[var_j] = t.id;
            if common::eval_filters(db, &self.query, &row, &self.filter_levels[0]) {
                delta.push(row.into_boxed_slice());
            }
        } else {
            // ΔP_j = P_{j−1} ⋈ t (Example 3.3's cheap join).
            let candidates: Vec<Box<[NodeId]>> =
                self.prefixes[j - 1].probe(t.id).cloned().collect();
            for base in candidates {
                let mut row = base.to_vec();
                row[var_j] = t.id;
                if common::eval_filters(db, &self.query, &row, &self.filter_levels[j]) {
                    delta.push(row.into_boxed_slice());
                }
            }
        }
        for row in &delta {
            self.apply_level(db, j, row, sign);
        }
        // Cascade through the suffix levels.
        let mut frontier = delta;
        for i in (j + 1)..k {
            let atom = &self.query.atoms[i];
            let var_i = atom.var.0 as usize;
            let (parent_var, child_index) = self.parent_edges[i - 1];
            let parent_label = self.query.atom(parent_var).label;
            let mut next = Vec::with_capacity(frontier.len());
            for base in &frontier {
                let parent_id = base[parent_var.0 as usize];
                let Some(parent_row) = db.table(parent_label).get(parent_id) else {
                    continue;
                };
                let Some(&child_id) = parent_row.children.get(child_index) else {
                    continue;
                };
                let Some(child_row) = db.table(atom.label).get(child_id) else {
                    continue;
                };
                if !common::arity_ok(&self.query, i, child_row) {
                    continue;
                }
                let mut row = base.to_vec();
                row[var_i] = child_id;
                if common::eval_filters(db, &self.query, &row, &self.filter_levels[i]) {
                    next.push(row.into_boxed_slice());
                }
            }
            for row in &next {
                self.apply_level(db, i, row, sign);
            }
            frontier = next;
        }
    }

    fn clear(&mut self) {
        for p in &mut self.prefixes {
            p.rows.clear();
            p.by_next_key.clear();
        }
        self.view.clear();
    }

    fn memory_bytes(&self) -> usize {
        self.prefixes
            .iter()
            .map(PrefixTable::memory_bytes)
            .sum::<usize>()
            + self.view.memory_bytes()
    }
}

/// The **Classic** bolt-on strategy.
pub struct ClassicIvm {
    rules: Arc<RuleSet>,
    db: Database,
    queries: Vec<ClassicQuery>,
    /// Epoch-scoped coalescing of the node event stream. Bolt-ons can
    /// only answer `find_one` from reconciled state, so reads inside an
    /// open epoch flush the log first (coalescing whatever accumulated
    /// since the last read) — the asymmetry §3.2 predicts.
    log: crate::batch::DeltaLog,
    /// Net delta stream of an epoch sealed by `submit_commit`, awaiting
    /// its background committer. Replay order within the vec is the
    /// order `take_pending` emitted (removals before insertions per
    /// epoch), and a second sealed epoch appends after the first, so a
    /// sequential replay is always equivalent to the synchronous path.
    sealed: Vec<NodeDelta>,
}

impl ClassicIvm {
    /// Builds the strategy; call [`MatchCore::rebuild`] after loading.
    pub fn new(rules: Arc<RuleSet>, ast: &Ast) -> ClassicIvm {
        let queries: Vec<ClassicQuery> = rules
            .iter()
            .map(|(_, r)| ClassicQuery::new(SqlQuery::from_pattern(&r.pattern)))
            .collect();
        let db = Self::fresh_db(ast, &queries);
        ClassicIvm {
            rules,
            db,
            queries,
            log: crate::batch::DeltaLog::new(),
            sealed: Vec::new(),
        }
    }

    /// A projected shadow database: unnecessary fields projected away
    /// (§3.2), keeping only attributes the patterns' constraints read.
    fn fresh_db(ast: &Ast, queries: &[ClassicQuery]) -> Database {
        let refs: Vec<&SqlQuery> = queries.iter().map(|q| &q.query).collect();
        let projection = tt_relational::Projection::for_queries(ast.schema(), &refs);
        Database::with_projection(ast.schema().clone(), projection)
    }

    /// Sequentially applies one node-granularity delta: deletions probe
    /// then remove from the shadow copy; insertions add then probe.
    fn apply_delta(&mut self, delta: &NodeDelta) {
        match delta {
            NodeDelta::Remove(label, row) => {
                for q in &mut self.queries {
                    for j in q.atoms_for(*label) {
                        q.process(&self.db, row, j, -1);
                    }
                }
                self.db.remove(*label, row.id);
            }
            NodeDelta::Insert(label, row) => {
                self.db.insert(*label, row.clone());
                for q in &mut self.queries {
                    for j in q.atoms_for(*label).into_iter().rev() {
                        q.process(&self.db, row, j, 1);
                    }
                }
            }
        }
    }

    /// Replays everything staged in the open epoch through the normal
    /// sequential path — net deltas only, opposing pairs already gone.
    /// A sealed epoch awaiting its committer replays first (the owning
    /// session may apply it early; the committer's later `apply_submitted`
    /// then finds the slot empty), preserving epoch order.
    fn flush_pending(&mut self) {
        self.apply_submitted();
        for delta in self.log.take_pending() {
            self.apply_delta(&delta);
        }
    }

    /// Test oracle: the top view of each pattern must equal a from-scratch
    /// evaluation over the shadow database.
    pub fn check_views_correct(&self) -> Result<(), String> {
        for (id, q) in self.queries.iter().enumerate() {
            let expected = tt_relational::evaluate(&self.db, &q.query);
            if expected.len() != q.view.len() {
                return Err(format!(
                    "classic view {} has {} rows, expected {}",
                    id,
                    q.view.len(),
                    expected.len()
                ));
            }
            for row in &expected {
                let found = q
                    .view
                    .iter()
                    .any(|(r, c)| r.as_ref() == row.as_ref() && c == 1);
                if !found {
                    return Err(format!("classic view {id} missing row {row:?}"));
                }
            }
        }
        Ok(())
    }

    /// The rule set this engine serves.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }
}

impl MatchCore for ClassicIvm {
    fn name(&self) -> &'static str {
        "Classic"
    }

    fn rebuild(&mut self, ast: &Ast) {
        self.db = Self::fresh_db(ast, &self.queries);
        for q in &mut self.queries {
            q.clear();
        }
        self.log.clear();
        self.sealed.clear();
        if ast.root().is_null() {
            return;
        }
        // Replay every node as an insertion through the incremental path.
        for n in ast.descendants(ast.root()) {
            let label = ast.label(n);
            let row = NodeRow::of(ast, n);
            self.apply_delta(&NodeDelta::Insert(label, row));
        }
    }

    fn find_one(&mut self, _ast: &Ast, rule: RuleId) -> Option<NodeId> {
        self.flush_pending();
        self.queries[rule].view.any_root()
    }

    fn before_replace(&mut self, _: &Ast, _: NodeId, _: Option<(RuleId, &Bindings)>) {
        // Node-granularity engines act purely on the post event stream.
    }

    fn after_replace(&mut self, ast: &Ast, ctx: &ReplaceCtx<'_>) {
        if !self.log.is_open() {
            // Out-of-epoch events apply directly, so a sealed epoch
            // still awaiting its committer must replay first to keep
            // the event stream in submission order.
            self.apply_submitted();
        }
        for delta in common::deltas_of_ctx(ast, ctx) {
            if let Some(delta) = self.log.absorb(delta) {
                self.apply_delta(&delta);
            }
        }
    }

    fn on_graft(&mut self, ast: &Ast, created: &[NodeId]) {
        if !self.log.is_open() {
            // Same ordering rule as `after_replace`.
            self.apply_submitted();
        }
        for &n in created {
            let delta = NodeDelta::Insert(ast.label(n), NodeRow::of(ast, n));
            if let Some(delta) = self.log.absorb(delta) {
                self.apply_delta(&delta);
            }
        }
    }

    fn check_consistent(&self, ast: &Ast) -> Result<(), String> {
        if !self.log.is_empty() {
            return Err("classic engine has staged deltas in an open batch".into());
        }
        if !self.sealed.is_empty() {
            return Err("classic engine has a sealed epoch awaiting its committer".into());
        }
        common::check_shadow_db(&self.db, ast)?;
        self.check_views_correct()
    }

    fn memory_bytes(&self) -> usize {
        // Shadow copy + prefixes + views + staged deltas: the §3.2
        // overhead story.
        self.db.memory_bytes()
            + self
                .queries
                .iter()
                .map(ClassicQuery::memory_bytes)
                .sum::<usize>()
            + self.log.memory_bytes()
            + self.sealed.capacity() * std::mem::size_of::<NodeDelta>()
            + self
                .sealed
                .iter()
                .map(|d| d.row().heap_bytes())
                .sum::<usize>()
    }

    fn match_heat(&self) -> usize {
        // Materialized match-view sizes; the unflushed delta log and any
        // sealed-but-unapplied epoch are work the views haven't absorbed
        // yet, so they count as heat too.
        self.queries.iter().map(|q| q.view.len()).sum::<usize>()
            + self.log.len()
            + self.sealed.len()
    }
}

impl EpochOps for ClassicIvm {
    fn begin_batch(&mut self) {
        self.log.begin();
    }

    fn commit_batch(&mut self) {
        self.flush_pending();
        self.log.end();
    }

    fn submit_commit(&mut self) -> bool {
        // Appending preserves replay order even when the previous sealed
        // epoch is still in flight: the committer drains the whole vec
        // sequentially, which is exactly the synchronous apply order.
        let pending = self.log.take_pending();
        self.log.end();
        if pending.is_empty() {
            return false;
        }
        self.sealed.extend(pending);
        true
    }

    fn apply_submitted(&mut self) -> bool {
        if self.sealed.is_empty() {
            return false;
        }
        let sealed = std::mem::take(&mut self.sealed);
        for delta in &sealed {
            self.apply_delta(delta);
        }
        true
    }

    fn has_submitted(&self) -> bool {
        !self.sealed.is_empty()
    }

    fn batch_cancellation(&self) -> Option<(u64, u64)> {
        Some(self.log.epoch_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treetoaster_core::generator::reuse;
    use treetoaster_core::{RewriteRule, RuleFired};
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    fn rules() -> Arc<RuleSet> {
        let s = arith_schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                    p::node("Var", "C", [], p::tru()),
                ],
                p::eq(p::attr("A", "op"), p::str_("+")),
            ),
        );
        Arc::new(RuleSet::from_rules(vec![RewriteRule::new(
            "AddZero",
            &s,
            pattern,
            reuse("C"),
        )]))
    }

    fn tree(text: &str) -> Ast {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        ast
    }

    fn fire(engine: &mut ClassicIvm, ast: &mut Ast, rid: usize, site: NodeId) {
        let rules = engine.rules().clone();
        let rule = rules.get(rid);
        let bindings = match_node(ast, site, &rule.pattern).unwrap();
        engine.before_replace(ast, site, Some((rid, &bindings)));
        let applied = rule.apply(ast, site, &bindings, 0);
        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule: rid,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        engine.after_replace(ast, &ctx);
    }

    #[test]
    fn rebuild_materializes_view_and_prefixes() {
        let ast = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let mut engine = ClassicIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        engine.check_views_correct().unwrap();
        assert_eq!(engine.queries[0].view.len(), 1);
        // Prefix P0 (σ Arith with op=+) and P1 (⋈ Const val=0) exist.
        assert_eq!(engine.queries[0].prefixes.len(), 2);
        assert_eq!(engine.queries[0].prefixes[0].rows.len(), 1);
        assert_eq!(engine.queries[0].prefixes[1].rows.len(), 1);
    }

    #[test]
    fn filters_prune_prefixes() {
        // op="*" fails the level-0 filter: nothing materializes.
        let ast = tree(r#"(Arith op="*" (Const val=0) (Var name="b"))"#);
        let mut engine = ClassicIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        assert!(engine.queries[0].view.is_empty());
        assert!(engine.queries[0].prefixes[0].rows.is_empty());
        engine.check_views_correct().unwrap();
    }

    #[test]
    fn rewrite_drains_view() {
        let mut ast =
            tree(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#);
        let mut engine = ClassicIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        engine.check_views_correct().unwrap();
        assert!(engine.find_one(&ast, 0).is_none());
        // Shadow copy tracks the new tree size (3 nodes).
        assert_eq!(engine.db.len(), 3);
        ast.validate().unwrap();
    }

    #[test]
    fn cascading_rewrite_exposes_parent_match() {
        let s = arith_schema();
        let mul_one = {
            let pattern = Pattern::compile(
                &s,
                p::node(
                    "Arith",
                    "M",
                    [
                        p::node("Const", "K", [], p::eq(p::attr("K", "val"), p::int(1))),
                        p::node("Var", "V", [], p::tru()),
                    ],
                    p::eq(p::attr("M", "op"), p::str_("*")),
                ),
            );
            RewriteRule::new("MulOne", &s, pattern, reuse("V"))
        };
        let add_zero = {
            let pattern = Pattern::compile(
                &s,
                p::node(
                    "Arith",
                    "A",
                    [
                        p::node("Const", "B", [], p::eq(p::attr("B", "val"), p::int(0))),
                        p::node("Var", "C", [], p::tru()),
                    ],
                    p::eq(p::attr("A", "op"), p::str_("+")),
                ),
            );
            RewriteRule::new("AddZero", &s, pattern, reuse("C"))
        };
        let rules = Arc::new(RuleSet::from_rules(vec![add_zero, mul_one]));
        let mut ast =
            tree(r#"(Arith op="+" (Const val=0) (Arith op="*" (Const val=1) (Var name="y")))"#);
        let mut engine = ClassicIvm::new(rules, &ast);
        engine.rebuild(&ast);
        assert!(engine.find_one(&ast, 0).is_none());
        let site = engine.find_one(&ast, 1).unwrap();
        fire(&mut engine, &mut ast, 1, site);
        engine.check_views_correct().unwrap();
        assert!(
            engine.find_one(&ast, 0).is_some(),
            "parent became an AddZero site"
        );
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        engine.check_views_correct().unwrap();
        assert_eq!(
            tt_ast::sexpr::to_sexpr(&ast, ast.root()),
            r#"(Var name="y")"#
        );
    }

    #[test]
    fn self_join_pattern_counts_correctly() {
        // Pattern with repeated label: Arith over (Arith, Any).
        let s = arith_schema();
        let pattern = Pattern::compile(
            &s,
            p::node(
                "Arith",
                "A",
                [
                    p::node("Arith", "B", [p::any(), p::any()], p::tru()),
                    p::any(),
                ],
                p::tru(),
            ),
        );
        let rule = RewriteRule::new(
            "Nested",
            &s,
            pattern,
            treetoaster_core::generator::gen(
                "Const",
                [(
                    "val",
                    treetoaster_core::generator::aconst(tt_ast::Value::Int(0)),
                )],
                [],
            ),
        );
        let rules = Arc::new(RuleSet::from_rules(vec![rule]));
        // ((2*y)+x)*z shape: Arith(Arith(Arith(c,v),v),v) — two nested sites.
        let ast = tree(
            r#"(Arith op="*" (Arith op="+" (Arith op="*" (Const val=2) (Var name="y")) (Var name="x")) (Var name="z"))"#,
        );
        let mut engine = ClassicIvm::new(rules, &ast);
        engine.rebuild(&ast);
        engine.check_views_correct().unwrap();
        assert_eq!(engine.queries[0].view.len(), 2);
    }

    #[test]
    fn batched_epoch_coalesces_and_commits_correctly() {
        // Two AddZero sites under one parent, fired inside one epoch.
        // Sites are located with the naive matcher so the engine's log is
        // never flushed mid-epoch; the two parent-image updates must
        // telescope in the log before commit replays the net stream.
        let mut ast = tree(
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="a")) (Arith op="+" (Const val=0) (Var name="b")))"#,
        );
        let rules = rules();
        let mut engine = ClassicIvm::new(rules.clone(), &ast);
        engine.rebuild(&ast);
        engine.begin_batch();
        for _ in 0..2 {
            let (site, _) =
                tt_pattern::find_first(&ast, ast.root(), &rules.get(0).pattern).unwrap();
            fire(&mut engine, &mut ast, 0, site);
        }
        assert!(engine.log.staged() > 0);
        engine.commit_batch();
        assert!(
            engine.log.coalesced() >= 2,
            "overlapping parent updates must cancel"
        );
        engine.check_consistent(&ast).unwrap();
        assert!(engine.find_one(&ast, 0).is_none());
        ast.validate().unwrap();
    }

    #[test]
    fn mid_epoch_find_reconciles_on_read() {
        let mut ast =
            tree(r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="b")) (Var name="x"))"#);
        let mut engine = ClassicIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        engine.begin_batch();
        let site = engine.find_one(&ast, 0).unwrap();
        fire(&mut engine, &mut ast, 0, site);
        // The bolt-on cannot overlay: the read flushes the pending log.
        assert!(engine.find_one(&ast, 0).is_none());
        engine.commit_batch();
        engine.check_consistent(&ast).unwrap();
    }

    #[test]
    fn memory_includes_shadow_copy() {
        let ast = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let mut engine = ClassicIvm::new(rules(), &ast);
        engine.rebuild(&ast);
        assert!(engine.memory_bytes() > 0);
        assert!(engine.memory_bytes() >= engine.db.memory_bytes());
    }
}
