//! Batched delta coalescing for the bolt-on engines.
//!
//! The bolt-ons consume a flat node-granularity insert/delete stream
//! (§3.2). Across a rewrite burst that stream is massively redundant: a
//! node born by rewrite `i` and destroyed by rewrite `j` in the same
//! epoch contributes two events whose maintenance work — cascades through
//! prefix tables, probes of every materialized subset — cancels exactly.
//! The [`DeltaLog`] compacts the stream per `(label, node)` key with a
//! small state machine, so only *net* effects ever reach the engine:
//!
//! | staged history                  | net emission                  |
//! |---------------------------------|-------------------------------|
//! | insert                          | insert                        |
//! | remove                          | remove                        |
//! | insert, remove                  | — (annihilated)               |
//! | remove, insert (same image)     | — (tuple unchanged)           |
//! | remove, insert (new image)      | remove old, insert new        |
//!
//! Emission replays all surviving removals before all surviving
//! insertions (the same shape `deltas_of_ctx` gives a single rewrite),
//! so the engine's telescoped remove-probe/insert-probe discipline is
//! preserved verbatim.

use tt_ast::{Label, NodeId, NodeLabelMap, NodeRow};
use tt_relational::NodeDelta;

/// Per-key compaction state. Pre-batch presence is implied by the
/// variant: `Removed`/`Replaced`/`Unchanged` keys existed before the
/// epoch, `Inserted`/`Canceled` keys did not.
#[derive(Debug, Clone)]
enum Pending {
    /// Born in this epoch with this (latest) image.
    Inserted(NodeRow),
    /// Pre-existing; destroyed in this epoch. Carries the pre-batch image.
    Removed(NodeRow),
    /// Pre-existing; image changed in this epoch.
    Replaced { removed: NodeRow, inserted: NodeRow },
    /// Born and destroyed within the epoch — nothing to emit.
    Canceled,
    /// Removed and re-inserted with the identical image — nothing to emit.
    Unchanged,
}

/// An epoch-scoped, self-cancelling buffer of [`NodeDelta`]s.
///
/// Compaction state is keyed densely by node (`tt_ast::dense::NodeLabelMap`),
/// so the per-event hot path — one lookup plus one store per AST
/// mutation — does no hashing, and the pages persist across epochs.
#[derive(Debug, Default)]
pub struct DeltaLog {
    open: bool,
    keys: NodeLabelMap<Pending>,
    /// First-touch order, for deterministic emission.
    order: Vec<(Label, NodeId)>,
    /// Events pushed over the log's lifetime.
    staged: u64,
    /// Events actually emitted (≤ staged; the gap is coalesced work).
    emitted: u64,
    /// `(staged, emitted)` snapshot taken when the current epoch opened,
    /// so per-epoch coalescing rates can be read without resetting the
    /// lifetime counters.
    epoch_mark: (u64, u64),
}

impl DeltaLog {
    /// An empty, closed log.
    pub fn new() -> DeltaLog {
        DeltaLog::default()
    }

    /// Opens an epoch (idempotent: reopening an open epoch does not move
    /// the epoch mark).
    pub fn begin(&mut self) {
        if !self.open {
            self.epoch_mark = (self.staged, self.emitted);
        }
        self.open = true;
    }

    /// Closes the epoch. The caller is expected to [`take_pending`] (and
    /// apply) first; any staged state left is discarded deliberately only
    /// by [`clear`].
    ///
    /// [`take_pending`]: DeltaLog::take_pending
    /// [`clear`]: DeltaLog::clear
    pub fn end(&mut self) {
        debug_assert!(self.keys.is_empty(), "ending an epoch with staged deltas");
        self.open = false;
    }

    /// True while an epoch is open (events should be pushed, not applied).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys currently staged (net pending effects awaiting a flush).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Events pushed over the log's lifetime.
    pub fn staged(&self) -> u64 {
        self.staged
    }

    /// Events that cancelled instead of being emitted.
    pub fn coalesced(&self) -> u64 {
        self.staged - self.emitted
    }

    /// `(staged, coalesced)` counters of the open — or, after `end`, the
    /// most recently opened — epoch. Coalesced counts are only final
    /// once the epoch's pending state has been taken; mid-epoch the
    /// still-staged keys count as coalesced-so-far.
    pub fn epoch_stats(&self) -> (u64, u64) {
        let staged = self.staged - self.epoch_mark.0;
        let emitted = self.emitted - self.epoch_mark.1;
        (staged, staged - emitted)
    }

    /// Discards all staged state (used on `rebuild`, which supersedes
    /// it). Drains rather than stamp-clearing: the staged `Pending`
    /// images own row heap, and parking them in stale pages would keep
    /// that heap allocated while `memory_bytes` (which only sees the
    /// current generation) stops reporting it.
    pub fn clear(&mut self) {
        self.keys.drain().for_each(drop);
        self.order.clear();
    }

    /// Routes one event: staged (and compacted) when an epoch is open,
    /// handed back for immediate application otherwise. Keeps the
    /// open/closed branching out of every engine notification method.
    #[must_use]
    pub fn absorb(&mut self, delta: NodeDelta) -> Option<NodeDelta> {
        if self.open {
            self.push(delta);
            None
        } else {
            Some(delta)
        }
    }

    /// Stages one event, compacting against this key's history.
    pub fn push(&mut self, delta: NodeDelta) {
        self.staged += 1;
        let key = (delta.label(), delta.row().id);
        let prior = self.keys.remove(key.0, key.1);
        if prior.is_none() {
            self.order.push(key);
        }
        let next = match (prior, delta) {
            (None, NodeDelta::Insert(_, row)) => Pending::Inserted(row),
            (None, NodeDelta::Remove(_, row)) => Pending::Removed(row),
            // Born in-epoch, now removed (or about to be re-imaged):
            // the original insert never needs to happen.
            (Some(Pending::Inserted(_)), NodeDelta::Remove(_, _)) => Pending::Canceled,
            (Some(Pending::Canceled), NodeDelta::Insert(_, row)) => Pending::Inserted(row),
            // Pre-existing tuple re-inserted: identical image coalesces
            // to nothing, a new image becomes a net replace.
            (Some(Pending::Removed(removed)), NodeDelta::Insert(_, inserted)) => {
                if removed == inserted {
                    Pending::Unchanged
                } else {
                    Pending::Replaced { removed, inserted }
                }
            }
            (Some(Pending::Replaced { removed, .. }), NodeDelta::Remove(_, _)) => {
                Pending::Removed(removed)
            }
            (Some(Pending::Unchanged), NodeDelta::Remove(_, row)) => Pending::Removed(row),
            (prior, delta) => panic!(
                "delta stream violated insert/remove alternation for {key:?}: \
                 {prior:?} then {delta:?}"
            ),
        };
        self.keys.insert(key.0, key.1, next);
    }

    /// Drains the log into the net event stream: every surviving removal
    /// (pre-batch images), then every surviving insertion (final images).
    /// The epoch stays open; staged state resets.
    pub fn take_pending(&mut self) -> Vec<NodeDelta> {
        if self.keys.is_empty() {
            return Vec::new();
        }
        let mut removes = Vec::new();
        let mut inserts = Vec::new();
        for key in self.order.drain(..) {
            match self.keys.remove(key.0, key.1).expect("ordered key present") {
                Pending::Inserted(row) => inserts.push(NodeDelta::Insert(key.0, row)),
                Pending::Removed(row) => removes.push(NodeDelta::Remove(key.0, row)),
                Pending::Replaced { removed, inserted } => {
                    removes.push(NodeDelta::Remove(key.0, removed));
                    inserts.push(NodeDelta::Insert(key.0, inserted));
                }
                Pending::Canceled | Pending::Unchanged => {}
            }
        }
        self.emitted += (removes.len() + inserts.len()) as u64;
        removes.extend(inserts);
        removes
    }

    /// Approximate heap bytes of the staged state (allocated pages are
    /// charged in full).
    pub fn memory_bytes(&self) -> usize {
        self.keys.memory_bytes()
            + self
                .keys
                .iter()
                .map(|(_, p)| match p {
                    Pending::Inserted(r) | Pending::Removed(r) => r.heap_bytes(),
                    Pending::Replaced { removed, inserted } => {
                        removed.heap_bytes() + inserted.heap_bytes()
                    }
                    Pending::Canceled | Pending::Unchanged => 0,
                })
                .sum::<usize>()
            + self.order.capacity() * std::mem::size_of::<(Label, NodeId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u32, child: Option<u32>) -> NodeRow {
        NodeRow {
            id: NodeId::from_index(id),
            attrs: Vec::new(),
            children: child.map(NodeId::from_index).into_iter().collect(),
        }
    }

    fn label(i: u16) -> Label {
        Label(i)
    }

    #[test]
    fn insert_then_remove_annihilates() {
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Insert(label(0), row(1, None)));
        log.push(NodeDelta::Remove(label(0), row(1, None)));
        assert!(log.take_pending().is_empty());
        assert_eq!(log.staged(), 2);
        assert_eq!(log.coalesced(), 2);
        log.end();
    }

    #[test]
    fn remove_then_identical_reinsert_is_unchanged() {
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Remove(label(2), row(7, Some(3))));
        log.push(NodeDelta::Insert(label(2), row(7, Some(3))));
        assert!(log.take_pending().is_empty());
        assert_eq!(log.coalesced(), 2);
    }

    #[test]
    fn overlapping_parent_updates_telescope() {
        // Image A→B then B→C on the same parent node: only A→C survives.
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Remove(label(1), row(5, Some(10))));
        log.push(NodeDelta::Insert(label(1), row(5, Some(11))));
        log.push(NodeDelta::Remove(label(1), row(5, Some(11))));
        log.push(NodeDelta::Insert(label(1), row(5, Some(12))));
        let out = log.take_pending();
        assert_eq!(out.len(), 2);
        assert!(
            matches!(&out[0], NodeDelta::Remove(_, r) if r.children == [NodeId::from_index(10)])
        );
        assert!(
            matches!(&out[1], NodeDelta::Insert(_, r) if r.children == [NodeId::from_index(12)])
        );
        assert_eq!(log.staged(), 4);
        assert_eq!(log.coalesced(), 2);
    }

    #[test]
    fn id_reuse_across_labels_emits_both_sides() {
        // Node freed under one label, arena slot reused under another.
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Remove(label(0), row(4, None)));
        log.push(NodeDelta::Insert(label(3), row(4, None)));
        let out = log.take_pending();
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], NodeDelta::Remove(l, _) if *l == label(0)));
        assert!(matches!(&out[1], NodeDelta::Insert(l, _) if *l == label(3)));
    }

    #[test]
    fn removals_emit_before_insertions() {
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Insert(label(0), row(1, None)));
        log.push(NodeDelta::Remove(label(0), row(2, None)));
        let out = log.take_pending();
        assert!(matches!(&out[0], NodeDelta::Remove(_, _)));
        assert!(matches!(&out[1], NodeDelta::Insert(_, _)));
    }

    #[test]
    fn born_died_reborn_keeps_last_image() {
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Insert(label(0), row(9, Some(1))));
        log.push(NodeDelta::Remove(label(0), row(9, Some(1))));
        log.push(NodeDelta::Insert(label(0), row(9, Some(2))));
        let out = log.take_pending();
        assert_eq!(out.len(), 1);
        assert!(
            matches!(&out[0], NodeDelta::Insert(_, r) if r.children == [NodeId::from_index(2)])
        );
    }

    #[test]
    fn take_pending_resets_for_next_chunk() {
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Insert(label(0), row(1, None)));
        assert_eq!(log.take_pending().len(), 1);
        assert!(log.is_empty());
        assert!(log.is_open());
        log.push(NodeDelta::Insert(label(0), row(2, None)));
        assert_eq!(log.take_pending().len(), 1);
        log.end();
        assert!(!log.is_open());
    }

    #[test]
    #[should_panic(expected = "alternation")]
    fn double_insert_is_a_protocol_violation() {
        let mut log = DeltaLog::new();
        log.begin();
        log.push(NodeDelta::Insert(label(0), row(1, None)));
        log.push(NodeDelta::Insert(label(0), row(1, None)));
    }
}
