//! Shared plumbing for the bolt-on engines.

use treetoaster_core::{MatchView, ReplaceCtx};
use tt_ast::{Ast, NodeId, NodeRow};
use tt_pattern::{AttrSource, Constraint, SqlQuery, VarId};
use tt_relational::{Database, NodeDelta, RowAttrs};

/// Translates a structural replace notification into the flat
/// node-granularity event stream a bolt-on engine understands: all
/// removals first (including the parent's old image — a child-pointer
/// update is a delete + insert at this granularity), then all insertions.
pub fn deltas_of_ctx(ast: &Ast, ctx: &ReplaceCtx<'_>) -> Vec<NodeDelta> {
    let mut out = Vec::with_capacity(ctx.removed.len() + ctx.inserted.len() + 2);
    for (label, row) in ctx.removed {
        out.push(NodeDelta::Remove(*label, row.clone()));
    }
    if let Some((label, old_row, _)) = ctx.parent_update {
        out.push(NodeDelta::Remove(*label, old_row.clone()));
    }
    for &n in ctx.inserted {
        out.push(NodeDelta::Insert(ast.label(n), NodeRow::of(ast, n)));
    }
    if let Some((label, _, new_row)) = ctx.parent_update {
        out.push(NodeDelta::Insert(*label, new_row.clone()));
    }
    out
}

/// Test oracle: the shadow database must mirror the live AST node for
/// node — same ids, labels, and child pointers (attributes may be
/// projected away, so they are not compared).
pub fn check_shadow_db(db: &Database, ast: &Ast) -> Result<(), String> {
    let root = ast.root();
    let live = if root.is_null() {
        0
    } else {
        ast.descendants(root).count()
    };
    if db.len() != live {
        return Err(format!(
            "shadow db has {} rows, tree has {live} nodes",
            db.len()
        ));
    }
    if root.is_null() {
        return Ok(());
    }
    for n in ast.descendants(root) {
        let Some(row) = db.table(ast.label(n)).get(n) else {
            return Err(format!("shadow db missing node {n:?}"));
        };
        if row.children != ast.children(n) {
            return Err(format!("shadow db stale children for {n:?}"));
        }
    }
    Ok(())
}

/// The materialized top view of one pattern: full join rows with
/// multiplicities, plus a [`MatchView`] over match roots for the O(1)
/// `find_one` the host compiler calls.
#[derive(Debug, Default)]
pub struct ViewCore {
    /// Join rows (full variable space, wildcards NULL) → multiplicity.
    rows: tt_ast::FxHashMap<Box<[NodeId]>, i64>,
    /// Root atoms of positive rows.
    roots: MatchView,
    root_var: usize,
}

impl ViewCore {
    /// Creates an empty view for a query rooted at `root_var`.
    pub fn new(root_var: VarId) -> ViewCore {
        ViewCore {
            root_var: root_var.0 as usize,
            ..Default::default()
        }
    }

    /// Applies one row delta.
    pub fn add(&mut self, row: &[NodeId], delta: i64) {
        if delta == 0 {
            return;
        }
        let entry = self.rows.entry(row.into()).or_insert(0);
        let old_positive = *entry > 0;
        *entry += delta;
        let new_positive = *entry > 0;
        if *entry == 0 {
            self.rows.remove(row);
        }
        match (old_positive, new_positive) {
            (false, true) => self.roots.add(row[self.root_var], 1),
            (true, false) => self.roots.add(row[self.root_var], -1),
            _ => {}
        }
    }

    /// An arbitrary current match root.
    pub fn any_root(&self) -> Option<NodeId> {
        self.roots.any()
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows are materialized.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates `(row, multiplicity)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Box<[NodeId]>, i64)> {
        self.rows.iter().map(|(r, &c)| (r, c))
    }

    /// Clears all state.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.roots.clear();
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        let row_width =
            std::mem::size_of::<NodeId>() * self.rows.keys().next().map_or(0, |k| k.len());
        self.rows.capacity() * (1 + std::mem::size_of::<(Box<[NodeId]>, i64)>() + row_width)
            + self.roots.memory_bytes()
    }
}

/// Filter scheduling: the earliest point at which each `θ` fragment can be
/// evaluated. `vars` are the filter's referenced variables; host-predicate
/// fragments report "needs everything".
pub fn filter_vars(constraint: &Constraint, all_atoms: &[VarId]) -> Vec<VarId> {
    if constraint.has_host_pred() {
        return all_atoms.to_vec();
    }
    let mut vars = Vec::new();
    constraint.vars(&mut vars);
    vars.sort_unstable();
    vars.dedup();
    vars
}

/// Evaluates the filters listed by `indices` on a (partial) row.
pub fn eval_filters(db: &Database, query: &SqlQuery, row: &[NodeId], indices: &[usize]) -> bool {
    let src = RowAttrs { db, query, row };
    indices.iter().all(|&i| query.filters[i].1.eval(&src))
}

/// Evaluates a single-row arity test for `atom_index`.
pub fn arity_ok(query: &SqlQuery, atom_index: usize, row: &NodeRow) -> bool {
    row.children.len() == query.atoms[atom_index].arity
}

/// Evaluates one filter constraint directly against a standalone tuple
/// (used for single-atom checks before the tuple is in any map). The
/// `AttrSource` resolves every variable to this row.
pub struct SingleRowAttrs<'a> {
    /// The query (for attribute index lookup).
    pub query: &'a SqlQuery,
    /// The database schema holder.
    pub db: &'a Database,
    /// The variable this tuple is bound to.
    pub var: VarId,
    /// The tuple.
    pub row: &'a NodeRow,
}

impl AttrSource for SingleRowAttrs<'_> {
    fn attr_of(&self, var: VarId, attr: tt_ast::AttrName) -> tt_ast::Value {
        assert_eq!(
            var, self.var,
            "single-row filter referenced another variable"
        );
        let label = self.query.atom(var).label;
        let idx = self
            .db
            .schema()
            .attr_index(label, attr)
            .expect("filter attribute not on label");
        self.row.attrs[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn viewcore_add_remove_roundtrip() {
        let mut v = ViewCore::new(VarId(0));
        let row: Vec<NodeId> = vec![nid(1), nid(2)];
        v.add(&row, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v.any_root(), Some(nid(1)));
        v.add(&row, -1);
        assert!(v.is_empty());
        assert_eq!(v.any_root(), None);
    }

    #[test]
    fn viewcore_multiplicity_transients() {
        let mut v = ViewCore::new(VarId(0));
        let row: Vec<NodeId> = vec![nid(1)];
        v.add(&row, -1);
        assert_eq!(v.any_root(), None, "negative rows are not visible");
        v.add(&row, 2);
        assert_eq!(v.any_root(), Some(nid(1)));
        v.add(&row, -1);
        assert_eq!(v.any_root(), None);
        assert!(v.is_empty());
    }

    #[test]
    fn viewcore_root_var_respected() {
        let mut v = ViewCore::new(VarId(1));
        let row: Vec<NodeId> = vec![nid(9), nid(7)];
        v.add(&row, 1);
        assert_eq!(v.any_root(), Some(nid(7)));
    }

    #[test]
    fn distinct_rows_same_root_counted() {
        // Two different rows with the same root (possible transiently):
        // the root stays visible until both are gone.
        let mut v = ViewCore::new(VarId(0));
        v.add(&[nid(1), nid(2)], 1);
        v.add(&[nid(1), nid(3)], 1);
        v.add(&[nid(1), nid(2)], -1);
        assert_eq!(v.any_root(), Some(nid(1)));
        v.add(&[nid(1), nid(3)], -1);
        assert_eq!(v.any_root(), None);
    }
}
