//! Bolt-on incremental view maintenance engines (paper §3).
//!
//! Both engines operate on the relational encoding of the AST and consume
//! node-granularity insert/delete events — "DBToaster-generated view
//! structures register updates at the granularity of individual node
//! insertions/deletions" (§3.2) — which forces them to keep a **shadow
//! copy** of the pattern-relevant AST. That shadow copy, plus their
//! materialized intermediate state, is the memory overhead the paper's
//! Figures 11/13 charge them with.
//!
//! - [`classic::ClassicIvm`] — Ross et al.'s cascading IVM: one left-deep
//!   join plan per pattern with every prefix join materialized
//!   (DBToaster's `--depth=1` analogue in the evaluation).
//! - [`dbtoaster::DbtIvm`] — DBToaster-style higher-order delta
//!   processing: a materialized map for *every connected sub-join* of the
//!   pattern (all possible plans), so each single-tuple delta is answered
//!   by joining the tuple against precomputed complements.
//!
//! Shared plumbing lives in [`common`]; [`batch`] adds the epoch-scoped
//! [`DeltaLog`] both engines use to coalesce overlapping deltas across a
//! rewrite burst before replaying only the net event stream.

pub mod batch;
pub mod classic;
pub mod common;
pub mod dbtoaster;

pub use batch::DeltaLog;
pub use classic::ClassicIvm;
pub use common::{deltas_of_ctx, ViewCore};
pub use dbtoaster::DbtIvm;
