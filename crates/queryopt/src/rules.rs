//! Optimizer rules modeled on the paper's Appendix D transforms.
//!
//! Each rule carries the *weak* structural guard (what Catalyst's `case`
//! clause pattern-matches on) and, where the real transform does further
//! semantic analysis inside its body, a *precise* check. A structural
//! match whose precise check fails is an **ineffective rewrite**: the
//! optimizer has already spent the time matching (and in Catalyst,
//! constructing a replacement it then discards) — exactly the
//! "Ineffective" band of the paper's Figure 1.
//!
//! In [`catalyst_rules`]' *folded* mode the precise checks are merged
//! into the pattern constraints: every view element is then genuinely
//! applicable, which is what an IVM-backed optimizer needs (and is the
//! form the paper's §6 declarative rules take).

use std::sync::Arc;
use treetoaster_core::generator::{acompute, aconst, acopy, gen, reuse, AttrSpec, GenCtx, GenSpec};
use treetoaster_core::{RewriteRule, RuleSet};
use tt_ast::{Schema, Value};
use tt_pattern::dsl::{self as p, CSpec, PatSpec};
use tt_pattern::{Constraint, Pattern, VarId};

/// One optimizer rule: the core rewrite plus the optional precise check
/// (compiled against the same pattern variables).
pub struct OptRule {
    /// The rewrite (pattern = weak guard in unfolded mode, weak ∧ precise
    /// in folded mode).
    pub rule: RewriteRule,
    /// The rule body's semantic check; `None` in folded mode or for
    /// always-effective transforms.
    pub precise: Option<Constraint>,
}

struct RuleSpec {
    name: &'static str,
    weak: fn() -> PatSpec,
    precise: Option<fn() -> CSpec>,
    generator: fn(&Pattern) -> GenSpec,
}

/// Builds the rule set. With `fold_precise`, precise checks are merged
/// into the pattern constraints (the IVM-ready declarative form); without
/// it, they are returned separately and their failures surface as
/// ineffective rewrites.
pub fn catalyst_rules(schema: &Arc<Schema>, fold_precise: bool) -> Vec<OptRule> {
    specs()
        .into_iter()
        .map(|spec| {
            let weak = (spec.weak)();
            let pattern_spec = if fold_precise {
                match spec.precise {
                    Some(precise) => with_constraint(weak, precise()),
                    None => weak,
                }
            } else {
                weak
            };
            let pattern = Pattern::compile(schema, pattern_spec);
            let genspec = (spec.generator)(&pattern);
            let rule = RewriteRule::new(spec.name, schema, pattern, genspec);
            let precise = if fold_precise {
                None
            } else {
                spec.precise
                    .map(|f| rule.pattern.compile_extra_constraint(f()))
            };
            OptRule { rule, precise }
        })
        .collect()
}

/// The folded rules as a [`RuleSet`] (for TreeToaster view maintenance).
pub fn catalyst_ruleset(schema: &Arc<Schema>) -> Arc<RuleSet> {
    Arc::new(RuleSet::from_rules(
        catalyst_rules(schema, true)
            .into_iter()
            .map(|r| r.rule)
            .collect(),
    ))
}

fn with_constraint(spec: PatSpec, extra: CSpec) -> PatSpec {
    match spec {
        PatSpec::Match {
            label,
            var,
            children,
            constraint,
        } => PatSpec::Match {
            label,
            var,
            children,
            constraint: CSpec::And(Box::new(constraint), Box::new(extra)),
        },
        PatSpec::Any { .. } => panic!("cannot constrain a wildcard root"),
    }
}

/// Computed attribute: copy the `output` set of the node bound to `name`.
fn copy_output(pattern: &Pattern, name: &str) -> AttrSpec {
    let var = expect_var(pattern, name);
    acompute("copyOutput", move |ctx: &GenCtx| {
        let output = ctx.ast.schema().expect_attr("output");
        ctx.ast.attr(ctx.bindings.get(var), output).clone()
    })
}

/// Computed attribute: `references(a) ∪ references(b)`.
fn refs_union(pattern: &Pattern, a: &str, b: &str) -> AttrSpec {
    let (va, vb) = (expect_var(pattern, a), expect_var(pattern, b));
    acompute("refsUnion", move |ctx: &GenCtx| {
        let refs = ctx.ast.schema().expect_attr("references");
        let sa = ctx.ast.attr(ctx.bindings.get(va), refs).as_set().clone();
        let sb = ctx.ast.attr(ctx.bindings.get(vb), refs).as_set();
        Value::Set(Arc::new(sa.union(sb)))
    })
}

/// Computed attribute: synthetic conjunction of two condition ids.
fn combined_cond(pattern: &Pattern, a: &str, b: &str) -> AttrSpec {
    let (va, vb) = (expect_var(pattern, a), expect_var(pattern, b));
    acompute("combineCond", move |ctx: &GenCtx| {
        let cond = ctx.ast.schema().expect_attr("cond");
        let ca = ctx.ast.attr(ctx.bindings.get(va), cond).as_int();
        let cb = ctx.ast.attr(ctx.bindings.get(vb), cond).as_int();
        Value::Int(ca.wrapping_mul(31).wrapping_add(cb))
    })
}

fn expect_var(pattern: &Pattern, name: &str) -> VarId {
    pattern
        .var(name)
        .unwrap_or_else(|| panic!("pattern lacks variable {name:?}"))
}

/// Computed attribute: `min(limit(a), limit(b))`.
fn min_limit(pattern: &Pattern, a: &str, b: &str) -> AttrSpec {
    let (va, vb) = (expect_var(pattern, a), expect_var(pattern, b));
    acompute("minLimit", move |ctx: &GenCtx| {
        let limit = ctx.ast.schema().expect_attr("limit");
        let la = ctx.ast.attr(ctx.bindings.get(va), limit).as_int();
        let lb = ctx.ast.attr(ctx.bindings.get(vb), limit).as_int();
        Value::Int(la.min(lb))
    })
}

fn specs() -> Vec<RuleSpec> {
    vec![
        // D.1 RemoveNoopOperators — Project(_, child) if child.sameOutput(p).
        RuleSpec {
            name: "RemoveNoopProject",
            weak: || p::node("Project", "P", [p::any_as("X")], p::tru()),
            precise: Some(|| p::eq(p::attr("P", "output"), p::attr("X", "output"))),
            generator: |_| reuse("X"),
        },
        // D.1 RemoveNoopOperators — Window if windowExpressions.isEmpty.
        RuleSpec {
            name: "RemoveNoopWindow",
            weak: || {
                p::node(
                    "Window",
                    "W",
                    [p::any_as("X")],
                    p::eq(p::attr("W", "windowEmpty"), p::boolean(true)),
                )
            },
            precise: None,
            generator: |_| reuse("X"),
        },
        // D.2 CombineFilters — both filters deterministic.
        RuleSpec {
            name: "CombineFilters",
            weak: || {
                p::node(
                    "Filter",
                    "F1",
                    [p::node("Filter", "F2", [p::any_as("X")], p::tru())],
                    p::and(
                        p::eq(p::attr("F1", "deterministic"), p::boolean(true)),
                        p::eq(p::attr("F2", "deterministic"), p::boolean(true)),
                    ),
                )
            },
            precise: None,
            generator: |pat| {
                gen(
                    "Filter",
                    [
                        ("output", acopy("F2", "output")),
                        ("references", refs_union(pat, "F1", "F2")),
                        ("cond", combined_cond(pat, "F1", "F2")),
                        ("deterministic", aconst(Value::Bool(true))),
                    ],
                    [reuse("X")],
                )
            },
        },
        // D.3 PushPredicateThroughNonJoin — Filter over Project; the body
        // checks canPushThroughCondition (modeled: F.references ⊆ X.output).
        RuleSpec {
            name: "PushFilterThroughProject",
            weak: || {
                p::node(
                    "Filter",
                    "F",
                    [p::node(
                        "Project",
                        "P",
                        [p::any_as("X")],
                        p::eq(p::attr("P", "deterministic"), p::boolean(true)),
                    )],
                    p::tru(),
                )
            },
            precise: Some(|| p::le(p::attr("F", "references"), p::attr("X", "output"))),
            generator: |pat| {
                gen(
                    "Project",
                    [
                        ("output", acopy("P", "output")),
                        ("references", acopy("P", "references")),
                        ("deterministic", acopy("P", "deterministic")),
                    ],
                    [gen(
                        "Filter",
                        [
                            ("output", copy_output(pat, "X")),
                            ("references", acopy("F", "references")),
                            ("cond", acopy("F", "cond")),
                            ("deterministic", acopy("F", "deterministic")),
                        ],
                        [reuse("X")],
                    )],
                )
            },
        },
        // D.4 PushPredicateThroughJoin — push into the left input when the
        // predicate only references it; joinType guard folded (Inner).
        RuleSpec {
            name: "PushFilterThroughJoin",
            weak: || {
                p::node(
                    "Filter",
                    "F",
                    [p::node(
                        "Join",
                        "J",
                        [p::any_as("A"), p::any_as("B")],
                        p::eq(p::attr("J", "joinType"), p::str_("Inner")),
                    )],
                    p::tru(),
                )
            },
            precise: Some(|| p::le(p::attr("F", "references"), p::attr("A", "output"))),
            generator: |pat| {
                gen(
                    "Join",
                    [
                        ("output", acopy("J", "output")),
                        ("references", acopy("J", "references")),
                        ("joinType", acopy("J", "joinType")),
                        ("cond", acopy("J", "cond")),
                    ],
                    [
                        gen(
                            "Filter",
                            [
                                ("output", copy_output(pat, "A")),
                                ("references", acopy("F", "references")),
                                ("cond", acopy("F", "cond")),
                                ("deterministic", acopy("F", "deterministic")),
                            ],
                            [reuse("A")],
                        ),
                        reuse("B"),
                    ],
                )
            },
        },
        // D.4 PushPredicateThroughJoin, right-input variant.
        RuleSpec {
            name: "PushFilterThroughJoinRight",
            weak: || {
                p::node(
                    "Filter",
                    "F",
                    [p::node(
                        "Join",
                        "J",
                        [p::any_as("A"), p::any_as("B")],
                        p::eq(p::attr("J", "joinType"), p::str_("Inner")),
                    )],
                    p::tru(),
                )
            },
            precise: Some(|| p::le(p::attr("F", "references"), p::attr("B", "output"))),
            generator: |pat| {
                gen(
                    "Join",
                    [
                        ("output", acopy("J", "output")),
                        ("references", acopy("J", "references")),
                        ("joinType", acopy("J", "joinType")),
                        ("cond", acopy("J", "cond")),
                    ],
                    [
                        reuse("A"),
                        gen(
                            "Filter",
                            [
                                ("output", copy_output(pat, "B")),
                                ("references", acopy("F", "references")),
                                ("cond", acopy("F", "cond")),
                                ("deterministic", acopy("F", "deterministic")),
                            ],
                            [reuse("B")],
                        ),
                    ],
                )
            },
        },
        // CombineLimits — stacked LIMIT pairs collapse to the minimum.
        // A four-Match pattern: the paper notes its CollapseProject
        // example's "4-way join which is an exception; most others look
        // at a 3-level deep subtree".
        RuleSpec {
            name: "CombineLimits",
            weak: || {
                p::node(
                    "GlobalLimit",
                    "G1",
                    [p::node(
                        "LocalLimit",
                        "L1",
                        [p::node(
                            "GlobalLimit",
                            "G2",
                            [p::node("LocalLimit", "L2", [p::any_as("X")], p::tru())],
                            p::tru(),
                        )],
                        p::tru(),
                    )],
                    p::tru(),
                )
            },
            precise: None,
            generator: |pat| {
                gen(
                    "GlobalLimit",
                    [
                        ("output", acopy("G2", "output")),
                        ("references", acopy("G1", "references")),
                        ("limit", min_limit(pat, "G1", "G2")),
                    ],
                    [gen(
                        "LocalLimit",
                        [
                            ("output", acopy("L2", "output")),
                            ("references", acopy("L1", "references")),
                            ("limit", min_limit(pat, "L1", "L2")),
                        ],
                        [reuse("X")],
                    )],
                )
            },
        },
        // D.10 CollapseProject — body checks isRenaming, modeled as
        // P1.output ⊆ P2.output.
        RuleSpec {
            name: "CollapseProject",
            weak: || {
                p::node(
                    "Project",
                    "P1",
                    [p::node("Project", "P2", [p::any_as("X")], p::tru())],
                    p::tru(),
                )
            },
            precise: Some(|| p::le(p::attr("P1", "output"), p::attr("P2", "output"))),
            generator: |_| {
                gen(
                    "Project",
                    [
                        ("output", acopy("P1", "output")),
                        ("references", acopy("P2", "references")),
                        ("deterministic", acopy("P2", "deterministic")),
                    ],
                    [reuse("X")],
                )
            },
        },
        // D.5 ColumnPruning's union case — push a Project below UNION ALL.
        RuleSpec {
            name: "PushProjectThroughUnion",
            weak: || {
                p::node(
                    "Project",
                    "P",
                    [p::node(
                        "UnionAll",
                        "U",
                        [p::any_as("A"), p::any_as("B")],
                        p::tru(),
                    )],
                    p::tru(),
                )
            },
            precise: None,
            generator: |_| {
                let side = |branch: &str| {
                    gen(
                        "Project",
                        [
                            ("output", acopy("P", "output")),
                            ("references", acopy("P", "references")),
                            ("deterministic", acopy("P", "deterministic")),
                        ],
                        [reuse(branch)],
                    )
                };
                gen(
                    "UnionAll",
                    [
                        ("output", acopy("P", "output")),
                        ("references", acopy("U", "references")),
                    ],
                    [side("A"), side("B")],
                )
            },
        },
        // D.9 ConvertToLocalRelation — Project over LocalRelation.
        RuleSpec {
            name: "ConvertProjectToLocalRelation",
            weak: || {
                p::node(
                    "Project",
                    "P",
                    [p::node("LocalRelation", "L", [], p::tru())],
                    p::tru(),
                )
            },
            precise: None,
            generator: |_| {
                gen(
                    "LocalRelation",
                    [
                        ("output", acopy("P", "output")),
                        ("references", aconst(Value::set([]))),
                    ],
                    [],
                )
            },
        },
        // D.9 ConvertToLocalRelation — Filter over LocalRelation.
        RuleSpec {
            name: "ConvertFilterToLocalRelation",
            weak: || {
                p::node(
                    "Filter",
                    "F",
                    [p::node("LocalRelation", "L", [], p::tru())],
                    p::tru(),
                )
            },
            precise: None,
            generator: |_| {
                gen(
                    "LocalRelation",
                    [
                        ("output", acopy("L", "output")),
                        ("references", aconst(Value::set([]))),
                    ],
                    [],
                )
            },
        },
        // Distinct of an Aggregate is redundant — RemoveNoopOperators kin.
        RuleSpec {
            name: "EliminateDistinctOnAggregate",
            weak: || {
                p::node(
                    "Distinct",
                    "D",
                    [p::node("Aggregate", "G", [p::any()], p::tru())],
                    p::tru(),
                )
            },
            precise: None,
            generator: |_| reuse("G"),
        },
        // Sort over Sort: the outer ordering wins.
        RuleSpec {
            name: "RemoveRedundantSort",
            weak: || {
                p::node(
                    "Sort",
                    "S1",
                    [p::node("Sort", "S2", [p::any_as("X")], p::tru())],
                    p::tru(),
                )
            },
            precise: None,
            generator: |_| {
                gen(
                    "Sort",
                    [
                        ("output", acopy("S1", "output")),
                        ("references", acopy("S1", "references")),
                    ],
                    [reuse("X")],
                )
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{plan_schema, PlanBuilder};
    use treetoaster_core::{MatchCore, NaiveStrategy};
    use tt_ast::Ast;
    use tt_pattern::{match_node, TreeAttrs};

    #[test]
    fn all_rules_compile_in_both_modes() {
        let s = plan_schema();
        let unfolded = catalyst_rules(&s, false);
        let folded = catalyst_rules(&s, true);
        assert_eq!(unfolded.len(), 13);
        assert_eq!(folded.len(), 13);
        assert!(folded.iter().all(|r| r.precise.is_none()));
        let with_precise = unfolded.iter().filter(|r| r.precise.is_some()).count();
        assert_eq!(with_precise, 5, "five rules carry precise checks");
    }

    #[test]
    fn combine_limits_collapses_stacked_pairs() {
        let s = plan_schema();
        let ruleset = catalyst_ruleset(&s);
        let (rid, rule) = ruleset.by_name("CombineLimits").unwrap();
        assert_eq!(
            rule.pattern.depth(),
            4,
            "the 4-deep exception the paper notes"
        );
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [1]);
        let inner = b.limit(100, t);
        let outer = b.limit(50, inner);
        let l = b.l;
        ast.set_root(outer);
        let mut naive = NaiveStrategy::new(ruleset.clone());
        let site = naive.find_one(&ast, rid).unwrap();
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        rule.apply(&mut ast, site, &bindings, 0);
        let root = ast.root();
        assert_eq!(ast.label(root), l.global_limit);
        assert_eq!(ast.attr(root, l.limit).as_int(), 50);
        let local = ast.children(root)[0];
        assert_eq!(ast.label(local), l.local_limit);
        assert_eq!(ast.attr(local, l.limit).as_int(), 50);
        assert_eq!(ast.subtree_size(root), 3, "4 limit nodes collapsed to 2");
        ast.validate().unwrap();
    }

    #[test]
    fn right_side_filter_push() {
        let s = plan_schema();
        let ruleset = catalyst_ruleset(&s);
        let (rid, rule) = ruleset.by_name("PushFilterThroughJoinRight").unwrap();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let left = b.table(1, [1, 2]);
        let right = b.table(2, [3, 4]);
        let j = b.join(7, left, right);
        let f = b.filter(11, [4], j); // references ⊆ right.output
        let l = b.l;
        ast.set_root(f);
        let mut naive = NaiveStrategy::new(ruleset.clone());
        let site = naive.find_one(&ast, rid).unwrap();
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        rule.apply(&mut ast, site, &bindings, 0);
        let root = ast.root();
        assert_eq!(ast.label(root), l.join);
        assert_eq!(ast.children(root)[0], left, "left untouched");
        let new_right = ast.children(root)[1];
        assert_eq!(ast.label(new_right), l.filter);
        assert_eq!(ast.children(new_right)[0], right);
        ast.validate().unwrap();
    }

    #[test]
    fn noop_project_removal_folded() {
        let s = plan_schema();
        let ruleset = catalyst_ruleset(&s);
        let (rid, rule) = ruleset.by_name("RemoveNoopProject").unwrap();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [1, 2]);
        let np = b.noop_project(t);
        ast.set_root(np);
        let mut naive = NaiveStrategy::new(ruleset.clone());
        let site = naive.find_one(&ast, rid).expect("noop project matches");
        assert_eq!(site, np);
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        rule.apply(&mut ast, site, &bindings, 0);
        assert_eq!(ast.root(), t, "plan reduced to the bare table scan");
        ast.validate().unwrap();
    }

    #[test]
    fn noop_project_weak_guard_matches_but_precise_fails_on_narrowing() {
        let s = plan_schema();
        let rules = catalyst_rules(&s, false);
        let opt = rules
            .iter()
            .find(|r| r.rule.name == "RemoveNoopProject")
            .unwrap();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [1, 2]);
        let narrowing = b.project([1], t); // output ≠ child output
        ast.set_root(narrowing);
        let bindings =
            match_node(&ast, narrowing, &opt.rule.pattern).expect("weak guard matches any Project");
        let precise = opt.precise.as_ref().unwrap();
        let src = TreeAttrs {
            ast: &ast,
            bindings: &bindings,
        };
        assert!(!precise.eval(&src), "precise check rejects");
    }

    #[test]
    fn combine_filters_merges_conditions() {
        let s = plan_schema();
        let ruleset = catalyst_ruleset(&s);
        let (rid, rule) = ruleset.by_name("CombineFilters").unwrap();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [1, 2]);
        let f2 = b.filter(5, [1], t);
        let f1 = b.filter(9, [2], f2);
        let l = b.l;
        ast.set_root(f1);
        let mut naive = NaiveStrategy::new(ruleset.clone());
        let site = naive.find_one(&ast, rid).unwrap();
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        rule.apply(&mut ast, site, &bindings, 0);
        let root = ast.root();
        assert_eq!(ast.label(root), l.filter);
        assert_eq!(ast.attr(root, l.cond).as_int(), 9 * 31 + 5);
        // References merged.
        let refs = ast.attr(root, l.references).as_set();
        assert!(refs.contains(1) && refs.contains(2));
        assert_eq!(ast.subtree_size(root), 2);
    }

    #[test]
    fn push_filter_through_join_left_side() {
        let s = plan_schema();
        let ruleset = catalyst_ruleset(&s);
        let (rid, rule) = ruleset.by_name("PushFilterThroughJoin").unwrap();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let left = b.table(1, [1, 2]);
        let right = b.table(2, [3, 4]);
        let j = b.join(7, left, right);
        let f = b.filter(11, [1], j); // references ⊆ left.output
        let l = b.l;
        ast.set_root(f);
        let mut naive = NaiveStrategy::new(ruleset.clone());
        let site = naive.find_one(&ast, rid).unwrap();
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        rule.apply(&mut ast, site, &bindings, 0);
        let root = ast.root();
        assert_eq!(ast.label(root), l.join);
        let new_left = ast.children(root)[0];
        assert_eq!(ast.label(new_left), l.filter, "filter now below the join");
        assert_eq!(ast.children(new_left)[0], left);
        assert_eq!(ast.children(root)[1], right);
        ast.validate().unwrap();
    }

    #[test]
    fn push_filter_through_join_blocked_when_refs_span_both_sides() {
        let s = plan_schema();
        let ruleset = catalyst_ruleset(&s);
        let (rid, _) = ruleset.by_name("PushFilterThroughJoin").unwrap();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let left = b.table(1, [1, 2]);
        let right = b.table(2, [3, 4]);
        let j = b.join(7, left, right);
        let f = b.filter(11, [1, 3], j); // spans both inputs
        ast.set_root(f);
        let mut naive = NaiveStrategy::new(ruleset);
        assert!(naive.find_one(&ast, rid).is_none(), "folded guard rejects");
    }

    #[test]
    fn push_project_through_union_duplicates_project() {
        let s = plan_schema();
        let ruleset = catalyst_ruleset(&s);
        let (rid, rule) = ruleset.by_name("PushProjectThroughUnion").unwrap();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let t1 = b.table(1, [1, 2]);
        let t2 = b.table(1, [1, 2]);
        let u = b.union_all(t1, t2);
        let pr = b.project([1], u);
        let l = b.l;
        ast.set_root(pr);
        let mut naive = NaiveStrategy::new(ruleset.clone());
        let site = naive.find_one(&ast, rid).unwrap();
        let bindings = match_node(&ast, site, &rule.pattern).unwrap();
        rule.apply(&mut ast, site, &bindings, 0);
        let root = ast.root();
        assert_eq!(ast.label(root), l.union_all);
        for &c in ast.children(root) {
            assert_eq!(ast.label(c), l.project);
        }
        ast.validate().unwrap();
    }
}
