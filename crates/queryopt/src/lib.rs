//! Catalyst- and Orca-style query optimizers over logical-plan ASTs.
//!
//! The paper's motivation (Figure 1) and appendix (Figures 14, 15)
//! measure where *real* SQL optimizers spend their time: searching the
//! AST for rewrite candidates, constructing replacements that are then
//! discarded (ineffective rewrites), constructing effective replacements,
//! and comparing plans in the outer fixpoint loop. This crate rebuilds
//! that experiment end to end (DESIGN.md §3 documents the substitution):
//!
//! - [`schema`] — a Spark-`LogicalPlan`-shaped node schema (Appendix C).
//! - [`rules`] — optimizer rules modeled on Appendix D's transforms
//!   (RemoveNoopOperators, CombineFilters, PushPredicateThroughNonJoin /
//!   Join, CollapseProject, ConvertToLocalRelation, …), each with the
//!   *weak* structural guard Catalyst pattern-matches on plus the precise
//!   semantic check its rule body performs (whose failure produces an
//!   ineffective rewrite).
//! - [`catalyst`] — a batch-fixpoint optimizer with instrumented
//!   search / effective / ineffective / fixpoint phases, runnable with a
//!   naive scan (the measured reality) or TreeToaster views (the paper's
//!   proposal, as an ablation).
//! - [`orca`] — a Cascades-style optimizer: promise-ordered (node, rule)
//!   task queue and memo bookkeeping, reproducing Orca's much lower
//!   search share (5–20%).
//! - [`orca_xforms`] — Appendix C/E: Orca's `CExpression` schemas and
//!   xforms (Get2TableScan, Select2Filter, InnerJoin2NL/HashJoin,
//!   JoinCommutativity, ImplementUnionAll) encoded as `⟨q, g⟩` rules.
//! - [`tpch`] — 22 TPC-H-shaped logical plans (Figure 1's workload).
//! - [`antipattern`] — the UNION-ALL-doubling view expansion of
//!   Appendix A (Figures 14/15's scaling workload).

pub mod antipattern;
pub mod catalyst;
pub mod orca;
pub mod orca_xforms;
pub mod rules;
pub mod schema;
pub mod tpch;

pub use catalyst::{optimize, Breakdown, SearchMode};
pub use rules::{catalyst_rules, OptRule};
pub use schema::{plan_schema, PlanLabels};
