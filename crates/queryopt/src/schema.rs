//! A Spark-`LogicalPlan`-shaped schema (paper Appendix C).
//!
//! Every operator carries the two attributes the Appendix-D patterns
//! lean on — `output` (the attribute set the operator produces) and
//! `references` (the attributes it consumes) — plus a few per-operator
//! extras (`deterministic`, `cond`, `joinType`, `windowEmpty`, …).
//! Attribute sets are [`tt_ast::IntSet`]s of column ids.

use std::sync::Arc;
use tt_ast::{Ast, AttrName, IntSet, Label, NodeId, Schema, Value};

/// Builds the logical-plan schema.
pub fn plan_schema() -> Arc<Schema> {
    Schema::builder()
        // Leaf: a base relation scan.
        .label("Table", &["output", "references", "relid"], 0)
        // Leaf: materialized local data (ConvertToLocalRelation's target).
        .label("LocalRelation", &["output", "references"], 0)
        .label("Project", &["output", "references", "deterministic"], 1)
        .label(
            "Filter",
            &["output", "references", "cond", "deterministic"],
            1,
        )
        .label("Join", &["output", "references", "joinType", "cond"], 2)
        .label(
            "Aggregate",
            &["output", "references", "groupingNonEmpty", "deterministic"],
            1,
        )
        .label("UnionAll", &["output", "references"], 2)
        .label("Sort", &["output", "references"], 1)
        .label("Distinct", &["output", "references"], 1)
        .label("Window", &["output", "references", "windowEmpty"], 1)
        .label("GlobalLimit", &["output", "references", "limit"], 1)
        .label("LocalLimit", &["output", "references", "limit"], 1)
        .finish()
}

/// Interned handles for hot-path access.
#[derive(Debug, Clone, Copy)]
pub struct PlanLabels {
    /// `Table`.
    pub table: Label,
    /// `LocalRelation`.
    pub local_relation: Label,
    /// `Project`.
    pub project: Label,
    /// `Filter`.
    pub filter: Label,
    /// `Join`.
    pub join: Label,
    /// `Aggregate`.
    pub aggregate: Label,
    /// `UnionAll`.
    pub union_all: Label,
    /// `Sort`.
    pub sort: Label,
    /// `Distinct`.
    pub distinct: Label,
    /// `Window`.
    pub window: Label,
    /// `GlobalLimit`.
    pub global_limit: Label,
    /// `LocalLimit`.
    pub local_limit: Label,
    /// `output`.
    pub output: AttrName,
    /// `references`.
    pub references: AttrName,
    /// `deterministic`.
    pub deterministic: AttrName,
    /// `cond`.
    pub cond: AttrName,
    /// `joinType`.
    pub join_type: AttrName,
    /// `windowEmpty`.
    pub window_empty: AttrName,
    /// `limit`.
    pub limit: AttrName,
    /// `groupingNonEmpty`.
    pub grouping_non_empty: AttrName,
    /// `relid`.
    pub relid: AttrName,
}

impl PlanLabels {
    /// Interns from the plan schema.
    pub fn of(schema: &Schema) -> PlanLabels {
        PlanLabels {
            table: schema.expect_label("Table"),
            local_relation: schema.expect_label("LocalRelation"),
            project: schema.expect_label("Project"),
            filter: schema.expect_label("Filter"),
            join: schema.expect_label("Join"),
            aggregate: schema.expect_label("Aggregate"),
            union_all: schema.expect_label("UnionAll"),
            sort: schema.expect_label("Sort"),
            distinct: schema.expect_label("Distinct"),
            window: schema.expect_label("Window"),
            global_limit: schema.expect_label("GlobalLimit"),
            local_limit: schema.expect_label("LocalLimit"),
            output: schema.expect_attr("output"),
            references: schema.expect_attr("references"),
            deterministic: schema.expect_attr("deterministic"),
            cond: schema.expect_attr("cond"),
            join_type: schema.expect_attr("joinType"),
            window_empty: schema.expect_attr("windowEmpty"),
            limit: schema.expect_attr("limit"),
            grouping_non_empty: schema.expect_attr("groupingNonEmpty"),
            relid: schema.expect_attr("relid"),
        }
    }

    /// The output set of any plan node.
    pub fn output_of(&self, ast: &Ast, node: NodeId) -> Arc<IntSet> {
        ast.attr(node, self.output).as_set().clone()
    }
}

/// Convenience builders for plan nodes (used by the TPC-H and antipattern
/// generators and by tests).
pub struct PlanBuilder<'a> {
    /// The AST under construction.
    pub ast: &'a mut Ast,
    /// Interned handles.
    pub l: PlanLabels,
}

impl<'a> PlanBuilder<'a> {
    /// Wraps an AST.
    pub fn new(ast: &'a mut Ast) -> PlanBuilder<'a> {
        let l = PlanLabels::of(ast.schema());
        PlanBuilder { ast, l }
    }

    fn set(cols: impl IntoIterator<Item = u32>) -> Value {
        Value::set(cols)
    }

    /// A base-table scan producing `cols`.
    pub fn table(&mut self, relid: i64, cols: impl IntoIterator<Item = u32>) -> NodeId {
        let out = Self::set(cols);
        self.ast.alloc(
            self.l.table,
            vec![out, Value::set([]), Value::Int(relid)],
            vec![],
        )
    }

    /// A local relation producing `cols`.
    pub fn local_relation(&mut self, cols: impl IntoIterator<Item = u32>) -> NodeId {
        self.ast.alloc(
            self.l.local_relation,
            vec![Self::set(cols), Value::set([])],
            vec![],
        )
    }

    /// A projection to `cols`.
    pub fn project(&mut self, cols: impl IntoIterator<Item = u32>, child: NodeId) -> NodeId {
        let refs = self.l.output_of(self.ast, child);
        self.ast.alloc(
            self.l.project,
            vec![Self::set(cols), Value::Set(refs), Value::Bool(true)],
            vec![child],
        )
    }

    /// A deterministic filter with synthetic condition id `cond` reading
    /// `refs`.
    pub fn filter(
        &mut self,
        cond: i64,
        refs: impl IntoIterator<Item = u32>,
        child: NodeId,
    ) -> NodeId {
        let out = self.l.output_of(self.ast, child);
        self.ast.alloc(
            self.l.filter,
            vec![
                Value::Set(out),
                Self::set(refs),
                Value::Int(cond),
                Value::Bool(true),
            ],
            vec![child],
        )
    }

    /// An inner join with synthetic condition id.
    pub fn join(&mut self, cond: i64, left: NodeId, right: NodeId) -> NodeId {
        let lo = self.l.output_of(self.ast, left);
        let ro = self.l.output_of(self.ast, right);
        let out = lo.union(&ro);
        self.ast.alloc(
            self.l.join,
            vec![
                Value::Set(Arc::new(out)),
                Value::set([]),
                Value::str("Inner"),
                Value::Int(cond),
            ],
            vec![left, right],
        )
    }

    /// An aggregate producing `cols` with non-empty grouping.
    pub fn aggregate(&mut self, cols: impl IntoIterator<Item = u32>, child: NodeId) -> NodeId {
        let refs = self.l.output_of(self.ast, child);
        self.ast.alloc(
            self.l.aggregate,
            vec![
                Self::set(cols),
                Value::Set(refs),
                Value::Bool(true),
                Value::Bool(true),
            ],
            vec![child],
        )
    }

    /// A binary UNION ALL.
    pub fn union_all(&mut self, left: NodeId, right: NodeId) -> NodeId {
        let out = self.l.output_of(self.ast, left);
        self.ast.alloc(
            self.l.union_all,
            vec![Value::Set(out), Value::set([])],
            vec![left, right],
        )
    }

    /// A sort.
    pub fn sort(&mut self, child: NodeId) -> NodeId {
        let out = self.l.output_of(self.ast, child);
        self.ast.alloc(
            self.l.sort,
            vec![Value::Set(out.clone()), Value::Set(out)],
            vec![child],
        )
    }

    /// A distinct.
    pub fn distinct(&mut self, child: NodeId) -> NodeId {
        let out = self.l.output_of(self.ast, child);
        self.ast.alloc(
            self.l.distinct,
            vec![Value::Set(out), Value::set([])],
            vec![child],
        )
    }

    /// A no-op projection (same output as its child) — RemoveNoopOperators
    /// bait.
    pub fn noop_project(&mut self, child: NodeId) -> NodeId {
        let out = self.l.output_of(self.ast, child);
        self.ast.alloc(
            self.l.project,
            vec![Value::Set(out.clone()), Value::Set(out), Value::Bool(true)],
            vec![child],
        )
    }

    /// An empty window (RemoveNoopOperators bait).
    pub fn noop_window(&mut self, child: NodeId) -> NodeId {
        let out = self.l.output_of(self.ast, child);
        self.ast.alloc(
            self.l.window,
            vec![Value::Set(out), Value::set([]), Value::Bool(true)],
            vec![child],
        )
    }

    /// A global/local limit pair as Spark produces for LIMIT.
    pub fn limit(&mut self, n: i64, child: NodeId) -> NodeId {
        let out = self.l.output_of(self.ast, child);
        let local = self.ast.alloc(
            self.l.local_limit,
            vec![Value::Set(out.clone()), Value::set([]), Value::Int(n)],
            vec![child],
        );
        self.ast.alloc(
            self.l.global_limit,
            vec![Value::Set(out), Value::set([]), Value::Int(n)],
            vec![local],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_all_operators() {
        let s = plan_schema();
        assert_eq!(s.label_count(), 12);
        let l = PlanLabels::of(&s);
        assert_eq!(s.def(l.join).max_children, 2);
        assert_eq!(s.def(l.table).max_children, 0);
    }

    #[test]
    fn builder_constructs_consistent_plans() {
        let s = plan_schema();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [1, 2, 3]);
        let f = b.filter(7, [1], t);
        let p = b.project([2, 3], f);
        let l = b.l;
        ast.set_root(p);
        ast.validate().unwrap();
        assert_eq!(ast.subtree_size(p), 3);
        // Filter output = child output; project output as requested.
        assert!(l.output_of(&ast, f).contains(2));
        assert_eq!(l.output_of(&ast, p).len(), 2);
    }

    #[test]
    fn join_output_is_union() {
        let s = plan_schema();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let a = b.table(1, [1, 2]);
        let c = b.table(2, [3]);
        let j = b.join(9, a, c);
        let l = b.l;
        assert_eq!(
            l.output_of(&ast, j).iter().collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn noop_project_matches_child_output() {
        let s = plan_schema();
        let mut ast = Ast::new(s);
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [4, 5]);
        let np = b.noop_project(t);
        let l = b.l;
        assert_eq!(*l.output_of(&ast, np), *l.output_of(&ast, t));
    }
}
