//! TPC-H-shaped logical plans (the Figure 1 workload).
//!
//! Twenty-two plans with the operator mix of the corresponding TPC-H
//! queries: the same base tables, join widths, aggregation/sort/limit
//! structure — plus a seeded sprinkling of the rewrite opportunities the
//! optimizer rules look for (stacked filters, no-op projects, pushable
//! and non-pushable predicates). Absolute costs differ from Spark's, but
//! the search-vs-rewrite time structure these plans elicit is the
//! quantity Figure 1 reports.

use crate::schema::{plan_schema, PlanBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_ast::{Ast, NodeId};

/// The TPC-H base tables: `(relid, first column, column count)`.
const TABLES: [(i64, u32, u32); 8] = [
    (1, 1, 16), // lineitem
    (2, 17, 9), // orders
    (3, 26, 8), // customer
    (4, 34, 9), // part
    (5, 43, 7), // supplier
    (6, 50, 5), // partsupp
    (7, 55, 4), // nation
    (8, 59, 3), // region
];

/// Tables joined by each query (indices into [`TABLES`]), mirroring each
/// TPC-H query's join width.
fn query_tables(q: usize) -> Vec<usize> {
    match q {
        1 => vec![0],
        2 => vec![3, 4, 5, 6, 7],
        3 => vec![2, 1, 0],
        4 => vec![1, 0],
        5 => vec![2, 1, 0, 4, 6, 7],
        6 => vec![0],
        7 => vec![4, 0, 1, 2, 6, 6],
        8 => vec![3, 4, 0, 1, 2, 6, 6, 7],
        9 => vec![3, 4, 0, 5, 1, 6],
        10 => vec![2, 1, 0, 6],
        11 => vec![5, 4, 6],
        12 => vec![1, 0],
        13 => vec![2, 1],
        14 => vec![0, 3],
        15 => vec![4, 0],
        16 => vec![5, 3, 4],
        17 => vec![0, 3],
        18 => vec![2, 1, 0],
        19 => vec![0, 3],
        20 => vec![4, 6, 5, 3],
        21 => vec![4, 0, 1, 6],
        22 => vec![2, 1],
        _ => panic!("TPC-H queries are 1..=22, got {q}"),
    }
}

fn has_aggregate(q: usize) -> bool {
    !matches!(q, 2 | 6 | 14 | 15 | 19 | 20)
}

fn has_sort(q: usize) -> bool {
    !matches!(q, 6 | 14 | 17 | 19)
}

fn has_limit(q: usize) -> bool {
    matches!(q, 2 | 3 | 10 | 18 | 21)
}

/// Builds the plan for TPC-H query `q` (1..=22) into a fresh AST.
/// `seed` controls bait placement only; the operator skeleton is fixed.
pub fn build_query(q: usize, seed: u64) -> Ast {
    let mut ast = Ast::new(plan_schema());
    let mut rng = StdRng::seed_from_u64(seed ^ (q as u64) << 32);
    let root = {
        let mut b = PlanBuilder::new(&mut ast);
        let tables = query_tables(q);
        let mut cond = (q * 100) as i64;
        let mut next_cond = || {
            cond += 1;
            cond
        };

        // Per-table access path: scan → filter (→ bait).
        let mut inputs: Vec<NodeId> = Vec::new();
        for &ti in &tables {
            let (relid, first, count) = TABLES[ti];
            let cols: Vec<u32> = (first..first + count).collect();
            let mut node = b.table(relid, cols.iter().copied());
            node = b.filter(next_cond(), [first], node);
            if rng.gen_bool(0.5) {
                node = b.noop_project(node); // RemoveNoopProject bait
            }
            if rng.gen_bool(0.3) {
                // Stacked filter → CombineFilters bait.
                node = b.filter(next_cond(), [first + 1], node);
            }
            inputs.push(node);
        }

        // Left-deep join chain.
        let mut plan = inputs[0];
        for &input in &inputs[1..] {
            plan = b.join(next_cond(), plan, input);
        }

        // A predicate above the joins; half the time it references only
        // the leftmost table (pushable), otherwise it spans inputs
        // (PushFilterThroughJoin's weak guard matches, precise rejects —
        // an ineffective rewrite every pass).
        if tables.len() > 1 {
            let (_, left_first, _) = TABLES[tables[0]];
            let (_, right_first, _) = TABLES[*tables.last().unwrap()];
            if rng.gen_bool(0.5) {
                plan = b.filter(next_cond(), [left_first], plan);
            } else {
                plan = b.filter(next_cond(), [left_first, right_first], plan);
            }
        }

        if has_aggregate(q) {
            let out_cols: Vec<u32> = (1000..1000 + 4 + (q as u32 % 3)).collect();
            plan = b.aggregate(out_cols.iter().copied(), plan);
            if rng.gen_bool(0.4) {
                plan = b.distinct(plan); // EliminateDistinctOnAggregate bait
            }
        }
        if rng.gen_bool(0.5) {
            plan = b.noop_window(plan); // RemoveNoopWindow bait
        }
        if has_sort(q) {
            plan = b.sort(plan);
            if rng.gen_bool(0.3) {
                plan = b.sort(plan); // RemoveRedundantSort bait
            }
        }
        if has_limit(q) {
            plan = b.limit(100, plan);
            if rng.gen_bool(0.3) {
                plan = b.limit(50, plan); // stacked LIMITs → CombineLimits bait
            }
        }
        plan
    };
    ast.set_root(root);
    ast
}

/// Builds all 22 plans.
pub fn all_queries(seed: u64) -> Vec<(usize, Ast)> {
    (1..=22).map(|q| (q, build_query(q, seed))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalyst::{optimize, SearchMode};

    #[test]
    fn all_queries_build_and_validate() {
        for (q, ast) in all_queries(42) {
            ast.validate().unwrap_or_else(|e| panic!("Q{q}: {e}"));
            let size = ast.subtree_size(ast.root());
            assert!(size >= 3, "Q{q} too small: {size}");
        }
    }

    #[test]
    fn join_widths_match_tpch() {
        // Spot-check the famous ones: Q1/Q6 no joins, Q8 is the 8-way.
        let l = crate::schema::PlanLabels::of(&plan_schema());
        let count_joins = |ast: &Ast| {
            ast.descendants(ast.root())
                .filter(|&n| ast.label(n) == l.join)
                .count()
        };
        assert_eq!(count_joins(&build_query(1, 42)), 0);
        assert_eq!(count_joins(&build_query(6, 42)), 0);
        assert_eq!(count_joins(&build_query(8, 42)), 7);
        assert_eq!(count_joins(&build_query(5, 42)), 5);
    }

    #[test]
    fn every_query_optimizes_to_fixpoint() {
        for (q, mut ast) in all_queries(7) {
            let before = ast.subtree_size(ast.root());
            let bd = optimize(&mut ast, SearchMode::NaiveScan, 50);
            assert!(bd.iterations < 50, "Q{q} failed to converge");
            assert!(bd.final_size <= before, "Q{q} grew without bound");
            ast.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_query(3, 99);
        let b = build_query(3, 99);
        assert_eq!(a.subtree_size(a.root()), b.subtree_size(b.root()));
        let c = build_query(3, 100);
        // Different seeds usually differ in bait placement; sizes may
        // coincide, so compare over all queries.
        let total_a: usize = all_queries(99)
            .iter()
            .map(|(_, t)| t.subtree_size(t.root()))
            .sum();
        let total_c: usize = all_queries(100)
            .iter()
            .map(|(_, t)| t.subtree_size(t.root()))
            .sum();
        let _ = c;
        assert_ne!(total_a, total_c);
    }
}
