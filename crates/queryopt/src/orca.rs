//! An Orca-style (Cascades) optimizer driver.
//!
//! Orca "has a more intricate rule scheduling mechanism, but also works
//! by recursive tree traversal during which a pairwise recursive
//! traversal of the pattern AST and AST subtrees is used to check for
//! matches" (paper Appendix A). Key differences from the Catalyst driver
//! that explain Orca's lower search share (5–20% vs 50–60%):
//!
//! - **Task queue instead of sweeps**: (node, rule) pairs are enqueued
//!   once and re-enqueued only for regions a rewrite touched, so far
//!   fewer match attempts happen per effective rewrite.
//! - **Promise before construction**: the rule's `Exfp` promise (our
//!   precise check) runs before any replacement is built, so failed
//!   candidates cost a constraint evaluation, not a discarded subtree.
//! - **Memo bookkeeping**: every produced subtree is hashed into a memo
//!   (group deduplication), a per-rewrite overhead Catalyst doesn't pay.

use crate::rules::{catalyst_rules, OptRule};
use std::collections::VecDeque;
use tt_ast::{Ast, FxHashSet, NodeId};
use tt_metrics::now_ns;
use tt_pattern::{match_node, TreeAttrs};

/// Time/work breakdown for an Orca-style run.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrcaBreakdown {
    /// Pattern-match + promise evaluation time.
    pub search_ns: u64,
    /// Time applying effective rewrites.
    pub effective_ns: u64,
    /// Memo (group hashing / deduplication) time.
    pub memo_ns: u64,
    /// Rewrites applied.
    pub effective_count: u64,
    /// Candidates whose promise rejected them.
    pub rejected_count: u64,
    /// Tasks processed.
    pub tasks: u64,
    /// Plan size before optimization.
    pub initial_size: usize,
    /// Plan size after optimization.
    pub final_size: usize,
}

impl OrcaBreakdown {
    /// Total time across phases.
    pub fn total_ns(&self) -> u64 {
        self.search_ns + self.effective_ns + self.memo_ns
    }

    /// Fraction of time in search (Figure 15b's axis).
    pub fn search_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.search_ns as f64 / total as f64
        }
    }
}

/// Structural hash of a subtree (labels + attribute values), used for the
/// memo's group signatures.
fn subtree_hash(ast: &Ast, root: NodeId) -> u64 {
    ast.structural_hash(root)
}

/// Runs the Orca-style optimizer to quiescence (or `max_tasks`).
pub fn optimize_orca(ast: &mut Ast, max_tasks: u64) -> OrcaBreakdown {
    let schema = ast.schema().clone();
    let rules: Vec<OptRule> = catalyst_rules(&schema, false);
    let mut bd = OrcaBreakdown {
        initial_size: ast.subtree_size(ast.root()),
        ..Default::default()
    };
    let mut memo: FxHashSet<u64> = FxHashSet::default();

    // Initial memo population: Orca copies the input plan into the memo.
    let m0 = now_ns();
    for n in ast.descendants(ast.root()).collect::<Vec<_>>() {
        let h = subtree_hash(ast, n);
        memo.insert(h);
    }
    bd.memo_ns += now_ns() - m0;

    // Seed: every (node, rule) pair.
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    for n in ast.descendants(ast.root()) {
        for rid in 0..rules.len() {
            queue.push_back((n, rid));
        }
    }

    // Rules are keyed by their pattern's root operator: Orca never runs
    // a rule's recursive match against a group whose operator id cannot
    // match (the xform's pattern root), so most tasks die on a
    // constant-time comparison.
    let root_labels: Vec<Option<tt_ast::Label>> =
        rules.iter().map(|r| r.rule.pattern.root_label()).collect();

    let mut tick = 0u64;
    while let Some((node, rid)) = queue.pop_front() {
        if bd.tasks >= max_tasks {
            break;
        }
        bd.tasks += 1;
        if !ast.is_live(node) {
            continue; // the group was consumed by an earlier rewrite
        }
        let opt = &rules[rid];
        // Pairwise recursive pattern/AST check + promise (Exfp), guarded
        // by the constant-time operator-id comparison.
        let s0 = now_ns();
        let label_ok = root_labels[rid].is_none_or(|l| ast.label(node) == l);
        let matched = if label_ok {
            match_node(ast, node, &opt.rule.pattern)
        } else {
            None
        };
        let verdict = matched.as_ref().map(|bindings| {
            opt.precise
                .as_ref()
                .is_none_or(|c| c.eval(&TreeAttrs { ast, bindings }))
        });
        bd.search_ns += now_ns() - s0;

        match (matched, verdict) {
            (Some(bindings), Some(true)) => {
                // Binding extraction: Orca copies the matched expression
                // out of the memo before handing it to the transform.
                let e0 = now_ns();
                let extraction = ast.clone_subtree(node);
                let applied = opt.rule.apply(ast, node, &bindings, tick);
                ast.free_subtree(extraction);
                tick += 1;
                bd.effective_ns += now_ns() - e0;
                bd.effective_count += 1;

                // Memo bookkeeping: register the produced group and every
                // new expression, then derive logical + statistics
                // properties for the new region (two attribute walks —
                // Orca's property derivation and stat promise machinery).
                let m1 = now_ns();
                memo.insert(subtree_hash(ast, applied.new_root));
                for &n in applied.inserted() {
                    memo.insert(subtree_hash(ast, n));
                }
                for _ in 0..2 {
                    for n in ast.descendants(applied.new_root) {
                        for v in ast.node(n).attrs() {
                            std::hint::black_box(v.heap_bytes());
                        }
                    }
                }
                bd.memo_ns += now_ns() - m1;

                // Re-enqueue the touched region: the replacement, its new
                // nodes, and the parent whose child pointer changed.
                let mut affected: Vec<NodeId> = vec![applied.new_root];
                affected.extend_from_slice(applied.inserted());
                let parent = ast.parent(applied.new_root);
                if !parent.is_null() {
                    affected.push(parent);
                }
                affected.sort_unstable();
                affected.dedup();
                for n in affected {
                    for r in 0..rules.len() {
                        queue.push_back((n, r));
                    }
                }
            }
            (Some(_), Some(false)) => bd.rejected_count += 1,
            _ => {}
        }
    }
    bd.final_size = ast.subtree_size(ast.root());
    bd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalyst::{optimize, SearchMode};
    use crate::schema::{plan_schema, PlanBuilder};

    fn messy_plan(ast: &mut Ast) {
        let mut b = PlanBuilder::new(ast);
        let t1 = b.table(1, [1, 2, 3]);
        let f1 = b.filter(5, [1], t1);
        let f2 = b.filter(6, [2], f1);
        let np = b.noop_project(f2);
        let t2 = b.table(2, [4, 5]);
        let j = b.join(9, np, t2);
        let f3 = b.filter(7, [1], j);
        let pr = b.project([1, 4], f3);
        let w = b.noop_window(pr);
        let root = b.sort(w);
        ast.set_root(root);
    }

    #[test]
    fn orca_reaches_a_reduced_plan() {
        let mut ast = Ast::new(plan_schema());
        messy_plan(&mut ast);
        let bd = optimize_orca(&mut ast, 1_000_000);
        assert!(bd.effective_count >= 4, "{bd:?}");
        assert!(bd.final_size < bd.initial_size);
        ast.validate().unwrap();
    }

    #[test]
    fn orca_and_catalyst_agree_on_plan_size() {
        let mut a = Ast::new(plan_schema());
        messy_plan(&mut a);
        let mut b = Ast::new(plan_schema());
        messy_plan(&mut b);
        let orca = optimize_orca(&mut a, 1_000_000);
        let cat = optimize(&mut b, SearchMode::NaiveScan, 50);
        assert_eq!(orca.final_size, cat.final_size);
    }

    #[test]
    fn orca_search_share_is_lower_than_catalyst_on_large_plans() {
        // Build a larger plan by chaining several messy blocks.
        let build = |ast: &mut Ast| {
            let mut b = PlanBuilder::new(ast);
            let mut node = b.table(1, [1, 2, 3]);
            for i in 0..40 {
                node = b.filter(i, [1], node);
                node = b.noop_project(node);
            }
            let root = b.sort(node);
            ast.set_root(root);
        };
        let mut a = Ast::new(plan_schema());
        build(&mut a);
        let mut c = Ast::new(plan_schema());
        build(&mut c);
        let orca = optimize_orca(&mut a, 10_000_000);
        let cat = optimize(&mut c, SearchMode::NaiveScan, 200);
        assert!(
            orca.search_fraction() < cat.search_fraction(),
            "orca {} !< catalyst {}",
            orca.search_fraction(),
            cat.search_fraction()
        );
    }

    #[test]
    fn memo_time_is_nonzero() {
        let mut ast = Ast::new(plan_schema());
        messy_plan(&mut ast);
        let bd = optimize_orca(&mut ast, 1_000_000);
        assert!(bd.memo_ns > 0);
        assert!(bd.tasks > 0);
    }

    #[test]
    fn task_cap_bounds_work() {
        let mut ast = Ast::new(plan_schema());
        messy_plan(&mut ast);
        let bd = optimize_orca(&mut ast, 5);
        assert!(bd.tasks <= 5);
    }
}
