//! The Catalyst-style batch-fixpoint optimizer, instrumented like the
//! paper's Figure 1: time is attributed to **Search** (pattern-match
//! attempts), **Ineffective Rewrites** (replacements constructed and
//! discarded), **Effective Rewrites** (replacements applied), and the
//! **Fixpoint Loop** (whole-plan comparison per iteration).
//!
//! Two search modes:
//! - [`SearchMode::NaiveScan`] — Scala-`transform`-style: every rule
//!   attempts a match at every node of every pass (the measured reality
//!   of Figure 1/14).
//! - [`SearchMode::TreeToasterViews`] — the paper's proposal as an
//!   ablation: folded (all-effective) rules with TreeToaster views;
//!   search collapses to O(1) view pops and the fixpoint test to
//!   emptiness checks.

use crate::rules::{catalyst_rules, catalyst_ruleset, OptRule};
use treetoaster_core::{MatchCore, ReplaceCtx, RuleFired, TreeToasterEngine};
use tt_ast::Ast;
use tt_metrics::now_ns;
use tt_pattern::{match_node, TreeAttrs};

/// How candidate nodes are found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Full-tree pattern matching per rule per pass.
    NaiveScan,
    /// TreeToaster incremental views (folded rules).
    TreeToasterViews,
}

/// The Figure-1 time breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    /// Pattern-match attempt time.
    pub search_ns: u64,
    /// Time constructing replacements that were then discarded.
    pub ineffective_ns: u64,
    /// Time constructing and applying replacements.
    pub effective_ns: u64,
    /// Outer-loop plan comparison time.
    pub fixpoint_ns: u64,
    /// View-maintenance time (TreeToaster mode only).
    pub maintain_ns: u64,
    /// Rewrites applied.
    pub effective_count: u64,
    /// Rewrites constructed then aborted.
    pub ineffective_count: u64,
    /// Outer-loop iterations run.
    pub iterations: u64,
    /// Plan size before optimization.
    pub initial_size: usize,
    /// Plan size after optimization.
    pub final_size: usize,
}

impl Breakdown {
    /// Total optimizer time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.search_ns
            + self.ineffective_ns
            + self.effective_ns
            + self.fixpoint_ns
            + self.maintain_ns
    }

    /// Fraction of total time spent searching (Figure 14b / 15b's axis).
    pub fn search_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.search_ns as f64 / total as f64
        }
    }
}

/// Optimizes the plan in place until a fixpoint or `max_iterations`.
pub fn optimize(ast: &mut Ast, mode: SearchMode, max_iterations: usize) -> Breakdown {
    match mode {
        SearchMode::NaiveScan => optimize_naive(ast, max_iterations),
        SearchMode::TreeToasterViews => optimize_tt(ast, max_iterations),
    }
}

fn optimize_naive(ast: &mut Ast, max_iterations: usize) -> Breakdown {
    let schema = ast.schema().clone();
    let rules = catalyst_rules(&schema, false);
    let mut bd = Breakdown {
        initial_size: ast.subtree_size(ast.root()),
        ..Default::default()
    };
    let mut tick = 0u64;
    for _ in 0..max_iterations {
        bd.iterations += 1;
        // Outer fixpoint comparison: Catalyst `fastEquals`-compares the
        // plan before and after each batch run — an O(n) traversal, no
        // copying. A structural hash charges the same walk.
        let f0 = now_ns();
        let before = ast.structural_hash(ast.root());
        bd.fixpoint_ns += now_ns() - f0;

        for rule in &rules {
            transform_down(ast, rule, &mut tick, &mut bd);
        }

        let f1 = now_ns();
        let unchanged = ast.structural_hash(ast.root()) == before;
        bd.fixpoint_ns += now_ns() - f1;
        if unchanged {
            break;
        }
    }
    bd.final_size = ast.subtree_size(ast.root());
    bd
}

/// One `transformDown` pass of `rule`: attempt a match at every node
/// (preorder); on a structural match run the precise check; apply or
/// construct-and-discard accordingly; recurse into the children of
/// whatever now occupies the position.
fn transform_down(ast: &mut Ast, opt: &OptRule, tick: &mut u64, bd: &mut Breakdown) {
    let mut stack = vec![ast.root()];
    while let Some(node) = stack.pop() {
        let s0 = now_ns();
        let matched = match_node(ast, node, &opt.rule.pattern);
        bd.search_ns += now_ns() - s0;
        match matched {
            None => stack.extend_from_slice(ast.children(node)),
            Some(bindings) => {
                // The rule body's own semantic test (part of search cost:
                // Catalyst evaluates it inside the case guard or at the
                // top of the body).
                let s1 = now_ns();
                let effective = opt.precise.as_ref().is_none_or(|c| {
                    c.eval(&TreeAttrs {
                        ast,
                        bindings: &bindings,
                    })
                });
                bd.search_ns += now_ns() - s1;
                if effective {
                    let e0 = now_ns();
                    let applied = opt.rule.apply(ast, node, &bindings, *tick);
                    *tick += 1;
                    bd.effective_ns += now_ns() - e0;
                    bd.effective_count += 1;
                    stack.extend_from_slice(ast.children(applied.new_root));
                } else {
                    // Ineffective: Catalyst's rule body has built a
                    // handful of fresh operator nodes (children are
                    // shared by reference in Scala) before discovering
                    // the result is unusable. Charge the equivalent:
                    // one fresh node per matched position, compared and
                    // discarded.
                    let i0 = now_ns();
                    let mut scratch = Vec::with_capacity(bindings.len());
                    for (_, bound) in bindings.iter() {
                        let label = ast.label(bound);
                        let attrs = ast.node(bound).attrs().to_vec();
                        scratch.push(ast.alloc(label, attrs, vec![]));
                    }
                    for (copy, (_, original)) in scratch.iter().zip(bindings.iter()) {
                        // fastEquals-style shallow comparison.
                        std::hint::black_box(
                            ast.label(*copy) == ast.label(original)
                                && ast.node(*copy).attrs() == ast.node(original).attrs(),
                        );
                    }
                    for n in scratch {
                        ast.free_subtree(n);
                    }
                    bd.ineffective_ns += now_ns() - i0;
                    bd.ineffective_count += 1;
                    stack.extend_from_slice(ast.children(node));
                }
            }
        }
    }
}

fn optimize_tt(ast: &mut Ast, max_iterations: usize) -> Breakdown {
    let schema = ast.schema().clone();
    let rules = catalyst_ruleset(&schema);
    let mut engine = TreeToasterEngine::new(rules.clone());
    let mut bd = Breakdown {
        initial_size: ast.subtree_size(ast.root()),
        ..Default::default()
    };

    let m0 = now_ns();
    engine.rebuild(ast);
    bd.maintain_ns += now_ns() - m0;

    let mut tick = 0u64;
    for _ in 0..max_iterations {
        bd.iterations += 1;
        let mut changed = false;
        for (rid, rule) in rules.iter() {
            loop {
                let s0 = now_ns();
                let site = engine.find_one(ast, rid);
                bd.search_ns += now_ns() - s0;
                let Some(site) = site else { break };

                let e0 = now_ns();
                let bindings =
                    match_node(ast, site, &rule.pattern).expect("view returned a stale match");
                bd.effective_ns += now_ns() - e0;

                let m1 = now_ns();
                engine.before_replace(ast, site, Some((rid, &bindings)));
                bd.maintain_ns += now_ns() - m1;

                let e1 = now_ns();
                let applied = rule.apply(ast, site, &bindings, tick);
                tick += 1;
                bd.effective_ns += now_ns() - e1;
                bd.effective_count += 1;

                let ctx = ReplaceCtx {
                    old_root: applied.old_root,
                    new_root: applied.new_root,
                    removed: &applied.removed,
                    inserted: applied.inserted(),
                    parent_update: applied.parent_update.as_ref(),
                    rule: Some(RuleFired {
                        rule: rid,
                        bindings: &bindings,
                        applied: &applied,
                    }),
                };
                let m2 = now_ns();
                engine.after_replace(ast, &ctx);
                bd.maintain_ns += now_ns() - m2;
                changed = true;
            }
        }
        // Fixpoint test: with exact views, quiescence is "all views
        // empty" — no whole-plan comparison needed.
        let f0 = now_ns();
        let quiescent = (0..rules.len()).all(|rid| engine.view(rid).is_empty());
        bd.fixpoint_ns += now_ns() - f0;
        if quiescent || !changed {
            break;
        }
    }
    bd.final_size = ast.subtree_size(ast.root());
    bd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{plan_schema, PlanBuilder};
    use tt_ast::NodeId;

    /// A plan with a mix of effective and ineffective opportunities.
    fn messy_plan(ast: &mut Ast) -> NodeId {
        let mut b = PlanBuilder::new(ast);
        let t1 = b.table(1, [1, 2, 3]);
        let f1 = b.filter(5, [1], t1);
        let f2 = b.filter(6, [2], f1); // stacked filters → CombineFilters
        let np = b.noop_project(f2); // → RemoveNoopProject
        let t2 = b.table(2, [4, 5]);
        let j = b.join(9, np, t2);
        let f3 = b.filter(7, [1], j); // refs ⊆ left → PushFilterThroughJoin
        let pr = b.project([1, 4], f3); // narrowing project (stays)
        let w = b.noop_window(pr); // → RemoveNoopWindow
        let root = b.sort(w);
        ast.set_root(root);
        root
    }

    #[test]
    fn naive_mode_reaches_fixpoint_and_shrinks_plan() {
        let mut ast = Ast::new(plan_schema());
        messy_plan(&mut ast);
        let bd = optimize(&mut ast, SearchMode::NaiveScan, 50);
        assert!(bd.effective_count >= 4, "several rewrites fire: {bd:?}");
        assert!(bd.final_size < bd.initial_size);
        assert!(bd.iterations >= 2, "fixpoint needs a clean final pass");
        ast.validate().unwrap();
    }

    #[test]
    fn tt_mode_reaches_the_same_plan() {
        let mut naive_ast = Ast::new(plan_schema());
        messy_plan(&mut naive_ast);
        let mut tt_ast = Ast::new(plan_schema());
        messy_plan(&mut tt_ast);
        let bd_naive = optimize(&mut naive_ast, SearchMode::NaiveScan, 50);
        let bd_tt = optimize(&mut tt_ast, SearchMode::TreeToasterViews, 50);
        assert_eq!(bd_naive.final_size, bd_tt.final_size);
        // Both normalize to structurally equal plans.
        // (Clone one into the other's arena for a cross-tree comparison.)
        let snapshot = tt_ast.clone_subtree(tt_ast.root());
        let _ = snapshot; // same-arena deep_eq below suffices:
        assert_eq!(
            tt_ast.subtree_size(tt_ast.root()),
            naive_ast.subtree_size(naive_ast.root())
        );
    }

    #[test]
    fn naive_mode_counts_ineffective_rewrites() {
        // A narrowing project over a table matches RemoveNoopProject's
        // weak guard but fails its precise check every pass.
        let mut ast = Ast::new(plan_schema());
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [1, 2]);
        let pr = b.project([1], t);
        ast.set_root(pr);
        let bd = optimize(&mut ast, SearchMode::NaiveScan, 50);
        assert!(bd.ineffective_count > 0);
        assert_eq!(bd.effective_count, 0);
        assert_eq!(bd.final_size, bd.initial_size);
    }

    #[test]
    fn tt_mode_has_no_ineffective_rewrites() {
        let mut ast = Ast::new(plan_schema());
        messy_plan(&mut ast);
        let bd = optimize(&mut ast, SearchMode::TreeToasterViews, 50);
        assert_eq!(
            bd.ineffective_count, 0,
            "folded rules are always applicable"
        );
        assert!(bd.maintain_ns > 0, "view maintenance is the traded cost");
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let mut ast = Ast::new(plan_schema());
        messy_plan(&mut ast);
        let bd = optimize(&mut ast, SearchMode::NaiveScan, 50);
        assert_eq!(
            bd.total_ns(),
            bd.search_ns + bd.ineffective_ns + bd.effective_ns + bd.fixpoint_ns + bd.maintain_ns
        );
        let f = bd.search_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.0, "naive mode always searches");
    }

    #[test]
    fn already_optimal_plan_converges_in_one_iteration() {
        let mut ast = Ast::new(plan_schema());
        let mut b = PlanBuilder::new(&mut ast);
        let t = b.table(1, [1, 2]);
        ast.set_root(t);
        let bd = optimize(&mut ast, SearchMode::NaiveScan, 50);
        assert_eq!(bd.iterations, 1);
        assert_eq!(bd.effective_count, 0);
    }
}
