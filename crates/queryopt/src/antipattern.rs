//! The UNION-ALL-doubling view-expansion antipattern (paper Appendix A).
//!
//! ```sql
//! CREATE VIEW TABLE_N AS
//! SELECT * FROM (SELECT * FROM TABLE_{N-1}
//!                UNION ALL SELECT * FROM TABLE_{N-1}) a,
//!               (SELECT * FROM TABLE_{N-1}
//!                UNION ALL SELECT * FROM TABLE_{N-1}) b
//! WHERE a.attr = b.attr
//! ```
//!
//! Each level references the previous view four times; after view
//! expansion the AST grows ~4× per level. The paper uses this to show
//! that search time scales linearly with AST size while its *share* of
//! optimization time stays high (Figures 14 and 15).

use crate::schema::{plan_schema, PlanBuilder};
use tt_ast::{Ast, NodeId};

const BASE_COLS: [u32; 3] = [1, 2, 3];

fn expand(b: &mut PlanBuilder<'_>, level: usize) -> NodeId {
    if level == 0 {
        return b.table(0, BASE_COLS);
    }
    // Four independent expansions of the previous level (view expansion
    // duplicates the subtree; there is no sharing).
    let a1 = expand(b, level - 1);
    let a2 = expand(b, level - 1);
    let b1 = expand(b, level - 1);
    let b2 = expand(b, level - 1);
    let left = b.union_all(a1, a2);
    let right = b.union_all(b1, b2);
    let join = b.join(level as i64, left, right);
    // The WHERE clause `a.attr = b.attr` references attribute instances
    // of *both* aliases — modeled as a column id outside either side's
    // output set, so PushFilterThroughJoin's weak guard matches every
    // pass but its precise check always rejects (an ineffective rewrite,
    // exactly the antipattern's behavior in Catalyst).
    let filter = b.filter(1000 + level as i64, [1, 900 + level as u32], join);
    // The SELECT * wrapper (a no-op projection).
    b.noop_project(filter)
}

/// Builds the expanded `TABLE_n` plan.
pub fn union_doubling(n: usize) -> Ast {
    let mut ast = Ast::new(plan_schema());
    let root = {
        let mut b = PlanBuilder::new(&mut ast);
        expand(&mut b, n)
    };
    ast.set_root(root);
    ast
}

/// Node count of the level-`n` expansion: `f(0)=1, f(n)=4f(n−1)+5`.
pub fn expected_size(n: usize) -> usize {
    if n == 0 {
        1
    } else {
        4 * expected_size(n - 1) + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalyst::{optimize, SearchMode};
    use crate::orca::optimize_orca;

    #[test]
    fn sizes_grow_four_fold() {
        for n in 0..6 {
            let ast = union_doubling(n);
            assert_eq!(ast.subtree_size(ast.root()), expected_size(n), "level {n}");
            ast.validate().unwrap();
        }
        assert_eq!(expected_size(0), 1);
        assert_eq!(expected_size(1), 9);
        assert_eq!(expected_size(2), 41);
    }

    #[test]
    fn catalyst_optimizes_the_antipattern() {
        let mut ast = union_doubling(3);
        let before = ast.subtree_size(ast.root());
        let bd = optimize(&mut ast, SearchMode::NaiveScan, 30);
        // No-op projects are removed; ineffective join-filter pushes are
        // attempted every pass.
        assert!(bd.effective_count > 0);
        assert!(bd.ineffective_count > 0);
        assert!(bd.final_size < before);
        ast.validate().unwrap();
    }

    #[test]
    fn orca_handles_the_antipattern() {
        let mut ast = union_doubling(3);
        let bd = optimize_orca(&mut ast, 10_000_000);
        assert!(bd.effective_count > 0);
        ast.validate().unwrap();
    }

    #[test]
    fn search_time_grows_with_ast_size() {
        // Not a strict benchmark, but across two sizes two levels apart
        // (16× nodes) search time must grow substantially.
        let mut small = union_doubling(2);
        let mut large = union_doubling(4);
        let bd_small = optimize(&mut small, SearchMode::NaiveScan, 30);
        let bd_large = optimize(&mut large, SearchMode::NaiveScan, 30);
        assert!(
            bd_large.search_ns > 4 * bd_small.search_ns,
            "search: small={} large={}",
            bd_small.search_ns,
            bd_large.search_ns
        );
    }
}
