//! Orca's transforms encoded in the paper's pattern grammar
//! (paper Appendix C + E).
//!
//! Appendix C gives schemas for Orca's `CExpression` nodes
//! (`CLogicalGet`, `CLogicalSelect`, `CLogicalInnerJoin`,
//! `CLogicalUnionAll`, …); Appendix E encodes its xforms — pattern plus
//! the `Exfp` promise as a constraint — in the `Q` grammar, e.g.:
//!
//! ```text
//! Get2TableScan:      Match(CLogicalGet, [exprhdl, t, pt, …], ∅, pt.isPartitioned)
//! Select2Filter:      Match(CLogicalSelect, […], q₁, exprhdl.hasSubQuery)
//! InnerJoin2NLJoin:   Match(CLogicalInnerJoin, […], q₁, q₂, …)
//! JoinCommutativity:  Match(CLogicalInnerJoin, […], q₁, q₂, exprhdl.id)
//! ```
//!
//! We reproduce that encoding as complete `⟨q, g⟩` rules: the promise
//! becomes a `Θ` constraint (negated where the C++ returns `ExfpNone`),
//! and the implementation xforms generate the corresponding physical
//! operators, reusing their relational children. Orca's n-ary join takes
//! its children through `CPatternMultiLeaf`; like the paper ("this is a
//! limitation we impose largely for simplicity of presentation") we fix
//! the arity — joins carry left, right, and a scalar predicate child.

use std::sync::Arc;
use treetoaster_core::generator::{acopy, gen, reuse, GenSpec};
use treetoaster_core::{RewriteRule, RuleSet};
use tt_ast::{Schema, SchemaBuilder};
use tt_pattern::dsl as p;
use tt_pattern::Pattern;

/// Builds the Orca `CExpression` schema (Appendix C, simplified to the
/// attributes the xform promises read).
pub fn orca_schema() -> Arc<Schema> {
    builder().finish()
}

fn builder() -> SchemaBuilder {
    Schema::builder()
        // Logical operators.
        .label("CLogicalGet", &["relname", "isPartitioned"], 0)
        .label("CLogicalSelect", &["hasSubquery"], 2) // relational child, predicate
        .label("CLogicalInnerJoin", &["joinId"], 3) // left, right, predicate
        .label("CLogicalUnionAll", &["arity"], 2)
        // Scalars (predicate subtrees are opaque leaves here).
        .label("CScalarCmp", &["condId"], 0)
        // Physical operators the implementation xforms produce.
        .label("CPhysicalTableScan", &["relname"], 0)
        .label("CPhysicalFilter", &[], 2)
        .label("CPhysicalNLJoin", &["joinId"], 3)
        .label("CPhysicalHashJoin", &["joinId"], 3)
        .label("CPhysicalUnionAll", &["arity"], 2)
}

fn rule(
    name: &str,
    schema: &Arc<Schema>,
    pattern: tt_pattern::dsl::PatSpec,
    generator: GenSpec,
) -> RewriteRule {
    RewriteRule::new(name, schema, Pattern::compile(schema, pattern), generator)
}

/// E.5 Get2TableScan — promise `ExfpNone` when the table is partitioned.
fn get_to_table_scan(schema: &Arc<Schema>) -> RewriteRule {
    rule(
        "Get2TableScan",
        schema,
        p::node(
            "CLogicalGet",
            "G",
            [],
            p::eq(p::attr("G", "isPartitioned"), p::boolean(false)),
        ),
        gen(
            "CPhysicalTableScan",
            [("relname", acopy("G", "relname"))],
            [],
        ),
    )
}

/// E.6 Select2Filter — promise `ExfpNone` when the predicate carries a
/// subquery (they "must be unnested before applying xform").
fn select_to_filter(schema: &Arc<Schema>) -> RewriteRule {
    rule(
        "Select2Filter",
        schema,
        p::node(
            "CLogicalSelect",
            "S",
            [p::any_as("rel"), p::any_as("pred")],
            p::eq(p::attr("S", "hasSubquery"), p::boolean(false)),
        ),
        gen("CPhysicalFilter", [], [reuse("rel"), reuse("pred")]),
    )
}

/// E.7/E.8 InnerJoin2{NL,Hash}Join — both share the three-leaf pattern;
/// the paper encodes the promise as `ExfpLogicalJoin2PhysicalJoin`. We
/// route odd join ids to nested loops and even ones to hash joins so the
/// two xforms partition the work deterministically.
fn inner_join_impl(schema: &Arc<Schema>, hash: bool) -> RewriteRule {
    let parity = |var: &str| {
        // joinId mod 2: 0 → hash-joinable (equi-join), 1 → NL.
        p::eq(
            p::sub(
                p::attr(var, "joinId"),
                p::mul(p::div(p::attr(var, "joinId"), p::int(2)), p::int(2)),
            ),
            p::int(if hash { 0 } else { 1 }),
        )
    };
    rule(
        if hash {
            "InnerJoin2HashJoin"
        } else {
            "InnerJoin2NLJoin"
        },
        schema,
        p::node(
            "CLogicalInnerJoin",
            "J",
            [p::any_as("left"), p::any_as("right"), p::any_as("pred")],
            parity("J"),
        ),
        gen(
            if hash {
                "CPhysicalHashJoin"
            } else {
                "CPhysicalNLJoin"
            },
            [("joinId", acopy("J", "joinId"))],
            [reuse("left"), reuse("right"), reuse("pred")],
        ),
    )
}

/// E.9 JoinCommutativity — an exploration xform: swap the join inputs.
/// Its `FCompatible` guard stops it from firing on its own output; we
/// encode that with a parity flip on `joinId` so a single application
/// marks the expression as already-commuted.
fn join_commutativity(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "CLogicalInnerJoin",
            "J",
            [p::any_as("left"), p::any_as("right"), p::any_as("pred")],
            p::lt(p::attr("J", "joinId"), p::int(0)),
        ),
    );
    let joinid = pattern.var("J").expect("binds J");
    let flipped = treetoaster_core::generator::acompute("negateJoinId", move |ctx| {
        let attr = ctx.ast.schema().expect_attr("joinId");
        tt_ast::Value::Int(-ctx.ast.attr(ctx.bindings.get(joinid), attr).as_int())
    });
    RewriteRule::new(
        "JoinCommutativity",
        schema,
        pattern,
        gen(
            "CLogicalInnerJoin",
            [("joinId", flipped)],
            [reuse("right"), reuse("left"), reuse("pred")],
        ),
    )
}

/// E.10 ImplementUnionAll.
fn implement_union_all(schema: &Arc<Schema>) -> RewriteRule {
    rule(
        "ImplementUnionAll",
        schema,
        p::node(
            "CLogicalUnionAll",
            "U",
            [p::any_as("a"), p::any_as("b")],
            p::tru(),
        ),
        gen(
            "CPhysicalUnionAll",
            [("arity", acopy("U", "arity"))],
            [reuse("a"), reuse("b")],
        ),
    )
}

/// The Appendix-E xform set: exploration (JoinCommutativity) first, then
/// the implementation xforms.
pub fn orca_xforms(schema: &Arc<Schema>) -> RuleSet {
    RuleSet::from_rules(vec![
        join_commutativity(schema),
        get_to_table_scan(schema),
        select_to_filter(schema),
        inner_join_impl(schema, false),
        inner_join_impl(schema, true),
        implement_union_all(schema),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use treetoaster_core::{MatchCore, NaiveStrategy, TreeToasterEngine};
    use tt_ast::{Ast, NodeId, Value};
    use tt_pattern::match_node;

    /// Builds `SELECT ... FROM (a ⋈ b) WHERE p` as a logical CExpression.
    fn logical_plan(ast: &mut Ast, join_id: i64, partitioned: bool) -> NodeId {
        let s = ast.schema().clone();
        let get = |ast: &mut Ast, name: &str, part: bool| {
            ast.alloc(
                s.expect_label("CLogicalGet"),
                vec![Value::str(name), Value::Bool(part)],
                vec![],
            )
        };
        let a = get(ast, "lineitem", partitioned);
        let b = get(ast, "orders", false);
        let join_pred = ast.alloc(s.expect_label("CScalarCmp"), vec![Value::Int(1)], vec![]);
        let join = ast.alloc(
            s.expect_label("CLogicalInnerJoin"),
            vec![Value::Int(join_id)],
            vec![a, b, join_pred],
        );
        let sel_pred = ast.alloc(s.expect_label("CScalarCmp"), vec![Value::Int(2)], vec![]);
        ast.alloc(
            s.expect_label("CLogicalSelect"),
            vec![Value::Bool(false)],
            vec![join, sel_pred],
        )
    }

    fn drive_to_fixpoint(ast: &mut Ast, rules: &Arc<RuleSet>) -> usize {
        let mut naive = NaiveStrategy::new(rules.clone());
        let mut applied = 0;
        let mut tick = 0;
        loop {
            let mut fired = false;
            for (rid, rule) in rules.iter() {
                while let Some(site) = naive.find_one(ast, rid) {
                    let b = match_node(ast, site, &rule.pattern).unwrap();
                    rule.apply(ast, site, &b, tick);
                    tick += 1;
                    applied += 1;
                    fired = true;
                    assert!(applied < 1000, "xforms must terminate");
                }
            }
            if !fired {
                break;
            }
        }
        applied
    }

    #[test]
    fn logical_plan_lowers_to_physical() {
        let schema = orca_schema();
        let rules = Arc::new(orca_xforms(&schema));
        let mut ast = Ast::new(schema.clone());
        // Even join id → hash join path.
        let root = logical_plan(&mut ast, 42, false);
        ast.set_root(root);
        let applied = drive_to_fixpoint(&mut ast, &rules);
        assert!(applied >= 4, "get×2 + join + select lowered");
        // Every remaining operator is physical or scalar.
        for n in ast.descendants(ast.root()) {
            let name = schema.label_name(ast.label(n));
            assert!(
                name.starts_with("CPhysical") || name.starts_with("CScalar"),
                "unlowered operator {name}"
            );
        }
        // The join became a hash join (even id).
        let filter = ast.root();
        assert_eq!(schema.label_name(ast.label(filter)), "CPhysicalFilter");
        let join = ast.children(filter)[0];
        assert_eq!(schema.label_name(ast.label(join)), "CPhysicalHashJoin");
        ast.validate().unwrap();
    }

    #[test]
    fn odd_join_ids_take_the_nl_path() {
        let schema = orca_schema();
        let rules = Arc::new(orca_xforms(&schema));
        let mut ast = Ast::new(schema.clone());
        let root = logical_plan(&mut ast, 7, false);
        ast.set_root(root);
        drive_to_fixpoint(&mut ast, &rules);
        let join = ast.children(ast.root())[0];
        assert_eq!(schema.label_name(ast.label(join)), "CPhysicalNLJoin");
    }

    #[test]
    fn partitioned_get_blocks_table_scan_promise() {
        // E.5: promise returns ExfpNone for partitioned tables, so the
        // Get never lowers and the fixpoint leaves it logical.
        let schema = orca_schema();
        let rules = Arc::new(orca_xforms(&schema));
        let mut ast = Ast::new(schema.clone());
        let root = logical_plan(&mut ast, 4, true);
        ast.set_root(root);
        drive_to_fixpoint(&mut ast, &rules);
        let logical_gets = ast
            .descendants(ast.root())
            .filter(|&n| schema.label_name(ast.label(n)) == "CLogicalGet")
            .count();
        assert_eq!(logical_gets, 1, "the partitioned get survives");
    }

    #[test]
    fn join_commutativity_fires_once_and_swaps() {
        let schema = orca_schema();
        let rules = Arc::new(orca_xforms(&schema));
        let mut ast = Ast::new(schema.clone());
        let s = schema.clone();
        let a = ast.alloc(
            s.expect_label("CLogicalGet"),
            vec![Value::str("a"), Value::Bool(true)], // partitioned: stays logical
            vec![],
        );
        let b = ast.alloc(
            s.expect_label("CLogicalGet"),
            vec![Value::str("b"), Value::Bool(true)],
            vec![],
        );
        let pred = ast.alloc(s.expect_label("CScalarCmp"), vec![Value::Int(1)], vec![]);
        // Negative join id marks "not yet commuted".
        let join = ast.alloc(
            s.expect_label("CLogicalInnerJoin"),
            vec![Value::Int(-9)],
            vec![a, b, pred],
        );
        ast.set_root(join);
        drive_to_fixpoint(&mut ast, &rules);
        // After commuting (id 9 → odd → NL join), children are swapped.
        let root = ast.root();
        assert_eq!(schema.label_name(ast.label(root)), "CPhysicalNLJoin");
        let relname = s.expect_attr("relname");
        assert_eq!(ast.attr(ast.children(root)[0], relname).as_str(), "b");
        assert_eq!(ast.attr(ast.children(root)[1], relname).as_str(), "a");
    }

    #[test]
    fn xforms_maintainable_by_treetoaster_views() {
        // The whole point of encoding Appendix E in the Q grammar: the
        // xform set drops into TreeToaster unchanged.
        let schema = orca_schema();
        let rules = Arc::new(orca_xforms(&schema));
        let mut ast = Ast::new(schema.clone());
        let root = logical_plan(&mut ast, 10, false);
        ast.set_root(root);
        let mut engine = TreeToasterEngine::new(rules.clone());
        engine.rebuild(&ast);
        engine.check_views_correct(&ast).unwrap();
        let mut tick = 0;
        loop {
            let mut fired = false;
            for (rid, rule) in rules.iter() {
                while let Some(site) = engine.find_one(&ast, rid) {
                    let b = match_node(&ast, site, &rule.pattern).unwrap();
                    engine.before_replace(&ast, site, Some((rid, &b)));
                    let applied = rule.apply(&mut ast, site, &b, tick);
                    tick += 1;
                    let ctx = treetoaster_core::ReplaceCtx {
                        old_root: applied.old_root,
                        new_root: applied.new_root,
                        removed: &applied.removed,
                        inserted: applied.inserted(),
                        parent_update: applied.parent_update.as_ref(),
                        rule: Some(treetoaster_core::RuleFired {
                            rule: rid,
                            bindings: &b,
                            applied: &applied,
                        }),
                    };
                    engine.after_replace(&ast, &ctx);
                    fired = true;
                }
            }
            engine.check_views_correct(&ast).unwrap();
            if !fired {
                break;
            }
        }
        assert!(
            ast.descendants(ast.root())
                .all(|n| !schema.label_name(ast.label(n)).starts_with("CLogical")),
            "fully lowered under view-driven search"
        );
    }
}
