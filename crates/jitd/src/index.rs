//! The JITD key/value index over the AST.
//!
//! Reads resolve *last-writer-wins* shadowing: an insert wraps the root in
//! `Concat(old, Singleton)` (the right child is newer), a delete wraps it
//! in `DeleteSingleton(key, old)`. `get` therefore searches Concat right
//! children first, treats a matching `DeleteSingleton` as a tombstone, and
//! routes through `BinTree` separators (`key < sep` → left).

use crate::schema::jitd_schema;
use std::collections::BTreeMap;
use tt_ast::{Ast, AttrName, Label, NodeId, Record, Value};

/// Interned labels/attributes of the JITD schema, for hot-path access.
#[derive(Debug, Clone, Copy)]
pub struct JitdLabels {
    /// `Array` label.
    pub array: Label,
    /// `Singleton` label.
    pub singleton: Label,
    /// `DeleteSingleton` label.
    pub delete_singleton: Label,
    /// `Concat` label.
    pub concat: Label,
    /// `BinTree` label.
    pub bintree: Label,
    /// `Array.data`.
    pub data: AttrName,
    /// `Array.size`.
    pub size: AttrName,
    /// `Singleton.key` / `DeleteSingleton.key`.
    pub key: AttrName,
    /// `Singleton.value`.
    pub value: AttrName,
    /// `BinTree.sep`.
    pub sep: AttrName,
}

impl JitdLabels {
    /// Interns from the JITD schema.
    pub fn of(schema: &tt_ast::Schema) -> JitdLabels {
        JitdLabels {
            array: schema.expect_label("Array"),
            singleton: schema.expect_label("Singleton"),
            delete_singleton: schema.expect_label("DeleteSingleton"),
            concat: schema.expect_label("Concat"),
            bintree: schema.expect_label("BinTree"),
            data: schema.expect_attr("data"),
            size: schema.expect_attr("size"),
            key: schema.expect_attr("key"),
            value: schema.expect_attr("value"),
            sep: schema.expect_attr("sep"),
        }
    }
}

/// Probe result during shadow-aware search.
enum Probe {
    Found(i64),
    Tombstone,
    Missing,
}

/// The index: an [`Ast`] plus the interned schema handles.
pub struct JitdIndex {
    ast: Ast,
    labels: JitdLabels,
}

impl JitdIndex {
    /// An empty index (root is an empty Array).
    pub fn new() -> JitdIndex {
        let schema = jitd_schema();
        let labels = JitdLabels::of(&schema);
        let mut ast = Ast::new(schema);
        let root = ast.alloc(
            labels.array,
            vec![Value::recs(vec![]), Value::Int(0)],
            vec![],
        );
        ast.set_root(root);
        JitdIndex { ast, labels }
    }

    /// Loads `records` (sorted by key; duplicate keys last-wins) as one
    /// big root Array — the paper's initial state for cracking.
    pub fn load(records: Vec<Record>) -> JitdIndex {
        let mut sorted = records;
        sorted.sort_by_key(|r| r.key);
        sorted.dedup_by_key(|r| r.key);
        let schema = jitd_schema();
        let labels = JitdLabels::of(&schema);
        let mut ast = Ast::new(schema);
        let size = sorted.len() as i64;
        let root = ast.alloc(
            labels.array,
            vec![Value::recs(sorted), Value::Int(size)],
            vec![],
        );
        ast.set_root(root);
        JitdIndex { ast, labels }
    }

    /// The underlying AST.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Mutable AST access (for the reorganizer).
    pub fn ast_mut(&mut self) -> &mut Ast {
        &mut self.ast
    }

    /// The interned handles.
    pub fn labels(&self) -> &JitdLabels {
        &self.labels
    }

    /// Point lookup with shadowing semantics.
    pub fn get(&self, key: i64) -> Option<i64> {
        match self.probe(self.ast.root(), key) {
            Probe::Found(v) => Some(v),
            _ => None,
        }
    }

    fn probe(&self, node: NodeId, key: i64) -> Probe {
        let l = &self.labels;
        let label = self.ast.label(node);
        if label == l.concat {
            let ch = self.ast.children(node);
            // Right child is newer.
            match self.probe(ch[1], key) {
                Probe::Missing => self.probe(ch[0], key),
                hit => hit,
            }
        } else if label == l.bintree {
            let sep = self.ast.attr(node, l.sep).as_int();
            let ch = self.ast.children(node);
            if key < sep {
                self.probe(ch[0], key)
            } else {
                self.probe(ch[1], key)
            }
        } else if label == l.singleton {
            if self.ast.attr(node, l.key).as_int() == key {
                Probe::Found(self.ast.attr(node, l.value).as_int())
            } else {
                Probe::Missing
            }
        } else if label == l.delete_singleton {
            if self.ast.attr(node, l.key).as_int() == key {
                Probe::Tombstone
            } else {
                self.probe(self.ast.children(node)[0], key)
            }
        } else {
            debug_assert_eq!(label, l.array);
            let data = self.ast.attr(node, l.data).as_recs();
            match data.binary_search_by_key(&key, |r| r.key) {
                Ok(at) => Probe::Found(data[at].value),
                Err(_) => Probe::Missing,
            }
        }
    }

    /// Range scan: up to `n` live records with `key ≥ low`, ascending.
    pub fn scan(&self, low: i64, n: usize) -> Vec<Record> {
        let mut acc: BTreeMap<i64, ScanEntry> = BTreeMap::new();
        // First writer wins, so traverse newest-first.
        self.collect(self.ast.root(), low, &mut acc);
        acc.into_iter()
            .filter_map(|(k, e)| match e {
                ScanEntry::Val(v) => Some(Record::new(k, v)),
                ScanEntry::Tomb => None,
            })
            .take(n)
            .collect()
    }

    fn collect(&self, node: NodeId, low: i64, acc: &mut BTreeMap<i64, ScanEntry>) {
        let l = &self.labels;
        let label = self.ast.label(node);
        if label == l.concat {
            let ch = self.ast.children(node);
            self.collect(ch[1], low, acc); // newer first
            self.collect(ch[0], low, acc);
        } else if label == l.bintree {
            let sep = self.ast.attr(node, l.sep).as_int();
            let ch = self.ast.children(node);
            if low < sep {
                self.collect(ch[0], low, acc);
            }
            self.collect(ch[1], low, acc);
        } else if label == l.singleton {
            let key = self.ast.attr(node, l.key).as_int();
            if key >= low {
                acc.entry(key)
                    .or_insert(ScanEntry::Val(self.ast.attr(node, l.value).as_int()));
            }
        } else if label == l.delete_singleton {
            let key = self.ast.attr(node, l.key).as_int();
            if key >= low {
                acc.entry(key).or_insert(ScanEntry::Tomb);
            }
            self.collect(self.ast.children(node)[0], low, acc);
        } else {
            let data = self.ast.attr(node, l.data).as_recs();
            let start = data.partition_point(|r| r.key < low);
            for r in &data[start..] {
                acc.entry(r.key).or_insert(ScanEntry::Val(r.value));
            }
        }
    }

    /// Wraps the root for an insert: `root := Concat(root, Singleton)`.
    /// Returns the created nodes (for strategy `on_graft` notification).
    pub fn wrap_insert(&mut self, key: i64, value: i64) -> Vec<NodeId> {
        let l = self.labels;
        let old_root = self.ast.root();
        self.ast.detach(old_root);
        let singleton = self.ast.alloc(
            l.singleton,
            vec![Value::Int(key), Value::Int(value)],
            vec![],
        );
        let concat = self.ast.alloc(l.concat, vec![], vec![old_root, singleton]);
        self.ast.set_root(concat);
        vec![singleton, concat]
    }

    /// Wraps the root for a delete: `root := DeleteSingleton(key, root)`.
    pub fn wrap_delete(&mut self, key: i64) -> Vec<NodeId> {
        let l = self.labels;
        let old_root = self.ast.root();
        self.ast.detach(old_root);
        let ds = self
            .ast
            .alloc(l.delete_singleton, vec![Value::Int(key)], vec![old_root]);
        self.ast.set_root(ds);
        vec![ds]
    }

    /// Structural sanity: BinTree separators partition their subtrees'
    /// key ranges and Array `size` attributes match their data.
    pub fn check_structure(&self) -> Result<(), String> {
        self.ast.validate()?;
        self.check_range(self.ast.root(), i64::MIN, i64::MAX)
    }

    fn check_range(&self, node: NodeId, lo: i64, hi: i64) -> Result<(), String> {
        let l = &self.labels;
        let label = self.ast.label(node);
        let in_range = |k: i64| lo <= k && k < hi;
        if label == l.bintree {
            let sep = self.ast.attr(node, l.sep).as_int();
            if !in_range(sep) {
                return Err(format!("separator {sep} outside [{lo},{hi}) at {node:?}"));
            }
            let ch = self.ast.children(node);
            self.check_range(ch[0], lo, sep)?;
            self.check_range(ch[1], sep, hi)
        } else if label == l.concat {
            let ch = self.ast.children(node);
            self.check_range(ch[0], lo, hi)?;
            self.check_range(ch[1], lo, hi)
        } else if label == l.delete_singleton {
            let k = self.ast.attr(node, l.key).as_int();
            if !in_range(k) {
                return Err(format!("tombstone key {k} outside [{lo},{hi})"));
            }
            self.check_range(self.ast.children(node)[0], lo, hi)
        } else if label == l.singleton {
            let k = self.ast.attr(node, l.key).as_int();
            if !in_range(k) {
                return Err(format!("singleton key {k} outside [{lo},{hi})"));
            }
            Ok(())
        } else {
            let data = self.ast.attr(node, l.data).as_recs();
            let size = self.ast.attr(node, l.size).as_int();
            if size as usize != data.len() {
                return Err(format!("array size attr {size} != data len {}", data.len()));
            }
            if !data.windows(2).all(|w| w[0].key < w[1].key) {
                return Err("array not strictly sorted".into());
            }
            if let (Some(first), Some(last)) = (data.first(), data.last()) {
                if !in_range(first.key) || !in_range(last.key) {
                    return Err(format!(
                        "array range [{},{}] outside [{lo},{hi})",
                        first.key, last.key
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Scan entries, bridged through `From` so `collect` can stay generic.
#[derive(Clone, Copy)]
enum ScanEntry {
    Val(i64),
    Tomb,
}

impl Default for JitdIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(pairs: &[(i64, i64)]) -> Vec<Record> {
        pairs.iter().map(|&(k, v)| Record::new(k, v)).collect()
    }

    #[test]
    fn load_and_get() {
        let idx = JitdIndex::load(recs(&[(1, 10), (5, 50), (9, 90)]));
        assert_eq!(idx.get(1), Some(10));
        assert_eq!(idx.get(5), Some(50));
        assert_eq!(idx.get(9), Some(90));
        assert_eq!(idx.get(4), None);
        idx.check_structure().unwrap();
    }

    #[test]
    fn insert_shadows_older_values() {
        let mut idx = JitdIndex::load(recs(&[(1, 10), (2, 20)]));
        idx.wrap_insert(1, 111);
        assert_eq!(idx.get(1), Some(111), "newer singleton wins");
        assert_eq!(idx.get(2), Some(20));
        idx.check_structure().unwrap();
    }

    #[test]
    fn delete_creates_tombstone_and_insert_resurrects() {
        let mut idx = JitdIndex::load(recs(&[(1, 10), (2, 20)]));
        idx.wrap_delete(1);
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.get(2), Some(20));
        idx.wrap_insert(1, 12);
        assert_eq!(idx.get(1), Some(12), "later insert shadows tombstone");
        idx.check_structure().unwrap();
    }

    #[test]
    fn scan_merges_and_honors_tombstones() {
        let mut idx = JitdIndex::load(recs(&[(1, 10), (3, 30), (5, 50), (7, 70)]));
        idx.wrap_delete(3);
        idx.wrap_insert(5, 55);
        idx.wrap_insert(2, 22);
        let out = idx.scan(2, 10);
        assert_eq!(out, recs(&[(2, 22), (5, 55), (7, 70)]));
        let limited = idx.scan(2, 2);
        assert_eq!(limited, recs(&[(2, 22), (5, 55)]));
    }

    #[test]
    fn empty_index_behaves() {
        let idx = JitdIndex::new();
        assert_eq!(idx.get(1), None);
        assert!(idx.scan(0, 5).is_empty());
        idx.check_structure().unwrap();
    }

    #[test]
    fn load_dedupes_by_key() {
        let idx = JitdIndex::load(recs(&[(1, 10), (1, 11), (2, 20)]));
        // Strictly sorted after dedup; structure check enforces it.
        idx.check_structure().unwrap();
        assert_eq!(idx.scan(0, 10).len(), 2);
    }
}
