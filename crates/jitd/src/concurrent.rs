//! The asynchronous background reorganizer, at shard granularity.
//!
//! The paper's host system "allow\[s\] a JIT runtime to incrementally and
//! asynchronously rewrite [the AST] in the background using
//! pattern-replacement rules" (§1, §7.1). This module runs a fleet of
//! [`Jitd`] runtimes — the key space range-partitioned by
//! `key mod shards` — each behind its **own** mutex with its own
//! dedicated worker thread. Locking is per shard: a reorganization burst
//! on shard 0 never blocks an operation (or another burst) on shard 1,
//! so independent subtrees reorganize genuinely concurrently — the same
//! isolation the forest layer gives the view-maintenance structures.
//!
//! `spawn` with one shard is the paper's original single-mutex
//! deployment, unchanged. The benchmark figures use the synchronous
//! [`Jitd`] driver directly so measured quantities stay attributable;
//! this module demonstrates and tests the concurrent deployment.

use crate::rules::RuleConfig;
use crate::runtime::{Jitd, StrategyKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tt_ast::Record;
use tt_ycsb::Op;

struct Shard {
    jitd: Mutex<Jitd>,
}

struct Shared {
    shards: Vec<Shard>,
    stop: AtomicBool,
}

/// A sharded [`Jitd`] fleet with one background reorganization thread
/// per shard.
pub struct AsyncJitd {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<u64>>,
}

impl AsyncJitd {
    /// Single-shard deployment (the paper's original serialized model).
    pub fn spawn(kind: StrategyKind, config: RuleConfig, records: Vec<Record>) -> AsyncJitd {
        AsyncJitd::spawn_sharded(kind, config, records, 1)
    }

    /// Partitions `records` across `shards` runtimes (`key mod shards`)
    /// and spawns one background reorganizer per shard.
    pub fn spawn_sharded(
        kind: StrategyKind,
        config: RuleConfig,
        records: Vec<Record>,
        shards: usize,
    ) -> AsyncJitd {
        assert!(shards >= 1, "need at least one shard");
        let mut parts: Vec<Vec<Record>> = (0..shards).map(|_| Vec::new()).collect();
        for r in records {
            parts[r.key.rem_euclid(shards as i64) as usize].push(r);
        }
        let shared = Arc::new(Shared {
            shards: parts
                .into_iter()
                .map(|part| Shard {
                    jitd: Mutex::new(Jitd::new(kind, config, part)),
                })
                .collect(),
            stop: AtomicBool::new(false),
        });
        let workers = (0..shards)
            .map(|i| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut applied = 0u64;
                    while !shared.stop.load(Ordering::Acquire) {
                        let fired = {
                            let mut jitd = shared.shards[i].jitd.lock();
                            jitd.reorganize_round()
                        };
                        applied += fired as u64;
                        if fired == 0 {
                            // Quiescent: yield until new work arrives.
                            std::thread::yield_now();
                        }
                    }
                    applied
                })
            })
            .collect();
        AsyncJitd { shared, workers }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    #[inline]
    fn shard_of(&self, key: i64) -> &Shard {
        let n = self.shared.shards.len();
        &self.shared.shards[key.rem_euclid(n as i64) as usize]
    }

    /// Runs `f` under one shard's lock — the maintenance/inspection
    /// hatch (tests use it to prove shard independence: holding one
    /// shard here must not block operations on any other).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Jitd) -> R) -> R {
        f(&mut self.shared.shards[shard].jitd.lock())
    }

    /// Executes one operation, serialized only against its own shard's
    /// reorganizer. Scans merge across shards.
    pub fn execute(&self, op: &Op) {
        match *op {
            Op::Scan { key, len } => {
                std::hint::black_box(self.scan(key, len));
            }
            Op::Read { key }
            | Op::Update { key, .. }
            | Op::Insert { key, .. }
            | Op::ReadModifyWrite { key, .. } => {
                self.shard_of(key).jitd.lock().execute(op);
            }
        }
    }

    /// Point read (locks one shard).
    pub fn get(&self, key: i64) -> Option<i64> {
        self.shard_of(key).jitd.lock().index().get(key)
    }

    /// Range scan: per-shard scans merged by key, truncated to `n`.
    /// Shards are locked one at a time, never all at once.
    pub fn scan(&self, low: i64, n: usize) -> Vec<Record> {
        let mut all: Vec<Record> = Vec::new();
        for shard in &self.shared.shards {
            all.extend(shard.jitd.lock().index().scan(low, n));
        }
        all.sort_by_key(|r| r.key);
        all.truncate(n);
        all
    }

    /// Tombstone delete (locks one shard).
    pub fn delete(&self, key: i64) {
        self.shard_of(key).jitd.lock().delete(key);
    }

    /// Stops every reorganizer and returns the runtimes (shard order)
    /// plus the total rewrites the background threads applied.
    pub fn stop(mut self) -> (Vec<Jitd>, u64) {
        self.shared.stop.store(true, Ordering::Release);
        let applied: u64 = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("reorganizer thread must not panic"))
            .sum();
        // The workers have exited and hold no references; unwrap the
        // runtimes. (`self` implements Drop, so move the Arc out by hand.)
        let shared = self.shared.clone();
        drop(self);
        let shared = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("outstanding handles to the runtime"));
        let runtimes = shared
            .shards
            .into_iter()
            .map(|s| s.jitd.into_inner())
            .collect();
        (runtimes, applied)
    }
}

impl Drop for AsyncJitd {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tt_ycsb::{Workload, WorkloadSpec};

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|k| Record::new(k, k * 5)).collect()
    }

    #[test]
    fn background_reorganizer_applies_rewrites() {
        let jitd = AsyncJitd::spawn(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(2048),
        );
        // Give the worker a moment to crack the initial array.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if jitd.get(100) == Some(500) {
                // Reads work mid-reorganization.
            }
            let snapshot = jitd.with_shard(0, |j| j.stats.steps);
            if snapshot > 0 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::yield_now();
        }
        let (runtimes, applied) = jitd.stop();
        assert!(applied > 0, "background thread applied rewrites");
        runtimes[0].index().check_structure().unwrap();
    }

    #[test]
    fn concurrent_ops_preserve_semantics() {
        let n = 512i64;
        let jitd = AsyncJitd::spawn_sharded(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(n),
            3,
        );
        let mut model: BTreeMap<i64, i64> = (0..n).map(|k| (k, k * 5)).collect();
        let mut workload = Workload::new(WorkloadSpec::standard('A'), n as u64, 321);
        for _ in 0..300 {
            let op = workload.next_op();
            match op {
                Op::Update { key, value } | Op::Insert { key, value } => {
                    model.insert(key, value);
                }
                Op::ReadModifyWrite { key, value } => {
                    let prior = model.get(&key).copied().unwrap_or(0);
                    model.insert(key, value ^ prior);
                }
                _ => {}
            }
            jitd.execute(&op);
        }
        for k in (0..n).step_by(7) {
            assert_eq!(jitd.get(k), model.get(&k).copied(), "key {k}");
        }
        // Cross-shard scan merges correctly.
        let want: Vec<Record> = model
            .range(100..)
            .take(20)
            .map(|(&k, &v)| Record::new(k, v))
            .collect();
        assert_eq!(jitd.scan(100, 20), want);
        jitd.delete(3);
        model.remove(&3);
        assert_eq!(jitd.get(3), None);
        let (mut runtimes, _) = jitd.stop();
        for runtime in &mut runtimes {
            runtime.reorganize_until_quiet(100_000);
            runtime.index().check_structure().unwrap();
            runtime.agreement_with_naive().unwrap();
        }
        // Every key still reads correctly through its owning shard.
        for k in 0..n {
            let shard = k.rem_euclid(3) as usize;
            assert_eq!(
                runtimes[shard].index().get(k),
                model.get(&k).copied(),
                "key {k} post-stop"
            );
        }
    }

    /// The shard-granularity claim: while one shard's lock is held (a
    /// long reorganization, say), operations on another shard proceed.
    /// Under the old global `Mutex<Jitd>` this test deadlocks until the
    /// timeout; under per-shard locks it completes immediately.
    #[test]
    fn shards_reorganize_and_serve_concurrently() {
        let jitd = Arc::new(AsyncJitd::spawn_sharded(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            records(1024),
            2,
        ));
        assert_eq!(jitd.shard_count(), 2);
        let (tx, rx) = std::sync::mpsc::channel();
        // Hold shard 0's lock and, from inside the critical section,
        // drive traffic at shard 1 on another thread.
        jitd.with_shard(0, |shard0| {
            // Shard 0 reorganizes while we hold it.
            shard0.reorganize_until_quiet(64);
            let peer = jitd.clone();
            let worker = std::thread::spawn(move || {
                // Key 1 routes to shard 1 (1 mod 2): must not need
                // shard 0's lock.
                peer.execute(&Op::Update { key: 1, value: 77 });
                let got = peer.get(1);
                tx.send(got).unwrap();
            });
            let got = rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("shard 1 op blocked behind shard 0's lock — sharding broken");
            assert_eq!(got, Some(77));
            worker.join().unwrap();
        });
        // Both shards' background workers make progress independently.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let s0 = jitd.with_shard(0, |j| j.stats.steps);
            let s1 = jitd.with_shard(1, |j| j.stats.steps);
            if (s0 > 0 && s1 > 0) || std::time::Instant::now() > deadline {
                assert!(s0 > 0, "shard 0 never reorganized");
                assert!(s1 > 0, "shard 1 never reorganized");
                break;
            }
            std::thread::yield_now();
        }
        let jitd = Arc::try_unwrap(jitd).unwrap_or_else(|_| panic!("worker still holds a handle"));
        let (runtimes, _) = jitd.stop();
        assert_eq!(runtimes.len(), 2);
        for runtime in &runtimes {
            runtime.index().check_structure().unwrap();
        }
    }

    #[test]
    fn stop_is_idempotent_with_drop() {
        let jitd = AsyncJitd::spawn_sharded(
            StrategyKind::Index,
            RuleConfig {
                crack_threshold: 32,
            },
            records(128),
            4,
        );
        drop(jitd); // Drop path must join all workers cleanly too.
    }
}
