//! The asynchronous background reorganizer — dedicated or work-stealing.
//!
//! The paper's host system "allow\[s\] a JIT runtime to incrementally and
//! asynchronously rewrite [the AST] in the background using
//! pattern-replacement rules" (§1, §7.1). This module runs a fleet of
//! [`Jitd`] runtimes — the key space range-partitioned by
//! `key mod shards`, or explicitly routed per shard — each behind its
//! **own** mutex, with one of two worker deployments:
//!
//! - [`WorkerMode::Dedicated`] (PR 4's model, the default): one
//!   background thread per shard, pinned to it forever. Simple and
//!   latency-optimal when every shard is equally busy.
//! - [`WorkerMode::Stealing`]: a pool of `workers` threads (typically
//!   *fewer than shards*) draining a shared [`WorkQueue`]. Shards
//!   enqueue themselves when operations push their heat over a
//!   threshold; a worker claims a shard with a `parking_lot` try-lock,
//!   runs **one** reorganization round, and requeues it while it stays
//!   hot. A failed claim requeues and moves on — a shard stalled under
//!   a long operation (or a test holding its lock) never blocks the
//!   pool, and idle workers steal whatever backlog exists anywhere.
//!
//! Under skew (fleet workload I: 20% of shards take 80% of the churn)
//! the stealing pool matches or beats dedicated workers while running a
//! fraction of the threads — the `tt-bench` workload-I cells gate
//! exactly that claim. Locking granularity is identical in both modes:
//! a reorganization burst on shard 0 never blocks an operation (or
//! another burst) on shard 1.
//!
//! `spawn` with one shard is the paper's original single-mutex
//! deployment, unchanged. The benchmark figures use the synchronous
//! [`Jitd`] driver directly so measured quantities stay attributable;
//! this module demonstrates, tests, and (for the workload-I scheduler
//! cells) benchmarks the concurrent deployments.

use crate::rules::RuleConfig;
use crate::runtime::{Jitd, StrategyKind};
use crate::steal::{StealConfig, StealStats, WorkQueue};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tt_ast::Record;
use tt_ycsb::Op;

/// How background reorganization threads map onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// One dedicated thread per shard (the PR 4 deployment).
    Dedicated,
    /// A shared pool of `config.workers` threads draining a heat-gated
    /// work queue with per-shard try-lock claims.
    Stealing(StealConfig),
}

struct Shard {
    jitd: Mutex<Jitd>,
}

struct Shared {
    shards: Vec<Shard>,
    stop: AtomicBool,
    /// Present in stealing mode: the shared scheduler state.
    queue: Option<WorkQueue>,
}

/// A sharded [`Jitd`] fleet with background reorganization threads —
/// dedicated per shard, or a work-stealing pool over all of them.
pub struct AsyncJitd {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<u64>>,
    mode: WorkerMode,
}

impl AsyncJitd {
    /// Single-shard deployment (the paper's original serialized model).
    pub fn spawn(kind: StrategyKind, config: RuleConfig, records: Vec<Record>) -> AsyncJitd {
        AsyncJitd::spawn_sharded(kind, config, records, 1)
    }

    /// Partitions `records` across `shards` runtimes (`key mod shards`)
    /// and spawns one dedicated background reorganizer per shard.
    pub fn spawn_sharded(
        kind: StrategyKind,
        config: RuleConfig,
        records: Vec<Record>,
        shards: usize,
    ) -> AsyncJitd {
        Self::spawn_parts(
            kind,
            config,
            Self::partition(records, shards),
            WorkerMode::Dedicated,
        )
    }

    /// Partitions `records` by key and spawns a stealing pool of
    /// `workers` threads over `shards` shards (heat threshold 1: every
    /// write enqueues its shard).
    pub fn spawn_stealing(
        kind: StrategyKind,
        config: RuleConfig,
        records: Vec<Record>,
        shards: usize,
        workers: usize,
    ) -> AsyncJitd {
        Self::spawn_parts(
            kind,
            config,
            Self::partition(records, shards),
            WorkerMode::Stealing(StealConfig {
                workers,
                heat_threshold: 1,
            }),
        )
    }

    fn partition(records: Vec<Record>, shards: usize) -> Vec<Vec<Record>> {
        assert!(shards >= 1, "need at least one shard");
        let mut parts: Vec<Vec<Record>> = (0..shards).map(|_| Vec::new()).collect();
        for r in records {
            parts[r.key.rem_euclid(shards as i64) as usize].push(r);
        }
        parts
    }

    /// Spawns over explicit per-shard record sets (`parts[i]` preloads
    /// shard `i`) in the given worker mode. This is the routing-agnostic
    /// constructor: the fleet benchmarks preload one tree's key space
    /// per shard and route by tree id via
    /// [`execute_on`](AsyncJitd::execute_on).
    pub fn spawn_parts(
        kind: StrategyKind,
        config: RuleConfig,
        parts: Vec<Vec<Record>>,
        mode: WorkerMode,
    ) -> AsyncJitd {
        assert!(!parts.is_empty(), "need at least one shard");
        let shards = parts.len();
        let queue = match mode {
            WorkerMode::Dedicated => None,
            WorkerMode::Stealing(cfg) => {
                assert!(cfg.workers >= 1, "a stealing pool needs a worker");
                let queue = WorkQueue::new(shards, cfg.heat_threshold);
                // The freshly loaded arrays are the initial backlog:
                // every shard wants cracking.
                queue.enqueue_all();
                Some(queue)
            }
        };
        let shared = Arc::new(Shared {
            shards: parts
                .into_iter()
                .map(|part| Shard {
                    jitd: Mutex::new(Jitd::new(kind, config, part)),
                })
                .collect(),
            stop: AtomicBool::new(false),
            queue,
        });
        let workers = match mode {
            WorkerMode::Dedicated => (0..shards)
                .map(|i| {
                    let shared = shared.clone();
                    std::thread::spawn(move || dedicated_worker(&shared, i))
                })
                .collect(),
            WorkerMode::Stealing(cfg) => (0..cfg.workers)
                .map(|w| {
                    let shared = shared.clone();
                    let workers = cfg.workers;
                    std::thread::spawn(move || stealing_worker(&shared, w, workers))
                })
                .collect(),
        };
        AsyncJitd {
            shared,
            workers,
            mode,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The worker deployment this fleet runs.
    pub fn mode(&self) -> WorkerMode {
        self.mode
    }

    /// Scheduling counters (zeroes under [`WorkerMode::Dedicated`],
    /// which has no queue to account against).
    pub fn steal_stats(&self) -> StealStats {
        self.shared
            .queue
            .as_ref()
            .map(WorkQueue::stats)
            .unwrap_or_default()
    }

    #[inline]
    fn shard_index(&self, key: i64) -> usize {
        key.rem_euclid(self.shared.shards.len() as i64) as usize
    }

    /// Runs `f` under one shard's lock — the maintenance/inspection
    /// hatch (tests use it to prove shard independence: holding one
    /// shard here must not block operations on any other, and must not
    /// stall the stealing pool).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Jitd) -> R) -> R {
        f(&mut self.shared.shards[shard].jitd.lock())
    }

    /// Non-blocking [`with_shard`](AsyncJitd::with_shard): runs `f`
    /// only if the shard's lock is free right now, `None` otherwise.
    /// Lets monitoring (e.g. a bench driver's quiescence poll) observe
    /// shards without ever queueing behind — or colliding with — the
    /// workers it is observing.
    pub fn try_with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Jitd) -> R) -> Option<R> {
        self.shared.shards[shard]
            .jitd
            .try_lock()
            .map(|mut jitd| f(&mut jitd))
    }

    /// Executes one operation, serialized only against its own shard's
    /// reorganizer. Scans merge across shards. Routing is `key mod
    /// shards` (the key-partitioned deployment).
    pub fn execute(&self, op: &Op) {
        match *op {
            Op::Scan { key, len } => {
                std::hint::black_box(self.scan(key, len));
            }
            Op::Read { key }
            | Op::Update { key, .. }
            | Op::Insert { key, .. }
            | Op::ReadModifyWrite { key, .. } => {
                self.execute_on(self.shard_index(key), op);
            }
        }
    }

    /// Executes one operation against an explicit shard (the fleet
    /// deployment: one shard per tree, each with its own key space).
    /// Writes feed the shard's heat so the stealing pool knows where
    /// the backlog is; reads leave the schedule untouched.
    pub fn execute_on(&self, shard: usize, op: &Op) {
        self.shared.shards[shard].jitd.lock().execute(op);
        if let Some(queue) = &self.shared.queue {
            match op {
                Op::Read { .. } | Op::Scan { .. } => {}
                Op::Update { .. } | Op::Insert { .. } | Op::ReadModifyWrite { .. } => {
                    queue.note_heat(shard);
                }
            }
        }
    }

    /// Point read (locks one shard).
    pub fn get(&self, key: i64) -> Option<i64> {
        self.shared.shards[self.shard_index(key)]
            .jitd
            .lock()
            .index()
            .get(key)
    }

    /// Range scan: per-shard scans merged by key, truncated to `n`.
    /// Shards are locked one at a time, never all at once.
    pub fn scan(&self, low: i64, n: usize) -> Vec<Record> {
        let mut all: Vec<Record> = Vec::new();
        for shard in &self.shared.shards {
            all.extend(shard.jitd.lock().index().scan(low, n));
        }
        all.sort_by_key(|r| r.key);
        all.truncate(n);
        all
    }

    /// Tombstone delete (locks one shard).
    pub fn delete(&self, key: i64) {
        let shard = self.shard_index(key);
        self.shared.shards[shard].jitd.lock().delete(key);
        if let Some(queue) = &self.shared.queue {
            queue.note_heat(shard);
        }
    }

    /// Stops every reorganizer and returns the runtimes (shard order)
    /// plus the total rewrites the background threads applied.
    pub fn stop(mut self) -> (Vec<Jitd>, u64) {
        self.shared.stop.store(true, Ordering::Release);
        let applied: u64 = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("reorganizer thread must not panic"))
            .sum();
        // The workers have exited and hold no references; unwrap the
        // runtimes. (`self` implements Drop, so move the Arc out by hand.)
        let shared = self.shared.clone();
        drop(self);
        let shared = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("outstanding handles to the runtime"));
        let runtimes = shared
            .shards
            .into_iter()
            .map(|s| s.jitd.into_inner())
            .collect();
        (runtimes, applied)
    }
}

impl Drop for AsyncJitd {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The PR 4 loop: pinned to shard `i`, one round per lock acquisition.
fn dedicated_worker(shared: &Shared, i: usize) -> u64 {
    let mut applied = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        let fired = {
            let mut jitd = shared.shards[i].jitd.lock();
            jitd.reorganize_round()
        };
        applied += fired as u64;
        if fired == 0 {
            // Quiescent: yield until new work arrives.
            std::thread::yield_now();
        }
    }
    applied
}

/// The stealing loop: pop a shard, claim it with a try-lock, run one
/// round, requeue while hot. Contention requeues and moves on.
fn stealing_worker(shared: &Shared, worker: usize, workers: usize) -> u64 {
    let queue = shared.queue.as_ref().expect("stealing mode has a queue");
    let mut applied = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        let Some(shard) = queue.pop() else {
            // Nothing queued: yield — the same idle discipline as a
            // dedicated worker on a quiescent shard, except the pool
            // runs `workers` idle threads instead of `shards`. (A
            // production deployment would park on a condvar here; the
            // vendored parking_lot stub has no condvar, and a sleep
            // would stall the wake-up path on small machines.)
            std::thread::yield_now();
            continue;
        };
        match shared.shards[shard].jitd.try_lock() {
            Some(mut jitd) => {
                queue.record_drain(worker, shard, workers);
                let fired = jitd.reorganize_round();
                drop(jitd);
                applied += fired as u64;
                if fired > 0 {
                    // Still hot: back on the queue for whichever worker
                    // frees up first.
                    queue.enqueue(shard);
                }
            }
            // Held by the op path or a peer: skip-and-requeue, so a
            // stalled shard never head-of-line-blocks the pool. Yield
            // before the next pop — if this was the only queued shard,
            // retrying immediately would just spin against the holder.
            None => {
                queue.requeue_contended(shard);
                std::thread::yield_now();
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tt_ycsb::{Workload, WorkloadSpec};

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|k| Record::new(k, k * 5)).collect()
    }

    #[test]
    fn background_reorganizer_applies_rewrites() {
        let jitd = AsyncJitd::spawn(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(2048),
        );
        // Give the worker a moment to crack the initial array.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if jitd.get(100) == Some(500) {
                // Reads work mid-reorganization.
            }
            let snapshot = jitd.with_shard(0, |j| j.stats.steps);
            if snapshot > 0 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::yield_now();
        }
        let (runtimes, applied) = jitd.stop();
        assert!(applied > 0, "background thread applied rewrites");
        runtimes[0].index().check_structure().unwrap();
    }

    fn drive_semantics(jitd: &AsyncJitd, n: i64) -> BTreeMap<i64, i64> {
        let mut model: BTreeMap<i64, i64> = (0..n).map(|k| (k, k * 5)).collect();
        let mut workload = Workload::new(WorkloadSpec::standard('A'), n as u64, 321);
        for _ in 0..300 {
            let op = workload.next_op();
            match op {
                Op::Update { key, value } | Op::Insert { key, value } => {
                    model.insert(key, value);
                }
                Op::ReadModifyWrite { key, value } => {
                    let prior = model.get(&key).copied().unwrap_or(0);
                    model.insert(key, value ^ prior);
                }
                _ => {}
            }
            jitd.execute(&op);
        }
        model
    }

    #[test]
    fn concurrent_ops_preserve_semantics() {
        let n = 512i64;
        let jitd = AsyncJitd::spawn_sharded(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(n),
            3,
        );
        let model = drive_semantics(&jitd, n);
        for k in (0..n).step_by(7) {
            assert_eq!(jitd.get(k), model.get(&k).copied(), "key {k}");
        }
        // Cross-shard scan merges correctly.
        let want: Vec<Record> = model
            .range(100..)
            .take(20)
            .map(|(&k, &v)| Record::new(k, v))
            .collect();
        assert_eq!(jitd.scan(100, 20), want);
        jitd.delete(3);
        let mut model = model;
        model.remove(&3);
        assert_eq!(jitd.get(3), None);
        let (mut runtimes, _) = jitd.stop();
        for runtime in &mut runtimes {
            runtime.reorganize_until_quiet(100_000);
            runtime.index().check_structure().unwrap();
            runtime.agreement_with_naive().unwrap();
        }
        // Every key still reads correctly through its owning shard.
        for k in 0..n {
            let shard = k.rem_euclid(3) as usize;
            assert_eq!(
                runtimes[shard].index().get(k),
                model.get(&k).copied(),
                "key {k} post-stop"
            );
        }
    }

    /// The same semantics contract as above, but under the stealing
    /// pool: two workers over four shards, racing the op stream.
    #[test]
    fn stealing_pool_preserves_semantics() {
        let n = 512i64;
        let jitd = AsyncJitd::spawn_stealing(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(n),
            4,
            2,
        );
        assert!(matches!(jitd.mode(), WorkerMode::Stealing(_)));
        let model = drive_semantics(&jitd, n);
        for k in (0..n).step_by(5) {
            assert_eq!(jitd.get(k), model.get(&k).copied(), "key {k}");
        }
        // The op stream leaves a queued backlog, but on a starved box
        // the pool threads may not have been scheduled yet: wait (with
        // a deadline) for the pool to provably drain something before
        // stopping it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        // Rewriting key 1's current value keeps the model valid while
        // feeding the queue.
        let v1 = model.get(&1).copied().unwrap_or(0);
        while jitd.steal_stats().drained_count == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "pool never drained any work: {:?}",
                jitd.steal_stats()
            );
            jitd.execute(&Op::Update { key: 1, value: v1 });
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let (mut runtimes, _) = jitd.stop();
        for runtime in &mut runtimes {
            runtime.reorganize_until_quiet(100_000);
            runtime.index().check_structure().unwrap();
            runtime.agreement_with_naive().unwrap();
        }
        for k in 0..n {
            let shard = k.rem_euclid(4) as usize;
            assert_eq!(
                runtimes[shard].index().get(k),
                model.get(&k).copied(),
                "key {k} post-stop"
            );
        }
    }

    /// The shard-granularity claim: while one shard's lock is held (a
    /// long reorganization, say), operations on another shard proceed.
    /// Under the old global `Mutex<Jitd>` this test deadlocks until the
    /// timeout; under per-shard locks it completes immediately.
    #[test]
    fn shards_reorganize_and_serve_concurrently() {
        let jitd = Arc::new(AsyncJitd::spawn_sharded(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            records(1024),
            2,
        ));
        assert_eq!(jitd.shard_count(), 2);
        let (tx, rx) = std::sync::mpsc::channel();
        // Hold shard 0's lock and, from inside the critical section,
        // drive traffic at shard 1 on another thread.
        jitd.with_shard(0, |shard0| {
            // Shard 0 reorganizes while we hold it.
            shard0.reorganize_until_quiet(64);
            let peer = jitd.clone();
            let worker = std::thread::spawn(move || {
                // Key 1 routes to shard 1 (1 mod 2): must not need
                // shard 0's lock.
                peer.execute(&Op::Update { key: 1, value: 77 });
                let got = peer.get(1);
                tx.send(got).unwrap();
            });
            let got = rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("shard 1 op blocked behind shard 0's lock — sharding broken");
            assert_eq!(got, Some(77));
            worker.join().unwrap();
        });
        // Both shards' background workers make progress independently.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let s0 = jitd.with_shard(0, |j| j.stats.steps);
            let s1 = jitd.with_shard(1, |j| j.stats.steps);
            if (s0 > 0 && s1 > 0) || std::time::Instant::now() > deadline {
                assert!(s0 > 0, "shard 0 never reorganized");
                assert!(s1 > 0, "shard 1 never reorganized");
                break;
            }
            std::thread::yield_now();
        }
        let jitd = Arc::try_unwrap(jitd).unwrap_or_else(|_| panic!("worker still holds a handle"));
        let (runtimes, _) = jitd.stop();
        assert_eq!(runtimes.len(), 2);
        for runtime in &runtimes {
            runtime.index().check_structure().unwrap();
        }
    }

    /// The skip-and-requeue claim discipline: while shard 0's lock is
    /// held for the duration, a 2-worker pool over 4 shards must keep
    /// draining the other shards' backlogs (never blocking on shard 0)
    /// and must record the failed claims as contention. Under a
    /// blocking claim this test deadlocks until the timeout.
    #[test]
    fn pool_drains_other_shards_while_one_is_locked() {
        let jitd = Arc::new(AsyncJitd::spawn_stealing(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            records(1024),
            4,
            2,
        ));
        // Generous deadlines and real sleeps between polls: the test's
        // progress depends on the OS scheduling two worker threads
        // against this polling thread, and on starved single-core boxes
        // bare yield loops can monopolize the core for long stretches.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        jitd.with_shard(0, |_held| {
            // Shard 0 sits in the queue from the initial backlog; every
            // failed claim requeues it, so contention accrues while we
            // hold the lock. Meanwhile, drive writes at the other shards
            // (keys 1/2/3 and 4001/4002/4003 route to shards 1..3).
            let peer = jitd.clone();
            loop {
                for key in [1i64, 2, 3, 4001, 4002, 4003] {
                    peer.execute_on((key % 4) as usize, &Op::Update { key, value: key });
                }
                let others_progressed = (1..4).all(|s| peer.with_shard(s, |j| j.stats.steps) > 0);
                let contended = peer.steal_stats().contended_count > 0;
                if (others_progressed && contended) || std::time::Instant::now() > deadline {
                    assert!(
                        others_progressed,
                        "pool failed to drain unlocked shards while shard 0 was held"
                    );
                    assert!(contended, "holding shard 0 never registered as contention");
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        });
        // Released: shard 0's backlog now drains too, and with 2 workers
        // racing over 4 shards non-home drains (steals) accumulate.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            let shard0_done = jitd.with_shard(0, |j| j.stats.steps) > 0;
            let stole = jitd.steal_stats().steal_count > 0;
            if shard0_done && stole {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "after release: shard0_done={shard0_done}, stole={stole}"
            );
            jitd.execute_on(0, &Op::Update { key: 4, value: 4 });
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let jitd = Arc::try_unwrap(jitd).unwrap_or_else(|_| panic!("handle leaked"));
        let (runtimes, _) = jitd.stop();
        for runtime in &runtimes {
            runtime.index().check_structure().unwrap();
        }
    }

    #[test]
    fn stop_is_idempotent_with_drop() {
        let jitd = AsyncJitd::spawn_sharded(
            StrategyKind::Index,
            RuleConfig {
                crack_threshold: 32,
            },
            records(128),
            4,
        );
        drop(jitd); // Drop path must join all workers cleanly too.
        let jitd = AsyncJitd::spawn_stealing(
            StrategyKind::Index,
            RuleConfig {
                crack_threshold: 32,
            },
            records(128),
            4,
            2,
        );
        drop(jitd); // Stealing drop path joins the pool cleanly too.
    }
}
