//! The asynchronous background reorganizer — dedicated or work-stealing.
//!
//! The paper's host system "allow\[s\] a JIT runtime to incrementally and
//! asynchronously rewrite [the AST] in the background using
//! pattern-replacement rules" (§1, §7.1). This module runs a fleet of
//! [`Jitd`] runtimes — the key space range-partitioned by
//! `key mod shards`, or explicitly routed per shard — each behind its
//! **own** mutex, with one of two worker deployments:
//!
//! - [`WorkerMode::Dedicated`] (PR 4's model, the default): one
//!   background thread per shard, pinned to it forever. Simple and
//!   latency-optimal when every shard is equally busy.
//! - [`WorkerMode::Stealing`]: a pool of `workers` threads (typically
//!   *fewer than shards*) draining a shared [`WorkQueue`]. Shards
//!   enqueue themselves when operations push their heat over a
//!   threshold; a worker claims a shard with a `parking_lot` try-lock,
//!   runs **one** reorganization round, and requeues it while it stays
//!   hot. A failed claim requeues and moves on — a shard stalled under
//!   a long operation (or a test holding its lock) never blocks the
//!   pool, and idle workers steal whatever backlog exists anywhere.
//!
//! Under skew (fleet workload I: 20% of shards take 80% of the churn)
//! the stealing pool matches or beats dedicated workers while running a
//! fraction of the threads — the `tt-bench` workload-I cells gate
//! exactly that claim. Locking granularity is identical in both modes:
//! a reorganization burst on shard 0 never blocks an operation (or
//! another burst) on shard 1.
//!
//! `spawn` with one shard is the paper's original single-mutex
//! deployment, unchanged. The benchmark figures use the synchronous
//! [`Jitd`] driver directly so measured quantities stay attributable;
//! this module demonstrates, tests, and (for the workload-I scheduler
//! cells) benchmarks the concurrent deployments.

use crate::rules::RuleConfig;
use crate::runtime::{Jitd, StrategyKind};
use crate::steal::{StealConfig, StealStats, WorkQueue};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tt_ast::Record;
use tt_ycsb::Op;

/// How background reorganization threads map onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// One dedicated thread per shard (the PR 4 deployment).
    Dedicated,
    /// A shared pool of `config.workers` threads draining a heat-gated
    /// work queue with per-shard try-lock claims.
    Stealing(StealConfig),
}

/// How epoch commits reach the shards' views.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CommitMode {
    /// [`submit_commit_on`](AsyncJitd::submit_commit_on) applies the
    /// epoch inline on the calling thread (classic `commit_batch`).
    #[default]
    Sync,
    /// `submit_commit_on` only *seals* the epoch under the shard lock
    /// and hands the shard id to a background committer thread; the
    /// caller returns with the apply cost still unpaid. Readers keep
    /// seeing a consistent state throughout: the sealed buffer stays
    /// part of the shard's overlay until the committer (or an owning
    /// read) lands it atomically under the shard mutex, at which point
    /// the shard's committed generation advances.
    Async,
}

/// Heartbeat for parked workers: an idle worker rechecks its stop flag
/// at least this often even if every notification were lost. Parking
/// correctness does not depend on it (the enqueue/park handshake loses
/// no wakeups); it exists to bound the damage of protocol bugs.
const PARK_HEARTBEAT: Duration = Duration::from_millis(50);

struct Shard {
    jitd: Mutex<Jitd>,
}

struct Shared {
    shards: Vec<Shard>,
    stop: AtomicBool,
    /// Present in stealing mode: the shared scheduler state.
    queue: Option<WorkQueue>,
    /// Present in [`CommitMode::Async`]: shard ids with a sealed epoch
    /// awaiting the committer thread (dedup per shard, like the reorg
    /// queue — two submits before the committer runs fold into one
    /// apply, which is exactly the strategy-level backpressure).
    commit_queue: Option<WorkQueue>,
    /// Per-shard committed-generation counters: bumped (with `Release`)
    /// after the committer lands a sealed epoch, so observers can watch
    /// generations publish without taking shard locks.
    generations: Vec<AtomicU64>,
    /// Epochs the background committer has landed (fleet-wide).
    commits_applied: AtomicU64,
}

/// A sharded [`Jitd`] fleet with background reorganization threads —
/// dedicated per shard, or a work-stealing pool over all of them.
pub struct AsyncJitd {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<u64>>,
    mode: WorkerMode,
    commit: CommitMode,
}

impl AsyncJitd {
    /// Single-shard deployment (the paper's original serialized model).
    pub fn spawn(kind: StrategyKind, config: RuleConfig, records: Vec<Record>) -> AsyncJitd {
        AsyncJitd::spawn_sharded(kind, config, records, 1)
    }

    /// Partitions `records` across `shards` runtimes (`key mod shards`)
    /// and spawns one dedicated background reorganizer per shard.
    pub fn spawn_sharded(
        kind: StrategyKind,
        config: RuleConfig,
        records: Vec<Record>,
        shards: usize,
    ) -> AsyncJitd {
        Self::spawn_parts(
            kind,
            config,
            Self::partition(records, shards),
            WorkerMode::Dedicated,
        )
    }

    /// Partitions `records` by key and spawns a stealing pool of
    /// `workers` threads over `shards` shards (heat threshold 1: every
    /// write enqueues its shard).
    pub fn spawn_stealing(
        kind: StrategyKind,
        config: RuleConfig,
        records: Vec<Record>,
        shards: usize,
        workers: usize,
    ) -> AsyncJitd {
        Self::spawn_parts(
            kind,
            config,
            Self::partition(records, shards),
            WorkerMode::Stealing(StealConfig {
                workers,
                heat_threshold: 1,
            }),
        )
    }

    fn partition(records: Vec<Record>, shards: usize) -> Vec<Vec<Record>> {
        assert!(shards >= 1, "need at least one shard");
        let mut parts: Vec<Vec<Record>> = (0..shards).map(|_| Vec::new()).collect();
        for r in records {
            parts[r.key.rem_euclid(shards as i64) as usize].push(r);
        }
        parts
    }

    /// Spawns over explicit per-shard record sets (`parts[i]` preloads
    /// shard `i`) in the given worker mode. This is the routing-agnostic
    /// constructor: the fleet benchmarks preload one tree's key space
    /// per shard and route by tree id via
    /// [`execute_on`](AsyncJitd::execute_on).
    pub fn spawn_parts(
        kind: StrategyKind,
        config: RuleConfig,
        parts: Vec<Vec<Record>>,
        mode: WorkerMode,
    ) -> AsyncJitd {
        Self::spawn_parts_with(kind, config, parts, mode, CommitMode::Sync)
    }

    /// [`spawn_parts`](AsyncJitd::spawn_parts) with an explicit commit
    /// pipeline. [`CommitMode::Async`] additionally spawns one
    /// background committer thread draining a dedicated commit queue;
    /// [`submit_commit_on`](AsyncJitd::submit_commit_on) then seals
    /// epochs instead of applying them inline.
    pub fn spawn_parts_with(
        kind: StrategyKind,
        config: RuleConfig,
        parts: Vec<Vec<Record>>,
        mode: WorkerMode,
        commit: CommitMode,
    ) -> AsyncJitd {
        assert!(!parts.is_empty(), "need at least one shard");
        let shards = parts.len();
        let queue = match mode {
            WorkerMode::Dedicated => None,
            WorkerMode::Stealing(cfg) => {
                assert!(cfg.workers >= 1, "a stealing pool needs a worker");
                let queue = WorkQueue::new(shards, cfg.heat_threshold);
                // The freshly loaded arrays are the initial backlog:
                // every shard wants cracking.
                queue.enqueue_all();
                Some(queue)
            }
        };
        let commit_queue = match commit {
            CommitMode::Sync => None,
            // Threshold 1: a submit always enqueues (dedup still folds
            // re-submits of the same shard into one pending apply).
            CommitMode::Async => Some(WorkQueue::new(shards, 1)),
        };
        let shared = Arc::new(Shared {
            shards: parts
                .into_iter()
                .map(|part| Shard {
                    jitd: Mutex::new(Jitd::new(kind, config, part)),
                })
                .collect(),
            stop: AtomicBool::new(false),
            queue,
            commit_queue,
            generations: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            commits_applied: AtomicU64::new(0),
        });
        let mut workers: Vec<std::thread::JoinHandle<u64>> = match mode {
            WorkerMode::Dedicated => (0..shards)
                .map(|i| {
                    let shared = shared.clone();
                    std::thread::spawn(move || dedicated_worker(&shared, i))
                })
                .collect(),
            WorkerMode::Stealing(cfg) => (0..cfg.workers)
                .map(|w| {
                    let shared = shared.clone();
                    let workers = cfg.workers;
                    std::thread::spawn(move || stealing_worker(&shared, w, workers))
                })
                .collect(),
        };
        if matches!(commit, CommitMode::Async) {
            let shared = shared.clone();
            workers.push(std::thread::spawn(move || committer_worker(&shared)));
        }
        AsyncJitd {
            shared,
            workers,
            mode,
            commit,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The worker deployment this fleet runs.
    pub fn mode(&self) -> WorkerMode {
        self.mode
    }

    /// The commit pipeline this fleet runs.
    pub fn commit_mode(&self) -> CommitMode {
        self.commit
    }

    /// Opens a maintenance epoch on one shard (under its lock).
    pub fn begin_batch_on(&self, shard: usize) {
        self.shared.shards[shard].jitd.lock().begin_batch();
    }

    /// Closes one shard's open epoch. Under [`CommitMode::Sync`] the
    /// epoch is applied inline (classic `commit_batch`); under
    /// [`CommitMode::Async`] it is only *sealed* under the shard lock
    /// and the shard id is handed to the committer queue — the enqueue
    /// wakes the parked committer, and the caller returns without
    /// paying the apply.
    pub fn submit_commit_on(&self, shard: usize) {
        match self.commit {
            CommitMode::Sync => self.shared.shards[shard].jitd.lock().commit_batch(),
            CommitMode::Async => {
                let sealed = self.shared.shards[shard].jitd.lock().submit_commit();
                if sealed {
                    self.shared
                        .commit_queue
                        .as_ref()
                        .expect("async commit mode has a queue")
                        .enqueue(shard);
                }
            }
        }
    }

    /// The number of epochs the background committer has landed on
    /// `shard`. Published with `Release` after the apply completes, so
    /// a reader that observes generation `g` here will observe all of
    /// epoch `g`'s view deltas through the shard lock.
    pub fn committed_generation(&self, shard: usize) -> u64 {
        self.shared.generations[shard].load(Ordering::Acquire)
    }

    /// Fleet-wide count of epochs the background committer has landed
    /// (0 under [`CommitMode::Sync`]). The overlap witness: a nonzero
    /// reading while the op stream is still running proves commits ran
    /// off the query path.
    pub fn commits_applied(&self) -> u64 {
        self.shared.commits_applied.load(Ordering::Relaxed)
    }

    /// Barrier helper: applies every sealed epoch inline on the calling
    /// thread instead of waiting for the committer to wake. The
    /// strategies' ordering rule makes first-toucher-applies safe —
    /// whichever thread reaches a shard lands its seal, and the loser
    /// finds the slot empty and no-ops — so this races the committer
    /// without double-applying. Generations publish exactly as they do
    /// from the committer. Returns the number of epochs landed here.
    ///
    /// Use at end-of-stream barriers where sleep-polling
    /// [`commits_pending`](AsyncJitd::commits_pending) would charge a
    /// committer wake latency to the caller's clock.
    pub fn drain_commits(&self) -> u64 {
        let mut landed = 0u64;
        for (shard, slot) in self.shared.shards.iter().enumerate() {
            let committed = slot.jitd.lock().apply_submitted();
            if committed {
                self.shared.generations[shard].fetch_add(1, Ordering::Release);
                self.shared.commits_applied.fetch_add(1, Ordering::Relaxed);
                landed += 1;
            }
        }
        landed
    }

    /// True while the commit pipeline still holds in-flight work: a
    /// queued shard id, or a sealed epoch the committer has not yet
    /// landed. Quiescence probes must poll this *in addition to* match
    /// backlog — a fleet can be out of matches while its last
    /// generation has not published. A shard whose lock is busy is
    /// conservatively reported as pending (the poll retries).
    pub fn commits_pending(&self) -> bool {
        let Some(queue) = &self.shared.commit_queue else {
            return false;
        };
        if !queue.is_empty() {
            return true;
        }
        (0..self.shared.shards.len()).any(|s| {
            self.try_with_shard(s, |j| j.has_submitted())
                .unwrap_or(true)
        })
    }

    /// Work items currently queued for the reorganizer pool (0 under
    /// [`WorkerMode::Dedicated`], which has no queue).
    pub fn reorg_backlog(&self) -> usize {
        self.shared.queue.as_ref().map_or(0, WorkQueue::len)
    }

    /// Scheduling counters (zeroes under [`WorkerMode::Dedicated`],
    /// which has no queue to account against).
    pub fn steal_stats(&self) -> StealStats {
        self.shared
            .queue
            .as_ref()
            .map(WorkQueue::stats)
            .unwrap_or_default()
    }

    #[inline]
    fn shard_index(&self, key: i64) -> usize {
        key.rem_euclid(self.shared.shards.len() as i64) as usize
    }

    /// Runs `f` under one shard's lock — the maintenance/inspection
    /// hatch (tests use it to prove shard independence: holding one
    /// shard here must not block operations on any other, and must not
    /// stall the stealing pool).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Jitd) -> R) -> R {
        f(&mut self.shared.shards[shard].jitd.lock())
    }

    /// Non-blocking [`with_shard`](AsyncJitd::with_shard): runs `f`
    /// only if the shard's lock is free right now, `None` otherwise.
    /// Lets monitoring (e.g. a bench driver's quiescence poll) observe
    /// shards without ever queueing behind — or colliding with — the
    /// workers it is observing.
    pub fn try_with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Jitd) -> R) -> Option<R> {
        self.shared.shards[shard]
            .jitd
            .try_lock()
            .map(|mut jitd| f(&mut jitd))
    }

    /// Executes one operation, serialized only against its own shard's
    /// reorganizer. Scans merge across shards. Routing is `key mod
    /// shards` (the key-partitioned deployment).
    pub fn execute(&self, op: &Op) {
        match *op {
            Op::Scan { key, len } => {
                std::hint::black_box(self.scan(key, len));
            }
            Op::Read { key }
            | Op::Update { key, .. }
            | Op::Insert { key, .. }
            | Op::ReadModifyWrite { key, .. } => {
                self.execute_on(self.shard_index(key), op);
            }
        }
    }

    /// Executes one operation against an explicit shard (the fleet
    /// deployment: one shard per tree, each with its own key space).
    /// Writes feed the shard's heat so the stealing pool knows where
    /// the backlog is; reads leave the schedule untouched.
    pub fn execute_on(&self, shard: usize, op: &Op) {
        self.shared.shards[shard].jitd.lock().execute(op);
        if let Some(queue) = &self.shared.queue {
            match op {
                Op::Read { .. } | Op::Scan { .. } => {}
                Op::Update { .. } | Op::Insert { .. } | Op::ReadModifyWrite { .. } => {
                    queue.note_heat(shard);
                }
            }
        }
    }

    /// Point read (locks one shard).
    pub fn get(&self, key: i64) -> Option<i64> {
        self.shared.shards[self.shard_index(key)]
            .jitd
            .lock()
            .index()
            .get(key)
    }

    /// Range scan: per-shard scans merged by key, truncated to `n`.
    /// Shards are locked one at a time, never all at once.
    pub fn scan(&self, low: i64, n: usize) -> Vec<Record> {
        let mut all: Vec<Record> = Vec::new();
        for shard in &self.shared.shards {
            all.extend(shard.jitd.lock().index().scan(low, n));
        }
        all.sort_by_key(|r| r.key);
        all.truncate(n);
        all
    }

    /// Tombstone delete (locks one shard).
    pub fn delete(&self, key: i64) {
        let shard = self.shard_index(key);
        self.shared.shards[shard].jitd.lock().delete(key);
        if let Some(queue) = &self.shared.queue {
            queue.note_heat(shard);
        }
    }

    /// Stops every reorganizer (and the committer, if any) and returns
    /// the runtimes (shard order) plus the total rewrites the
    /// background threads applied. The committer drains its whole queue
    /// before exiting, so no sealed epoch outlives the fleet; the pool's
    /// parking/steal counters are folded into the first runtime's
    /// [`JitdStats`](crate::JitdStats) so they survive the teardown.
    pub fn stop(mut self) -> (Vec<Jitd>, u64) {
        self.shared.stop.store(true, Ordering::Release);
        // Publish the flag first, then broadcast: any worker between
        // its empty-check and its park still holds the queue lock, so
        // the wake cannot land in that gap.
        if let Some(queue) = &self.shared.queue {
            queue.wake_all();
        }
        if let Some(queue) = &self.shared.commit_queue {
            queue.wake_all();
        }
        let applied: u64 = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("reorganizer thread must not panic"))
            .sum();
        // The workers have exited and hold no references; unwrap the
        // runtimes. (`self` implements Drop, so move the Arc out by hand.)
        let shared = self.shared.clone();
        drop(self);
        let shared = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("outstanding handles to the runtime"));
        let pool_stats = shared
            .queue
            .as_ref()
            .map(WorkQueue::stats)
            .unwrap_or_default();
        let commit_stats = shared
            .commit_queue
            .as_ref()
            .map(WorkQueue::stats)
            .unwrap_or_default();
        let mut runtimes: Vec<Jitd> = shared
            .shards
            .into_iter()
            .map(|s| s.jitd.into_inner())
            .collect();
        // Belt and braces: the committer drained everything before
        // exiting, but a defensive final sweep keeps shutdown state
        // clean even if a future caller seals without enqueueing.
        for jitd in &mut runtimes {
            jitd.apply_submitted();
        }
        if let Some(first) = runtimes.first_mut() {
            first.stats.parked_count = pool_stats.parked_count + commit_stats.parked_count;
            first.stats.woken_count = pool_stats.woken_count + commit_stats.woken_count;
            first.stats.spin_yield_count =
                pool_stats.spin_yield_count + commit_stats.spin_yield_count;
        }
        (runtimes, applied)
    }
}

impl Drop for AsyncJitd {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(queue) = &self.shared.queue {
            queue.wake_all();
        }
        if let Some(queue) = &self.shared.commit_queue {
            queue.wake_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The PR 4 loop: pinned to shard `i`, one round per lock acquisition.
fn dedicated_worker(shared: &Shared, i: usize) -> u64 {
    let mut applied = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        let fired = {
            let mut jitd = shared.shards[i].jitd.lock();
            jitd.reorganize_round()
        };
        applied += fired as u64;
        if fired == 0 {
            // Quiescent: yield until new work arrives.
            std::thread::yield_now();
        }
    }
    applied
}

/// The stealing loop: pop a shard, claim it with a try-lock, run one
/// round, requeue while hot. Contention requeues and moves on.
fn stealing_worker(shared: &Shared, worker: usize, workers: usize) -> u64 {
    let queue = shared.queue.as_ref().expect("stealing mode has a queue");
    let mut applied = 0u64;
    // Nothing queued: park on the queue's condvar instead of
    // spin-yielding. `enqueue` notifies under the queue lock, so a
    // push can never slip between the empty check and the wait; the
    // heartbeat re-checks the stop flag in case a raced shutdown
    // broadcast precedes this worker's park.
    while let Some(shard) =
        queue.pop_blocking(|| shared.stop.load(Ordering::Acquire), PARK_HEARTBEAT)
    {
        if shared.stop.load(Ordering::Acquire) {
            // Shutdown landed while we held a shard id. Reorganization
            // is best-effort background work — abandon the backlog
            // rather than delay teardown. (Contrast the committer,
            // which must drain: sealed epochs are durable state.)
            break;
        }
        match shared.shards[shard].jitd.try_lock() {
            Some(mut jitd) => {
                queue.record_drain(worker, shard, workers);
                let fired = jitd.reorganize_round();
                drop(jitd);
                applied += fired as u64;
                if fired > 0 {
                    // Still hot: back on the queue for whichever worker
                    // frees up first.
                    queue.enqueue(shard);
                }
            }
            // Held by the op path or a peer: skip-and-requeue, so a
            // stalled shard never head-of-line-blocks the pool. Yield
            // before the next pop — if this was the only queued shard,
            // retrying immediately would just spin against the holder.
            None => {
                queue.requeue_contended(shard);
                queue.note_spin_yield();
                std::thread::yield_now();
            }
        }
    }
    applied
}

/// The background committer: drains the commit queue, applying each
/// shard's sealed epoch under its mutex and publishing the shard's
/// committed generation afterwards. Unlike the reorganizers it keeps
/// draining after `stop` is raised — `pop_blocking` only returns `None`
/// once the queue is empty, so every submitted epoch lands before the
/// fleet tears down.
///
/// Returns 0 rewrites: the committer shares the worker `JoinHandle`
/// vec, whose return values `stop()` sums as applied rewrites. Its own
/// progress is tracked in [`Shared::commits_applied`].
fn committer_worker(shared: &Shared) -> u64 {
    let queue = shared
        .commit_queue
        .as_ref()
        .expect("async commit mode has a queue");
    while let Some(shard) =
        queue.pop_blocking(|| shared.stop.load(Ordering::Acquire), PARK_HEARTBEAT)
    {
        // A blocking claim, deliberately: a polite try-lock-and-requeue
        // committer starves whenever the op thread re-locks its shard in
        // a tight loop (on one core every failed claim's yield hands the
        // op thread a whole timeslice), and an epoch that never lands
        // means backlog growing without bound. Queuing on the mutex
        // costs the op thread at most one lock handoff per epoch —
        // outside the commit window, whose clock stops when
        // `submit_commit` returns — and buys liveness under any
        // schedule.
        let mut jitd = shared.shards[shard].jitd.lock();
        let committed = jitd.apply_submitted();
        drop(jitd);
        if committed {
            // Release-publish after the apply so a reader that Acquires
            // the bumped generation sees the fully applied epoch.
            shared.generations[shard].fetch_add(1, Ordering::Release);
            shared.commits_applied.fetch_add(1, Ordering::Relaxed);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tt_ycsb::{Workload, WorkloadSpec};

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|k| Record::new(k, k * 5)).collect()
    }

    #[test]
    fn background_reorganizer_applies_rewrites() {
        let jitd = AsyncJitd::spawn(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(2048),
        );
        // Give the worker a moment to crack the initial array.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if jitd.get(100) == Some(500) {
                // Reads work mid-reorganization.
            }
            let snapshot = jitd.with_shard(0, |j| j.stats.steps);
            if snapshot > 0 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::yield_now();
        }
        let (runtimes, applied) = jitd.stop();
        assert!(applied > 0, "background thread applied rewrites");
        runtimes[0].index().check_structure().unwrap();
    }

    fn drive_semantics(jitd: &AsyncJitd, n: i64) -> BTreeMap<i64, i64> {
        let mut model: BTreeMap<i64, i64> = (0..n).map(|k| (k, k * 5)).collect();
        let mut workload = Workload::new(WorkloadSpec::standard('A'), n as u64, 321);
        for _ in 0..300 {
            let op = workload.next_op();
            match op {
                Op::Update { key, value } | Op::Insert { key, value } => {
                    model.insert(key, value);
                }
                Op::ReadModifyWrite { key, value } => {
                    let prior = model.get(&key).copied().unwrap_or(0);
                    model.insert(key, value ^ prior);
                }
                _ => {}
            }
            jitd.execute(&op);
        }
        model
    }

    #[test]
    fn concurrent_ops_preserve_semantics() {
        let n = 512i64;
        let jitd = AsyncJitd::spawn_sharded(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(n),
            3,
        );
        let model = drive_semantics(&jitd, n);
        for k in (0..n).step_by(7) {
            assert_eq!(jitd.get(k), model.get(&k).copied(), "key {k}");
        }
        // Cross-shard scan merges correctly.
        let want: Vec<Record> = model
            .range(100..)
            .take(20)
            .map(|(&k, &v)| Record::new(k, v))
            .collect();
        assert_eq!(jitd.scan(100, 20), want);
        jitd.delete(3);
        let mut model = model;
        model.remove(&3);
        assert_eq!(jitd.get(3), None);
        let (mut runtimes, _) = jitd.stop();
        for runtime in &mut runtimes {
            runtime.reorganize_until_quiet(100_000);
            runtime.index().check_structure().unwrap();
            runtime.agreement_with_naive().unwrap();
        }
        // Every key still reads correctly through its owning shard.
        for k in 0..n {
            let shard = k.rem_euclid(3) as usize;
            assert_eq!(
                runtimes[shard].index().get(k),
                model.get(&k).copied(),
                "key {k} post-stop"
            );
        }
    }

    /// The same semantics contract as above, but under the stealing
    /// pool: two workers over four shards, racing the op stream.
    #[test]
    fn stealing_pool_preserves_semantics() {
        let n = 512i64;
        let jitd = AsyncJitd::spawn_stealing(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(n),
            4,
            2,
        );
        assert!(matches!(jitd.mode(), WorkerMode::Stealing(_)));
        let model = drive_semantics(&jitd, n);
        for k in (0..n).step_by(5) {
            assert_eq!(jitd.get(k), model.get(&k).copied(), "key {k}");
        }
        // The op stream leaves a queued backlog, but on a starved box
        // the pool threads may not have been scheduled yet: wait (with
        // a deadline) for the pool to provably drain something before
        // stopping it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        // Rewriting key 1's current value keeps the model valid while
        // feeding the queue.
        let v1 = model.get(&1).copied().unwrap_or(0);
        while jitd.steal_stats().drained_count == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "pool never drained any work: {:?}",
                jitd.steal_stats()
            );
            jitd.execute(&Op::Update { key: 1, value: v1 });
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let (mut runtimes, _) = jitd.stop();
        for runtime in &mut runtimes {
            runtime.reorganize_until_quiet(100_000);
            runtime.index().check_structure().unwrap();
            runtime.agreement_with_naive().unwrap();
        }
        for k in 0..n {
            let shard = k.rem_euclid(4) as usize;
            assert_eq!(
                runtimes[shard].index().get(k),
                model.get(&k).copied(),
                "key {k} post-stop"
            );
        }
    }

    /// The shard-granularity claim: while one shard's lock is held (a
    /// long reorganization, say), operations on another shard proceed.
    /// Under the old global `Mutex<Jitd>` this test deadlocks until the
    /// timeout; under per-shard locks it completes immediately.
    #[test]
    fn shards_reorganize_and_serve_concurrently() {
        let jitd = Arc::new(AsyncJitd::spawn_sharded(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            records(1024),
            2,
        ));
        assert_eq!(jitd.shard_count(), 2);
        let (tx, rx) = std::sync::mpsc::channel();
        // Hold shard 0's lock and, from inside the critical section,
        // drive traffic at shard 1 on another thread.
        jitd.with_shard(0, |shard0| {
            // Shard 0 reorganizes while we hold it.
            shard0.reorganize_until_quiet(64);
            let peer = jitd.clone();
            let worker = std::thread::spawn(move || {
                // Key 1 routes to shard 1 (1 mod 2): must not need
                // shard 0's lock.
                peer.execute(&Op::Update { key: 1, value: 77 });
                let got = peer.get(1);
                tx.send(got).unwrap();
            });
            let got = rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("shard 1 op blocked behind shard 0's lock — sharding broken");
            assert_eq!(got, Some(77));
            worker.join().unwrap();
        });
        // Both shards' background workers make progress independently.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let s0 = jitd.with_shard(0, |j| j.stats.steps);
            let s1 = jitd.with_shard(1, |j| j.stats.steps);
            if (s0 > 0 && s1 > 0) || std::time::Instant::now() > deadline {
                assert!(s0 > 0, "shard 0 never reorganized");
                assert!(s1 > 0, "shard 1 never reorganized");
                break;
            }
            std::thread::yield_now();
        }
        let jitd = Arc::try_unwrap(jitd).unwrap_or_else(|_| panic!("worker still holds a handle"));
        let (runtimes, _) = jitd.stop();
        assert_eq!(runtimes.len(), 2);
        for runtime in &runtimes {
            runtime.index().check_structure().unwrap();
        }
    }

    /// The skip-and-requeue claim discipline: while shard 0's lock is
    /// held for the duration, a 2-worker pool over 4 shards must keep
    /// draining the other shards' backlogs (never blocking on shard 0)
    /// and must record the failed claims as contention. Under a
    /// blocking claim this test deadlocks until the timeout.
    #[test]
    fn pool_drains_other_shards_while_one_is_locked() {
        let jitd = Arc::new(AsyncJitd::spawn_stealing(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            records(1024),
            4,
            2,
        ));
        // Generous deadlines and real sleeps between polls: the test's
        // progress depends on the OS scheduling two worker threads
        // against this polling thread, and on starved single-core boxes
        // bare yield loops can monopolize the core for long stretches.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        jitd.with_shard(0, |_held| {
            // Shard 0 sits in the queue from the initial backlog; every
            // failed claim requeues it, so contention accrues while we
            // hold the lock. Meanwhile, drive writes at the other shards
            // (keys 1/2/3 and 4001/4002/4003 route to shards 1..3).
            let peer = jitd.clone();
            loop {
                for key in [1i64, 2, 3, 4001, 4002, 4003] {
                    peer.execute_on((key % 4) as usize, &Op::Update { key, value: key });
                }
                let others_progressed = (1..4).all(|s| peer.with_shard(s, |j| j.stats.steps) > 0);
                let contended = peer.steal_stats().contended_count > 0;
                if (others_progressed && contended) || std::time::Instant::now() > deadline {
                    assert!(
                        others_progressed,
                        "pool failed to drain unlocked shards while shard 0 was held"
                    );
                    assert!(contended, "holding shard 0 never registered as contention");
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        });
        // Released: shard 0's backlog now drains too, and with 2 workers
        // racing over 4 shards non-home drains (steals) accumulate.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            let shard0_done = jitd.with_shard(0, |j| j.stats.steps) > 0;
            let stole = jitd.steal_stats().steal_count > 0;
            if shard0_done && stole {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "after release: shard0_done={shard0_done}, stole={stole}"
            );
            jitd.execute_on(0, &Op::Update { key: 4, value: 4 });
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let jitd = Arc::try_unwrap(jitd).unwrap_or_else(|_| panic!("handle leaked"));
        let (runtimes, _) = jitd.stop();
        for runtime in &runtimes {
            runtime.index().check_structure().unwrap();
        }
    }

    #[test]
    fn stop_is_idempotent_with_drop() {
        let jitd = AsyncJitd::spawn_sharded(
            StrategyKind::Index,
            RuleConfig {
                crack_threshold: 32,
            },
            records(128),
            4,
        );
        drop(jitd); // Drop path must join all workers cleanly too.
        let jitd = AsyncJitd::spawn_stealing(
            StrategyKind::Index,
            RuleConfig {
                crack_threshold: 32,
            },
            records(128),
            4,
            2,
        );
        drop(jitd); // Stealing drop path joins the pool cleanly too.
    }

    /// The tentpole claim: with [`CommitMode::Async`], `submit_commit_on`
    /// returns before the epoch is applied, the background committer
    /// lands it, the shard's generation publishes, and readers never see
    /// a torn epoch (every committed write reads back through the shard).
    #[test]
    fn async_commit_pipeline_applies_in_background() {
        let n = 512i64;
        // The pool thread exists but stays cold (heat threshold never
        // crossed): reorganization runs inside the epoch from this
        // thread, so epochs deterministically close mid-backlog with
        // net deltas — a pool racing the epoch to quiescence would
        // stage *and* cancel every delta, and net-empty epochs never
        // seal. The only background apply is the committer's.
        let jitd = AsyncJitd::spawn_parts_with(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            vec![records(n)],
            WorkerMode::Stealing(StealConfig {
                workers: 1,
                heat_threshold: u64::MAX,
            }),
            CommitMode::Async,
        );
        assert_eq!(jitd.commit_mode(), CommitMode::Async);
        assert_eq!(jitd.commits_applied(), 0);
        let mut model: BTreeMap<i64, i64> = (0..n).map(|k| (k, k * 5)).collect();
        let mut next_key = n;
        // View deltas stage from *rewrites*, not grafts — drive epochs
        // with one partial reorganization round each until a sealed
        // epoch provably flowed through the committer.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while jitd.commits_applied() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no epoch ever sealed and committed"
            );
            jitd.begin_batch_on(0);
            jitd.with_shard(0, |j| {
                for _ in 0..16 {
                    let key = next_key;
                    next_key += 1;
                    j.execute(&Op::Insert {
                        key,
                        value: key * 3,
                    });
                    model.insert(key, key * 3);
                }
                j.reorganize_round();
            });
            // Mid-epoch reads stay exact while deltas are staged.
            assert_eq!(
                jitd.get(next_key - 1),
                Some((next_key - 1) * 3),
                "mid-epoch insert {}",
                next_key - 1
            );
            jitd.submit_commit_on(0);
            // Pace the op stream: on an oversubscribed single core the
            // op loop can re-take the shard lock every quantum (std
            // mutexes are unfair), and a committer that lands epochs a
            // few ms late lets the barely-reorganized tree grow one
            // graft per insert — deep enough that the recursive reads
            // above blow the test-thread stack. Yielding while the lock
            // is free hands the committer its claim window each epoch;
            // the overlap witness is unchanged (epoch k still lands
            // after epoch k+1 has opened).
            std::thread::yield_now();
        }
        // Wait for the committer to land everything in flight.
        while jitd.commits_pending() {
            assert!(
                std::time::Instant::now() < deadline,
                "committer never drained: applied={}, generation={}",
                jitd.commits_applied(),
                jitd.committed_generation(0)
            );
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert!(jitd.commits_applied() > 0, "committer landed no epochs");
        assert_eq!(jitd.commits_applied(), jitd.committed_generation(0));
        // Readers see every committed write, none torn.
        for k in (0..next_key).step_by(11) {
            assert_eq!(jitd.get(k), model.get(&k).copied(), "key {k}");
        }
        let (mut runtimes, _) = jitd.stop();
        let runtime = &mut runtimes[0];
        runtime.reorganize_until_quiet(100_000);
        runtime.index().check_structure().unwrap();
        runtime.agreement_with_naive().unwrap();
        for (&k, &v) in &model {
            assert_eq!(runtime.index().get(k), Some(v), "key {k} post-stop");
        }
    }

    /// The barrier helper: `drain_commits` lands in-flight seals inline
    /// without waiting on a committer wake, racing the committer safely
    /// (first toucher applies, the loser no-ops), and the bookkeeping
    /// stays exact — every landed epoch is counted once, generations
    /// publish, and no shard is left holding a sealed epoch.
    #[test]
    fn drain_commits_lands_inflight_epochs_inline() {
        let jitd = AsyncJitd::spawn_parts_with(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            vec![records(512)],
            WorkerMode::Stealing(StealConfig {
                workers: 1,
                heat_threshold: u64::MAX,
            }),
            CommitMode::Async,
        );
        let mut next_key = 512i64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while jitd.commits_applied() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no epoch ever sealed and landed"
            );
            jitd.begin_batch_on(0);
            jitd.with_shard(0, |j| {
                for _ in 0..16 {
                    let key = next_key;
                    next_key += 1;
                    j.execute(&Op::Insert {
                        key,
                        value: key * 3,
                    });
                }
                j.reorganize_round();
            });
            jitd.submit_commit_on(0);
            // Help at the barrier instead of sleep-polling the
            // committer; either thread may win the apply race.
            jitd.drain_commits();
            assert!(
                !jitd.with_shard(0, |j| j.has_submitted()),
                "a sealed epoch survived the barrier"
            );
        }
        assert_eq!(jitd.commits_applied(), jitd.committed_generation(0));
        let (mut runtimes, _) = jitd.stop();
        let runtime = &mut runtimes[0];
        runtime.reorganize_until_quiet(100_000);
        runtime.agreement_with_naive().unwrap();
    }

    /// The parking claim: once the pool's backlog drains, idle workers
    /// park on the queue condvar (parked counter advances via the
    /// heartbeat) instead of burning `yield_now` calls (spin-yield
    /// counter frozen). Delta-based on purpose — warm-up contention may
    /// legitimately record a few spin yields before quiescence.
    #[test]
    fn idle_pool_parks_instead_of_spinning() {
        let jitd = AsyncJitd::spawn_stealing(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(512),
            2,
            2,
        );
        // Wait for the initial cracking backlog to drain and stabilize.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            assert!(
                std::time::Instant::now() < deadline,
                "pool never went idle: {:?}",
                jitd.steal_stats()
            );
            let drained = jitd.steal_stats().drained_count;
            if jitd.reorg_backlog() == 0 && drained > 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                if jitd.reorg_backlog() == 0 && jitd.steal_stats().drained_count == drained {
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let before = jitd.steal_stats();
        std::thread::sleep(std::time::Duration::from_millis(200));
        let after = jitd.steal_stats();
        assert!(
            after.parked_count > before.parked_count,
            "idle workers never parked: before {before:?}, after {after:?}"
        );
        assert_eq!(
            after.spin_yield_count, before.spin_yield_count,
            "idle workers spin-yielded: before {before:?}, after {after:?}"
        );
        let (runtimes, _) = jitd.stop();
        // The fold-in survives teardown for the bench layer's stats.
        // (No absolute spin-yield assertion here: warm-up contention may
        // have recorded a few before quiescence — the frozen-delta check
        // above is the real claim.)
        assert!(runtimes[0].stats.parked_count >= after.parked_count);
    }
}
