//! The asynchronous background reorganizer.
//!
//! The paper's host system "allow\[s\] a JIT runtime to incrementally and
//! asynchronously rewrite [the AST] in the background using
//! pattern-replacement rules" (§1, §7.1). This module runs the
//! [`Jitd`] runtime behind a mutex with a dedicated worker thread that
//! opportunistically applies one reorganization round per acquisition,
//! while the application thread executes reads and writes — the paper's
//! deployment model, serialized at rewrite granularity.
//!
//! The benchmark figures use the synchronous [`Jitd`] driver directly
//! (interleaving one round per operation) so the measured quantities are
//! attributable; this module demonstrates and tests the concurrent
//! deployment.

use crate::rules::RuleConfig;
use crate::runtime::{Jitd, StrategyKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tt_ast::Record;
use tt_ycsb::Op;

struct Shared {
    jitd: Mutex<Jitd>,
    stop: AtomicBool,
}

/// A [`Jitd`] with a background reorganization thread.
pub struct AsyncJitd {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<u64>>,
}

impl AsyncJitd {
    /// Loads the index and spawns the background reorganizer.
    pub fn spawn(kind: StrategyKind, config: RuleConfig, records: Vec<Record>) -> AsyncJitd {
        let shared = Arc::new(Shared {
            jitd: Mutex::new(Jitd::new(kind, config, records)),
            stop: AtomicBool::new(false),
        });
        let worker_shared = shared.clone();
        let worker = std::thread::spawn(move || {
            let mut applied = 0u64;
            while !worker_shared.stop.load(Ordering::Acquire) {
                let fired = {
                    let mut jitd = worker_shared.jitd.lock();
                    jitd.reorganize_round()
                };
                applied += fired as u64;
                if fired == 0 {
                    // Quiescent: yield until new work arrives.
                    std::thread::yield_now();
                }
            }
            applied
        });
        AsyncJitd {
            shared,
            worker: Some(worker),
        }
    }

    /// Executes one operation (serialized against the reorganizer).
    pub fn execute(&self, op: &Op) {
        self.shared.jitd.lock().execute(op);
    }

    /// Point read.
    pub fn get(&self, key: i64) -> Option<i64> {
        self.shared.jitd.lock().index().get(key)
    }

    /// Range scan.
    pub fn scan(&self, low: i64, n: usize) -> Vec<Record> {
        self.shared.jitd.lock().index().scan(low, n)
    }

    /// Tombstone delete.
    pub fn delete(&self, key: i64) {
        self.shared.jitd.lock().delete(key);
    }

    /// Stops the reorganizer and returns the runtime plus the number of
    /// rewrites the background thread applied.
    pub fn stop(mut self) -> (Jitd, u64) {
        self.shared.stop.store(true, Ordering::Release);
        let applied = self
            .worker
            .take()
            .expect("worker present until stop")
            .join()
            .expect("reorganizer thread must not panic");
        // The worker has exited and holds no reference; unwrap the
        // runtime. (`self` implements Drop, so move the Arc out by hand.)
        let shared = self.shared.clone();
        drop(self);
        let shared = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("outstanding handles to the runtime"));
        (shared.jitd.into_inner(), applied)
    }
}

impl Drop for AsyncJitd {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tt_ycsb::{Workload, WorkloadSpec};

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|k| Record::new(k, k * 5)).collect()
    }

    #[test]
    fn background_reorganizer_applies_rewrites() {
        let jitd = AsyncJitd::spawn(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(2048),
        );
        // Give the worker a moment to crack the initial array.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if jitd.get(100) == Some(500) {
                // Reads work mid-reorganization.
            }
            let snapshot = jitd.shared.jitd.lock().stats.steps;
            if snapshot > 0 || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::yield_now();
        }
        let (runtime, applied) = jitd.stop();
        assert!(applied > 0, "background thread applied rewrites");
        runtime.index().check_structure().unwrap();
    }

    #[test]
    fn concurrent_ops_preserve_semantics() {
        let n = 512i64;
        let jitd = AsyncJitd::spawn(
            StrategyKind::TreeToaster,
            RuleConfig {
                crack_threshold: 16,
            },
            records(n),
        );
        let mut model: BTreeMap<i64, i64> = (0..n).map(|k| (k, k * 5)).collect();
        let mut workload = Workload::new(WorkloadSpec::standard('A'), n as u64, 321);
        for _ in 0..300 {
            let op = workload.next_op();
            match op {
                Op::Update { key, value } | Op::Insert { key, value } => {
                    model.insert(key, value);
                }
                Op::ReadModifyWrite { key, value } => {
                    let prior = model.get(&key).copied().unwrap_or(0);
                    model.insert(key, value ^ prior);
                }
                _ => {}
            }
            jitd.execute(&op);
        }
        for k in (0..n).step_by(7) {
            assert_eq!(jitd.get(k), model.get(&k).copied(), "key {k}");
        }
        jitd.delete(3);
        model.remove(&3);
        assert_eq!(jitd.get(3), None);
        let (mut runtime, _) = jitd.stop();
        runtime.reorganize_until_quiet(100_000);
        runtime.index().check_structure().unwrap();
        runtime.agreement_with_naive().unwrap();
        for k in 0..n {
            assert_eq!(
                runtime.index().get(k),
                model.get(&k).copied(),
                "key {k} post-stop"
            );
        }
    }

    #[test]
    fn stop_is_idempotent_with_drop() {
        let jitd = AsyncJitd::spawn(
            StrategyKind::Index,
            RuleConfig {
                crack_threshold: 32,
            },
            records(128),
        );
        drop(jitd); // Drop path must join cleanly too.
    }
}
